#!/usr/bin/env sh
# Local CI gate: everything a merge must pass, in the order that fails
# fastest. Run from the repository root:
#
#   sh scripts/check.sh
#
# The clippy step treats every warning as an error across the whole
# workspace (stub crates in third_party/ included); the bench smoke run
# (tiny shapes) is part of the p3d-bench unit tests, so `cargo test`
# already exercises the JSON-emitting benchmark path.
set -eu

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

# Named explicitly so a future test-harness filter cannot silently drop
# them: the checkpoint robustness fuzz (truncation / bit flips /
# garbage must error, never panic or over-allocate) and the
# kill-and-resume bitwise-equivalence suite are merge requirements in
# their own right.
echo "==> checkpoint robustness fuzz"
cargo test -q -p p3d-nn --test checkpoint_fuzz

echo "==> kill-and-resume bitwise equivalence"
cargo test -q -p p3d-core --test resume

echo "All checks passed."
