#!/usr/bin/env sh
# Local CI gate: everything a merge must pass, in the order that fails
# fastest. Run from the repository root:
#
#   sh scripts/check.sh
#
# The clippy step treats every warning as an error across the whole
# workspace (stub crates in third_party/ included); the bench smoke run
# (tiny shapes) is part of the p3d-bench unit tests, so `cargo test`
# already exercises the JSON-emitting benchmark path.
set -eu

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

# Named explicitly so a future test-harness filter cannot silently drop
# them: the checkpoint robustness fuzz (truncation / bit flips /
# garbage must error, never panic or over-allocate) and the
# kill-and-resume bitwise-equivalence suite are merge requirements in
# their own right.
echo "==> checkpoint robustness fuzz"
cargo test -q -p p3d-nn --test checkpoint_fuzz

echo "==> kill-and-resume bitwise equivalence"
cargo test -q -p p3d-core --test resume

# The inference-engine merge requirements, named for the same reason:
# the fixed-point datapath property suite (now including the Q7.8
# rounding-contract audit: finish/saturating_mul/avg-pool all implement
# round-to-nearest, from_f32 non-finite policy), the Q7.8-vs-f32 golden
# differential conv tests (now including the functional-vs-cycle engine
# differential on random shapes/strides/pads/block masks and the
# AVX2-vs-scalar integer bitwise gate at the i16 rails), inference
# determinism across thread counts, and the zero-allocation
# steady-state contract. (The BENCH_inference.json smoke emission rides
# in the p3d-bench unit tests above; the batched-vs-sequential
# throughput gate is `-p p3d-bench --test inference_speedup`, also part
# of `cargo test --workspace`.)
echo "==> fixed-point datapath properties + rounding contracts"
cargo test -q -p p3d-tensor --test fixed_properties

echo "==> conv differentials: Q7.8 vs f32, functional vs cycle, AVX2 vs scalar"
cargo test -q -p p3d-fpga --test conv_differential

echo "==> inference determinism under load"
cargo test -q -p p3d-infer --test determinism

echo "==> zero-allocation steady state"
cargo test -q -p p3d-infer --test zero_alloc

# The packed-GEMM / block-sparse merge requirements, named for the same
# reason: the property suite pins the packed microkernel and the
# block-CSR kernel bitwise to the naive reference (edge tiles, zero
# skipping, masked-weight equivalence, refresh-after-update); the
# equivalence suite pins the block-sparse forward/backward/serving
# paths through the full network; the perf smoke gate (release build —
# debug timings would measure the optimiser, not the kernel) asserts
# the packed microkernel is at least 1.5x the seeded naive kernel on a
# fixed single-threaded shape; the sim-batching gate asserts the
# batched sim backend never regresses below its own sequential loop.
echo "==> packed GEMM + block-sparse properties (incl. AVX2 f32 bitwise gate)"
cargo test -q -p p3d-tensor --test gemm_properties

echo "==> block-sparse network equivalence"
cargo test -q -p p3d-core --test block_sparse_equivalence

echo "==> pruned-model serving equivalence"
cargo test -q -p p3d-infer --test pruned_serving

echo "==> inference speedup gates (f32 batched 1.1x, sim never below 1x)"
cargo test -q -p p3d-bench --test inference_speedup

echo "==> packed microkernel perf smoke gates (release: 1.5x naive, AVX2 1.3x scalar)"
cargo test -q --release -p p3d-tensor --test gemm_perf

# The fast-functional-sim merge requirement: the functional Q7.8 engine
# (flat i64 accumulation + AVX2 integer kernels) must stay bitwise
# identical to the cycle-approximate engine end to end — logits,
# prediction, full ConvStats — and, in release, serve at least 3x its
# per-clip throughput (paired interleaved estimator, so co-tenant noise
# can only lower the measured ratio).
echo "==> functional sim-path bitwise identity + 3x speedup gate (release)"
cargo test -q --release -p p3d-bench --test sim_fast_speedup

# The persistent-pool merge requirements: the pool acceptance suite
# (bitwise-identical outputs across worker counts for all six parallel
# helpers, panic containment + worker replacement, nested-call serial
# degradation) and the release-mode thread-scaling gate (1-thread step
# bypasses the pool entirely; 2/4-thread step never slower than
# 1-thread beyond measurement noise — the spawn-per-call layer
# regressed to 0.76x at 4 threads, which this gate makes unmergeable).
echo "==> persistent-pool acceptance suite"
cargo test -q -p p3d-tensor --test parallel_pool

echo "==> thread-scaling gate (release)"
cargo test -q --release -p p3d-bench --test thread_scaling

# The resilient-serving merge requirements, named for the same reason:
# the chaos suite (seeded fault injection — worker panics, stalls, bit
# flips, saturation storms — with exactly-once resolution, balanced
# error budgets, and bitwise-unchanged non-faulted outputs) and the
# serving-boundary validation + supervision unit tests. Both run under
# the dev profile, where debug assertions, overflow checks and the
# NaN/Inf activation sentinels are all enabled — this is the
# debug-assertions pass for the serving layer.
echo "==> fault-injection chaos suite (debug assertions + sentinels on)"
cargo test -q -p p3d-infer --test chaos

echo "==> serving-boundary validation + worker supervision"
cargo test -q -p p3d-infer --lib

# The HTTP front-door merge requirements, named for the same reason:
# the wire-protocol fuzz suite (generated malformed traffic — truncated
# heads, hostile Content-Length values, split TCP segments, pipelined
# garbage, oversized bodies, header floods — must answer 4xx/5xx or
# close cleanly, never panic or allocate past the configured caps) and
# the loopback e2e suite (logits served over HTTP bitwise identical to
# in-process inference on both backends, chaos behind the wire keeps
# the error budget balanced, token buckets isolate greedy clients).
# Both run under the dev profile: this is the debug-assertions pass for
# the wire layer.
echo "==> HTTP wire-protocol fuzz (debug assertions on)"
cargo test -q -p p3d-infer --test http_fuzz

echo "==> HTTP loopback e2e: bitwise determinism, chaos, fairness"
cargo test -q -p p3d-infer --test http_e2e

# Release-mode soak smoke: ten seconds of mixed valid + malformed load
# against a live server, then shutdown must leave zero leaked threads
# (process thread count back to the pre-server baseline) and a balanced
# budget. Ignored by default so plain `cargo test` stays fast.
echo "==> HTTP soak smoke (release, ~10 s)"
cargo test -q --release -p p3d-infer --test http_soak -- --ignored

# The streaming-ingest merge requirements, named for the same reason:
# the P3DVID1 container format fuzz (truncated headers, corrupt CRCs,
# lying frame counts, hostile geometry must all error typed, never
# panic); the prefetch pipeline acceptance suite (bitwise identity to
# the serial reader across depths/worker counts, fault containment,
# arena recycling); the streaming zero-allocation proof (decode
# workers + ring hand-off + arena recycle perform zero heap
# allocations over a 20-clip mid-stream window, counted by a
# process-global allocator that sees worker threads too); and the
# release overlap gate (pipelined decode+infer at least 1.5x serial
# decode-then-infer at 2 and 4 threads, logits bitwise identical,
# zero arena growth after warm-up — debug builds still pin the
# bitwise + zero-growth half). The same clippy wall that guards the
# rest of the workspace is re-run scoped to the ingest crate so a
# future `--workspace` exclusion cannot silently drop it.
echo "==> P3DVID1 container format fuzz"
cargo test -q -p p3d-video-data --test vid_format_fuzz

echo "==> prefetch pipeline acceptance (bitwise vs serial reader, faults, recycling)"
cargo test -q -p p3d-video-data --test ingest_pipeline

echo "==> streaming ingest zero-allocation steady state"
cargo test -q -p p3d-video-data --test zero_alloc_ingest

echo "==> ingest overlap gate (release: pipelined 1.5x serial, bitwise, zero growth)"
cargo test -q --release -p p3d-bench --test ingest_overlap

echo "==> clippy, scoped to the ingest crate"
cargo clippy -p p3d-video-data --all-targets -- -D warnings

# The model-registry / hot-swap merge requirements, named for the same
# reason: the registry fuzz (garbage, truncations, bit flips — on the
# wire and on disk — must reject typed and quarantine, never panic or
# corrupt the servable set); the SIGKILL crash-safety suite (kills
# mid-publish and mid-hot-swap leave the registry loadable, tmp
# leftovers swept on reopen); the connection-guard + state-aware
# health suite (stalled readers reaped and counted, healthz reports
# ok / degraded / draining); swap-under-load (exactly-once and bitwise
# provenance across concurrent hot-swaps, corrupt pushes rejected with
# serving undisturbed); the canary gate (poisoned candidates roll back
# automatically, healthy ones promote); the response-cache e2e
# (bitwise-identical hits keyed by model hash, telemetry adds up); and
# the swap-storm chaos suite (rapid swaps + corrupt pushes raced
# against injected worker faults). All dev-profile: this is the
# debug-assertions pass for the model plane. The clippy wall is re-run
# scoped to the infer crate so a future workspace exclusion cannot
# silently drop the new modules.
echo "==> model-registry fuzz (garbage / truncation / bit-flip quarantine)"
cargo test -q -p p3d-infer --test registry_fuzz

echo "==> registry SIGKILL crash safety (mid-publish, mid-hot-swap)"
cargo test -q -p p3d-infer --test registry_crash

echo "==> connection guards + state-aware healthz (ok/degraded/draining)"
cargo test -q -p p3d-infer --test http_guard

echo "==> hot-swap under load: exactly-once, bitwise provenance, corrupt pushes"
cargo test -q -p p3d-infer --test swap_under_load

echo "==> canary gate: auto-rollback on poison, promote on health"
cargo test -q -p p3d-infer --test canary_rollback

echo "==> response cache e2e: bitwise hits keyed by model hash"
cargo test -q -p p3d-infer --test respcache_e2e

echo "==> swap-storm chaos: rapid swaps + corrupt pushes under faults"
cargo test -q -p p3d-infer --test chaos_swap

echo "==> clippy, scoped to the infer crate"
cargo clippy -p p3d-infer --all-targets -- -D warnings

# Release-mode swap soak gate: sustained client load across at least
# three hot-swaps — zero dropped or duplicated requests, bitwise
# provenance throughout, no thread leak. Ignored by default so plain
# `cargo test` stays fast.
echo "==> hot-swap soak gate (release)"
cargo test -q --release -p p3d-infer --test swap_soak -- --ignored

echo "All checks passed."
