#![warn(missing_docs)]
//! # p3d — hardware-aware blockwise pruning and FPGA acceleration of 3D CNNs
//!
//! A from-scratch Rust reproduction of *"3D CNN Acceleration on FPGA
//! using Hardware-Aware Pruning"* (Sun, Zhao, et al., DAC 2020).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`tensor`] — dense tensors, seeded RNG, Q7.8 fixed point,
//! * [`nn`] — layers, backprop, SGD, LR schedules, the training loop,
//! * [`video_data`] — the synthetic motion-classification dataset
//!   (UCF101 stand-in),
//! * [`models`] — R(2+1)D and C3D specs, builders, and counters,
//! * [`pruning`] — the paper's contribution: blockwise ADMM pruning,
//! * [`fpga`] — the accelerator models and functional simulator,
//! * [`infer`] — the batched inference serving layer over both the f32
//!   network and the Q7.8 simulator.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and the
//! `p3d-bench` binaries (`table1`..`table4`, `accuracy`, `dse`,
//! `ablation_*`) for the paper's tables and figures.

pub use p3d_core as pruning;
pub use p3d_fpga as fpga;
pub use p3d_infer as infer;
pub use p3d_models as models;
pub use p3d_nn as nn;
pub use p3d_tensor as tensor;
pub use p3d_video_data as video_data;
