//! The `p3d` command-line interface: train, prune, evaluate and simulate
//! models of the DAC 2020 reproduction without writing Rust.
//!
//! ```text
//! p3d train    [--model lite|lite-wide|micro|c3d-lite] [--epochs N]
//!              [--clips N] [--seed S] [--out model.ckpt]
//! p3d eval     --ckpt model.ckpt [--model ...] [--clips N]
//! p3d prune    --ckpt model.ckpt [--model ...] [--tm 8] [--tn 4]
//!              [--eta2 0.9] [--eta3 0.8] [--retrain N] [--out pruned.ckpt]
//!              [--save-every N] [--resume] [--state FILE]
//! p3d simulate --ckpt model.ckpt [--model ...] [--tm 8] [--tn 4]
//! p3d infer    --ckpt model.ckpt [--model ...] [--clips N] [--batch B]
//!              [--backend f32|sim|both] [--threads T] [--json FILE]
//!              [--resilient] [--replicas R] [--capacity C]
//!              [--deadline-ms D] [--retries N] [--chaos-seed S]
//! p3d ingest   --synth out.p3dvid [--model ...] [--clips N]
//!              [--width W] [--height H] [--seed S]
//! p3d ingest   --input file.p3dvid --ckpt model.ckpt [--model ...]
//!              [--resize-h R] [--resize-w R] [--batch B] [--depth N]
//!              [--workers W] [--threads T] [--serial] [--json FILE]
//! p3d serve    --ckpt model.ckpt [--model ...] [--port P] [--backend f32|sim]
//!              [--capacity C] [--deadline-ms D] [--retries N]
//!              [--rate R] [--burst B] [--max-body BYTES]
//!              [--max-requests N] [--duration-s S] [--threads T]
//!              [--model-dir DIR] [--cache N]
//!              [--canary-fraction F] [--canary-after N]
//! p3d models   --dir DIR [--push file.ckpt] [--json]
//! p3d tables   (prints the paper-table summaries)
//! ```
//!
//! All data is the synthetic motion dataset; determinism follows from
//! `--seed`.

use p3d::fpga::{AcceleratorConfig, Ports, QuantizedNetwork, Tiling};
use p3d::infer::json::{backend_row, BackendReport};
use p3d::infer::{
    install_quiet_panic_hook, BatchScheduler, CanaryPolicy, ErrorBudget, F32Engine, FaultMix,
    FaultPlan, HttpServer, InferenceEngine, ModelPushConfig, ModelRegistry, RegistryError, Request,
    ResilientRun, ResilientServer, ServeConfig, ServerConfig, SimEngine, StreamRun, WireLimits,
};
use p3d::models::{
    build_network, c3d_lite, r2plus1d_lite, r2plus1d_lite_wide, r2plus1d_micro, NetworkSpec,
};
use p3d::nn::{
    evaluate, Checkpoint, CrossEntropyLoss, Dataset, LrSchedule, Sequential, Sgd, TrainState,
    Trainer,
};
use p3d::pruning::{
    capture_admm_train_state, capture_retrain_state, restore_admm_train_state,
    restore_retrain_state, targets_for_stages, AdmmConfig, AdmmProgress, AdmmPruner, BlockShape,
    KeepRule, PrunedModel, RETRAIN_PROGRESS_KEY,
};
use p3d::tensor::parallel::{max_threads, set_thread_override};
use p3d::tensor::simd;
use p3d::video_data::{GeneratorConfig, SyntheticVideo};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            // A flag followed by another flag (or nothing) is boolean,
            // e.g. `--resume`; otherwise it consumes the next token.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(key.to_string(), value);
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn required(&self, key: &str) -> Result<String, String> {
        self.flags
            .get(key)
            .cloned()
            .ok_or_else(|| format!("--{key} is required"))
    }

    /// Rejects any flag outside `known` (flag typos would otherwise be
    /// silently ignored).
    fn expect_known(&self, cmd: &str, known: &[&str]) -> Result<(), String> {
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(String::as_str)
            .filter(|k| !known.contains(k))
            .collect();
        unknown.sort_unstable();
        match unknown.first() {
            Some(k) => Err(format!(
                "unknown flag --{k} for 'p3d {cmd}' (try 'p3d {cmd} --help')"
            )),
            None => Ok(()),
        }
    }
}

fn model_spec(name: &str) -> Result<NetworkSpec, String> {
    match name {
        "lite" => Ok(r2plus1d_lite(10)),
        "lite-wide" => Ok(r2plus1d_lite_wide(10)),
        "micro" => Ok(r2plus1d_micro(10)),
        "c3d-lite" => Ok(c3d_lite(10)),
        other => Err(format!(
            "unknown model '{other}' (expected lite|lite-wide|micro|c3d-lite)"
        )),
    }
}

fn dataset_for(spec: &NetworkSpec, clips: usize, seed: u64) -> (SyntheticVideo, SyntheticVideo) {
    let (c, d, h, w) = spec.input;
    assert_eq!(c, 1, "CLI models are single-channel");
    let config = GeneratorConfig {
        frames: d,
        height: h,
        width: w,
        num_classes: 10,
        noise_std: 0.03,
        speed: (1.0, 2.5),
        radius: (2.5, h as f32 / 6.0),
        distractors: 0,
    };
    SyntheticVideo::train_test(&config, clips, clips / 2, seed)
}

fn load_into(spec: &NetworkSpec, ckpt_path: &str, seed: u64) -> Result<Sequential, String> {
    let mut net = build_network(spec, seed);
    let ckpt = Checkpoint::load(ckpt_path).map_err(|e| format!("cannot load {ckpt_path}: {e}"))?;
    let report = ckpt.restore(&mut net);
    if report.num_restored() == 0 {
        return Err(format!(
            "checkpoint {ckpt_path} matches no parameters of this model"
        ));
    }
    if !report.mismatched.is_empty() {
        return Err(format!(
            "checkpoint {ckpt_path} shape mismatch for {:?} — was it written by a different model?",
            report.mismatched
        ));
    }
    Ok(net)
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let model = args.get("model", "lite".to_string())?;
    let spec = model_spec(&model)?;
    let epochs: usize = args.get("epochs", 20)?;
    let clips: usize = args.get("clips", 200)?;
    let seed: u64 = args.get("seed", 42)?;
    let out = args.get("out", "model.ckpt".to_string())?;

    let (train, test) = dataset_for(&spec, clips, seed);
    let mut net = build_network(&spec, seed);
    let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(1e-2, 0.9, 1e-4), 16, seed);
    for e in 0..epochs {
        let st = trainer.train_epoch(&mut net, &train, None);
        eprintln!("epoch {:>3}: loss {:.4}, train acc {:.3}", e + 1, st.loss, st.accuracy);
    }
    let acc = trainer.evaluate(&mut net, &test);
    println!("{model}: test accuracy {acc:.4} after {epochs} epochs");
    Checkpoint::capture(&mut net)
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("saved checkpoint to {out}");
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let model = args.get("model", "lite".to_string())?;
    let spec = model_spec(&model)?;
    let clips: usize = args.get("clips", 200)?;
    let seed: u64 = args.get("seed", 42)?;
    let ckpt = args.required("ckpt")?;
    let mut net = load_into(&spec, &ckpt, seed)?;
    let (_, test) = dataset_for(&spec, clips, seed);
    let acc = evaluate(&mut net, &test, 16);
    println!("{model}: test accuracy {acc:.4} ({} clips)", test.len());
    Ok(())
}

fn cmd_prune(args: &Args) -> Result<(), String> {
    let model = args.get("model", "lite".to_string())?;
    let spec = model_spec(&model)?;
    let clips: usize = args.get("clips", 200)?;
    let seed: u64 = args.get("seed", 42)?;
    let tm: usize = args.get("tm", 8)?;
    let tn: usize = args.get("tn", 4)?;
    let eta2: f64 = args.get("eta2", 0.9)?;
    let eta3: f64 = args.get("eta3", 0.8)?;
    let retrain: usize = args.get("retrain", 15)?;
    let ckpt = args.required("ckpt")?;
    let out = args.get("out", "pruned.ckpt".to_string())?;
    let save_every: usize = args.get("save-every", 0)?;
    let resume: bool = args.get("resume", false)?;
    let state_path = args.get("state", format!("{out}.state"))?;

    let mut net = load_into(&spec, &ckpt, seed)?;
    let (train, test) = dataset_for(&spec, clips, seed);
    let before = evaluate(&mut net, &test, 16);

    let stage2 = if model == "c3d-lite" { "conv2" } else { "conv2_x" };
    let stage3 = if model == "c3d-lite" { "conv3" } else { "conv3_x" };
    let targets = targets_for_stages(&spec, &[(stage2, eta2), (stage3, eta3)]);
    if targets.is_empty() {
        return Err("no prunable layers found".into());
    }
    let mut trainer = Trainer::new(
        CrossEntropyLoss::with_smoothing(0.1),
        Sgd::new(5e-3, 0.9, 1e-4),
        16,
        seed + 1,
    );
    let admm = AdmmConfig {
        rho_schedule: vec![2e-2, 1e-1, 4e-1],
        epochs_per_round: 6,
        epochs_per_admm_update: 3,
        keep_rule: KeepRule::Round,
        epsilon: 0.05,
    };
    let mut pruner = AdmmPruner::new(&mut net, BlockShape::new(tm, tn), &targets, admm);
    let schedule = LrSchedule::WarmupCosine {
        base_lr: 5e-3,
        warmup_epochs: 2,
        total_epochs: retrain,
        min_lr: 1e-5,
    };
    let mut retrainer =
        Trainer::new(CrossEntropyLoss::new(), Sgd::new(5e-3, 0.9, 1e-4), 16, seed + 2);

    // --resume picks up the interrupted phase from --state.
    let loaded = if resume && std::path::Path::new(&state_path).exists() {
        Some(
            TrainState::load(&state_path)
                .map_err(|e| format!("cannot load state {state_path}: {e}"))?,
        )
    } else {
        None
    };
    let in_retrain_phase = loaded
        .as_ref()
        .is_some_and(|st| st.get(RETRAIN_PROGRESS_KEY).is_some());

    let (pruned, start_epoch) = if in_retrain_phase {
        let st = loaded.as_ref().unwrap();
        let (_saved_sched, done) = restore_retrain_state(st, &mut net, &mut retrainer)
            .map_err(|e| format!("cannot resume retraining: {e}"))?;
        eprintln!("resuming masked retraining after epoch {done}");
        (pruner.pruned_model_from_masks(&mut net), done)
    } else {
        let mut start = AdmmProgress::start();
        if let Some(st) = &loaded {
            start = restore_admm_train_state(st, &mut net, &mut trainer, &mut pruner)
                .map_err(|e| format!("cannot resume ADMM training: {e}"))?;
            eprintln!(
                "resuming ADMM training at round {}, epoch {}",
                start.round, start.epoch
            );
        }
        eprintln!("ADMM training...");
        let log = pruner.admm_train_from(&mut net, &mut trainer, &train, start, &mut |t| {
            if save_every > 0 && t.progress.epoch % save_every == 0 {
                let st = capture_admm_train_state(t.network, t.trainer, t.pruner, t.progress);
                if let Err(e) = st.save(&state_path) {
                    eprintln!("warning: cannot save state {state_path}: {e}");
                }
            }
            true
        });
        eprintln!(
            "final primal residual: {:.3}",
            log.rounds.last().map(|r| r.max_primal_residual).unwrap_or(f32::NAN)
        );
        (pruner.hard_prune(&mut net), 0)
    };
    AdmmPruner::retrain_from(
        &mut net,
        &mut retrainer,
        &train,
        &schedule,
        retrain,
        start_epoch,
        &mut |t| {
            if save_every > 0 && (t.epoch + 1) % save_every == 0 {
                let st = capture_retrain_state(t.network, t.trainer, &schedule, t.epoch + 1);
                if let Err(e) = st.save(&state_path) {
                    eprintln!("warning: cannot save state {state_path}: {e}");
                }
            }
            true
        },
    );
    if save_every > 0 {
        // The run completed; the intermediate state is no longer needed.
        let _ = std::fs::remove_file(&state_path);
    }
    let after = evaluate(&mut net, &test, 16);
    println!(
        "accuracy: {before:.4} -> {after:.4} at {:.0}% kept weights in pruned stages",
        pruned.kept_fraction() * 100.0
    );
    Checkpoint::capture(&mut net)
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("saved pruned checkpoint to {out}");
    for (layer, mask) in &pruned.layers {
        println!(
            "  {layer}: {}/{} blocks enabled",
            mask.enabled_blocks(),
            mask.grid.num_blocks()
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let model = args.get("model", "lite".to_string())?;
    let spec = model_spec(&model)?;
    let clips: usize = args.get("clips", 60)?;
    let seed: u64 = args.get("seed", 42)?;
    let tm: usize = args.get("tm", 8)?;
    let tn: usize = args.get("tn", 4)?;
    let ckpt = args.required("ckpt")?;
    let mut net = load_into(&spec, &ckpt, seed)?;
    let (_, test) = dataset_for(&spec, clips, seed);

    let accel = AcceleratorConfig {
        tiling: Tiling::new(tm, tn, 2, 8, 8),
        ports: Ports::new(2, 2, 2),
        freq_mhz: 150.0,
        data_bits: 16,
    };
    let q = QuantizedNetwork::from_network(&spec, &mut net, accel.clone());
    let mut correct = 0usize;
    let mut cycles = 0u64;
    for i in 0..test.len() {
        let (clip, label) = test.sample(i);
        let out = q.forward(&clip, &PrunedModel::dense());
        cycles += out.total_cycles();
        if out.prediction == label {
            correct += 1;
        }
    }
    println!(
        "Q7.8 simulated accuracy: {:.4} ({} clips)",
        correct as f32 / test.len() as f32,
        test.len()
    );
    println!(
        "mean latency: {:.3} ms/clip at {} MHz on a ({tm},{tn}) MAC array",
        accel.cycles_to_ms(cycles / test.len() as u64),
        accel.freq_mhz
    );
    Ok(())
}

const INFER_USAGE: &str = "usage: p3d infer --ckpt model.ckpt [--model lite|lite-wide|micro|c3d-lite]
                 [--clips N] [--batch B] [--backend f32|sim|both]
                 [--threads T] [--seed S] [--tm 8] [--tn 4] [--json FILE]
                 [--resilient] [--replicas R] [--capacity C]
                 [--deadline-ms D] [--retries N] [--chaos-seed S]

Streams synthetic test clips through the batched inference engine and
reports throughput (clips/s), latency percentiles (p50/p95/p99), and
accuracy for the f32 network and/or the Q7.8 accelerator simulator
(served by the fast functional engine). The report — and the --json
document — records the host's detected CPU features and the SIMD
kernel path in use (avx2 or scalar) so numbers carry their provenance.

Resilient serving (--resilient, implied by the flags below): requests
pass input validation and a bounded admission queue (--capacity),
carry deadlines (--deadline-ms), and run on supervised workers with
retry (--retries), poison quarantine, and automatic sim->f32
degradation on Q7.8 saturation anomalies. --chaos-seed S injects a
deterministic fault mix (panics, stalls, bit flips, saturation storms)
to exercise those paths; the report gains an error budget
(shed/retry/quarantine/fallback counters), also emitted in --json.";

/// One `backend: {...}` JSON fragment for `--json`. Both the batch and
/// resilient paths render through [`backend_row`], so the two modes
/// emit one schema — batch mode carries the degenerate all-completed
/// error budget rather than no budget at all.
fn infer_json_row(backend: &str, run: &StreamRun, accuracy: f64) -> String {
    let row = backend_row(&BackendReport {
        backend,
        mode: "batch",
        clips_per_s: run.clips_per_s(),
        latency: run.latency_stats(),
        accuracy,
        batches: run.batches,
        budget: ErrorBudget::all_completed(run.results.len() as u64),
    });
    format!("    {row}")
}

/// One `backend: {...}` JSON fragment for a resilient `--json` report,
/// with the run's error budget embedded.
fn resilient_json_row(backend: &str, run: &ResilientRun, accuracy: f64) -> String {
    let row = backend_row(&BackendReport {
        backend,
        mode: "resilient",
        clips_per_s: run.budget.completed as f64 / run.wall_s.max(1e-9),
        latency: run.latency_stats(),
        accuracy,
        batches: run.batches,
        budget: run.budget,
    });
    format!("    {row}")
}

/// Hard sanity limits for `p3d infer` flags: values past these are
/// almost certainly typos, and the failure modes (hour-long runs,
/// thousands of replicas) are unpleasant.
const MAX_BATCH: usize = 4096;
const MAX_REPLICAS: usize = 256;
const MAX_THREADS_FLAG: usize = 1024;
const MAX_DEADLINE_MS: u64 = 600_000;
const MAX_RETRIES: u32 = 16;

fn cmd_infer(args: &Args) -> Result<(), String> {
    if args.get("help", false)? {
        println!("{INFER_USAGE}");
        return Ok(());
    }
    args.expect_known(
        "infer",
        &[
            "help",
            "model",
            "ckpt",
            "clips",
            "batch",
            "backend",
            "threads",
            "seed",
            "tm",
            "tn",
            "json",
            "resilient",
            "replicas",
            "capacity",
            "deadline-ms",
            "retries",
            "chaos-seed",
        ],
    )?;
    let model = args.get("model", "lite".to_string())?;
    let spec = model_spec(&model)?;
    let clips: usize = args.get("clips", 60)?;
    let batch: usize = args.get("batch", 8)?;
    let seed: u64 = args.get("seed", 42)?;
    let tm: usize = args.get("tm", 8)?;
    let tn: usize = args.get("tn", 4)?;
    let threads: usize = args.get("threads", 0)?;
    let backend = args.get("backend", "both".to_string())?;
    let json_path = args.get("json", String::new())?;
    let run_f32 = matches!(backend.as_str(), "f32" | "both");
    let run_sim = matches!(backend.as_str(), "sim" | "both");
    if !run_f32 && !run_sim {
        return Err(format!("unknown backend '{backend}' (expected f32|sim|both)"));
    }
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    if batch > MAX_BATCH {
        return Err(format!("--batch {batch} is not plausible (max {MAX_BATCH})"));
    }
    if threads > MAX_THREADS_FLAG {
        return Err(format!(
            "--threads {threads} is not plausible (max {MAX_THREADS_FLAG})"
        ));
    }
    let replicas_flag: usize = args.get("replicas", 0)?;
    if args.flags.contains_key("replicas") && replicas_flag == 0 {
        return Err("--replicas must be positive".into());
    }
    if replicas_flag > MAX_REPLICAS {
        return Err(format!(
            "--replicas {replicas_flag} is not plausible (max {MAX_REPLICAS})"
        ));
    }
    let capacity: usize = args.get("capacity", 1024)?;
    if capacity == 0 {
        return Err("--capacity must be positive".into());
    }
    let deadline_ms: u64 = args.get("deadline-ms", 0)?;
    if args.flags.contains_key("deadline-ms") && deadline_ms == 0 {
        return Err("--deadline-ms must be positive".into());
    }
    if deadline_ms > MAX_DEADLINE_MS {
        return Err(format!(
            "--deadline-ms {deadline_ms} is not plausible (max {MAX_DEADLINE_MS})"
        ));
    }
    let retries: u32 = args.get("retries", 2)?;
    if retries > MAX_RETRIES {
        return Err(format!(
            "--retries {retries} is not plausible (max {MAX_RETRIES})"
        ));
    }
    let chaos_given = args.flags.contains_key("chaos-seed");
    let chaos_seed: u64 = args.get("chaos-seed", 0)?;
    let resilient = args.get("resilient", false)?
        || chaos_given
        || args.flags.contains_key("capacity")
        || args.flags.contains_key("deadline-ms")
        || args.flags.contains_key("retries");
    if threads > 0 {
        set_thread_override(Some(threads));
    }
    let ckpt = args.required("ckpt")?;
    // Validates model/checkpoint compatibility before replicating.
    let mut net = load_into(&spec, &ckpt, seed)?;
    let (_, test) = dataset_for(&spec, clips, seed);
    let labels: Vec<usize> = (0..test.len()).map(|i| test.sample(i).1).collect();
    let replicas = if replicas_flag > 0 {
        replicas_flag
    } else {
        max_threads().min(batch).max(1)
    };
    // Provenance: which SIMD path the GEMM microkernel and the Q7.8
    // functional engine dispatch to on this host.
    let feats = {
        let f = simd::cpu_features();
        if f.is_empty() {
            "none"
        } else {
            f
        }
    };
    let kernel_path = simd::active().name();
    println!("host: cpu features {feats} | kernel path {kernel_path}");

    if resilient {
        // Resilient serving: one supervised stream. `sim` and `both`
        // run the Q7.8 simulator as primary with the f32 network as
        // degradation fallback; `f32` runs the float path alone.
        let primary_is_sim = run_sim;
        let chaos = chaos_given.then(|| {
            // Expected injected panics should not spray backtraces.
            install_quiet_panic_hook();
            FaultPlan::seeded_mix(chaos_seed, test.len(), &FaultMix::default())
        });
        let (c, d, h, w) = spec.input;
        let mut server = ResilientServer::new(ServerConfig {
            capacity,
            max_batch: batch,
            expected_shape: Some([c, d, h, w]),
            default_deadline: (deadline_ms > 0)
                .then(|| std::time::Duration::from_millis(deadline_ms)),
            max_retries: retries,
            seed,
            ..ServerConfig::default()
        });
        for i in 0..test.len() {
            let (mut clip, _) = test.sample(i);
            if let Some(plan) = &chaos {
                plan.corrupt_input(i, &mut clip);
            }
            // Rejections (validation, overload) are recorded in the
            // drained responses; nothing to do with the error here.
            let _ = server.submit(Request::new(clip));
        }
        let name = if primary_is_sim { "sim" } else { "f32" };
        let mut fallback;
        let run = if primary_is_sim {
            let accel = AcceleratorConfig {
                tiling: Tiling::new(tm, tn, 2, 8, 8),
                ports: Ports::new(2, 2, 2),
                freq_mhz: 150.0,
                data_bits: 16,
            };
            let q = QuantizedNetwork::from_network(&spec, &mut net, accel);
            let mut primary = SimEngine::new(q, PrunedModel::dense());
            fallback = F32Engine::new(replicas, || {
                load_into(&spec, &ckpt, seed).expect("checkpoint validated above")
            });
            server.drain(&mut primary, Some(&mut fallback), chaos.as_ref())
        } else {
            let mut primary = F32Engine::new(replicas, || {
                load_into(&spec, &ckpt, seed).expect("checkpoint validated above")
            });
            server.drain(&mut primary, None, chaos.as_ref())
        };
        let b = &run.budget;
        let correct = run
            .responses
            .iter()
            .filter(|r| {
                r.outcome
                    .as_ref()
                    .is_ok_and(|res| res.prediction == labels[r.index])
            })
            .count();
        let accuracy = correct as f64 / (b.completed.max(1)) as f64;
        let lat = run.latency_stats();
        println!(
            "{name:>4}: {:>8.1} clips/s | p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms | accuracy {accuracy:.4} ({} completed of {} submitted, batch {batch})",
            b.completed as f64 / run.wall_s.max(1e-9),
            lat.p50_ms,
            lat.p95_ms,
            lat.p99_ms,
            b.completed,
            b.submitted,
        );
        println!(
            "budget: shed {}, invalid {}, expired {}, late {}, retries {}, worker failures {}, restarts {}, quarantined {}, fallbacks {}, sentinel trips {}",
            b.shed_overload,
            b.rejected_invalid,
            b.deadline_expired,
            b.deadline_missed,
            b.retries,
            b.worker_failures,
            b.worker_restarts,
            b.quarantined,
            b.fallbacks,
            b.sentinel_trips,
        );
        if !json_path.is_empty() {
            let json = format!(
                "{{\n  \"model\": \"{model}\",\n  \"clips\": {},\n  \"batch\": {batch},\n  \"cpu_features\": \"{feats}\",\n  \"kernel_path\": \"{kernel_path}\",\n  \"results\": [\n{}\n  ]\n}}\n",
                labels.len(),
                resilient_json_row(name, &run, accuracy)
            );
            std::fs::write(&json_path, json)
                .map_err(|e| format!("cannot write {json_path}: {e}"))?;
            println!("wrote {json_path}");
        }
        if threads > 0 {
            set_thread_override(None);
        }
        return Ok(());
    }

    let mut json_rows = Vec::new();
    // Prints one backend line and returns its JSON row.
    let report = |name: &str, run: &StreamRun| -> String {
        let correct = run
            .results
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| r.prediction == l)
            .count();
        let accuracy = correct as f64 / labels.len().max(1) as f64;
        let lat = run.latency_stats();
        println!(
            "{name:>4}: {:>8.1} clips/s | p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms | accuracy {accuracy:.4} ({} clips, batch {batch})",
            run.clips_per_s(),
            lat.p50_ms,
            lat.p95_ms,
            lat.p99_ms,
            labels.len(),
        );
        infer_json_row(name, run, accuracy)
    };

    if run_f32 {
        let mut engine = F32Engine::new(replicas, || {
            load_into(&spec, &ckpt, seed).expect("checkpoint validated above")
        });
        let mut sched = BatchScheduler::new(batch);
        for i in 0..test.len() {
            sched.submit(test.sample(i).0);
        }
        let run = sched.drain(&mut engine);
        json_rows.push(report("f32", &run));
    }
    if run_sim {
        let accel = AcceleratorConfig {
            tiling: Tiling::new(tm, tn, 2, 8, 8),
            ports: Ports::new(2, 2, 2),
            freq_mhz: 150.0,
            data_bits: 16,
        };
        let q = QuantizedNetwork::from_network(&spec, &mut net, accel);
        let mut engine = SimEngine::new(q, PrunedModel::dense());
        let mut sched = BatchScheduler::new(batch);
        for i in 0..test.len() {
            sched.submit(test.sample(i).0);
        }
        let run = sched.drain(&mut engine);
        json_rows.push(report("sim", &run));
    }
    if !json_path.is_empty() {
        let json = format!(
            "{{\n  \"model\": \"{model}\",\n  \"clips\": {},\n  \"batch\": {batch},\n  \"cpu_features\": \"{feats}\",\n  \"kernel_path\": \"{kernel_path}\",\n  \"results\": [\n{}\n  ]\n}}\n",
            labels.len(),
            json_rows.join(",\n")
        );
        std::fs::write(&json_path, json).map_err(|e| format!("cannot write {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }
    if threads > 0 {
        set_thread_override(None);
    }
    Ok(())
}

const SERVE_USAGE: &str = "usage: p3d serve --ckpt model.ckpt [--model lite|lite-wide|micro|c3d-lite]
                 [--port P] [--backend f32|sim] [--tm 8] [--tn 4] [--seed S]
                 [--batch B] [--capacity C] [--deadline-ms D] [--retries N]
                 [--rate R] [--burst B] [--max-body BYTES] [--threads T]
                 [--max-requests N] [--duration-s S]
                 [--model-dir DIR] [--cache N]
                 [--canary-fraction F] [--canary-after N]

Serves the inference engine over HTTP/1.1 on 127.0.0.1 (--port 0 picks
an ephemeral port; the chosen address is printed as 'listening on
ADDR'). Endpoints:

  POST /v1/infer   raw planar clip in (Content-Type application/x-p3d-f32
                   or application/x-p3d-q78, shape in X-P3D-Shape:
                   C,D,H,W), JSON result out with latency_ms / backend /
                   model_hash / kernel_path / cpu_features / fell_back
                   provenance
  POST /v1/models  raw checkpoint bytes in; validates, persists to the
                   content-addressed registry (--model-dir) and hot-swaps
                   the serving engines — atomically, after a golden-clip
                   smoke test, draining in-flight requests first
  GET  /v1/models  registry listing: serving hash, canary hash,
                   published and quarantined checkpoints
  GET  /stats      live error budget, per-client admission counters,
                   worker-pool, swap/canary/cache and engine telemetry
  GET  /healthz    state-aware probe: 200 'ok', 200 'degraded'
                   (error budget tripping), 503 'draining' (mid-swap
                   or shutting down)

Requests flow through the same resilient pipeline as 'p3d infer
--resilient': validation, bounded admission (--capacity), deadlines
(--deadline-ms), supervised retry (--retries), and sim->f32 degradation
when the backend is sim. --rate/--burst add per-client token-bucket
fairness keyed on the X-P3D-Client header; empty buckets shed as HTTP
429, counted in the error budget. --max-requests / --duration-s bound
the run (0 = unbounded) and print a final report on exit.

--model-dir DIR enables the model-push control plane: the startup
checkpoint is published into DIR and every response carries its content
hash. --canary-fraction F (0 < F <= 1) routes that fraction of traffic
to a pushed model first, auto-promoting after --canary-after decided
requests or auto-rolling-back on quarantine/sentinel/fallback/p99
regression. --cache N keeps an exact-match LRU of N responses keyed by
(model hash, clip hash); hits replay bitwise-identical logits.";

fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.get("help", false)? {
        println!("{SERVE_USAGE}");
        return Ok(());
    }
    args.expect_known(
        "serve",
        &[
            "help",
            "model",
            "ckpt",
            "port",
            "backend",
            "tm",
            "tn",
            "seed",
            "batch",
            "threads",
            "capacity",
            "deadline-ms",
            "retries",
            "rate",
            "burst",
            "max-body",
            "max-requests",
            "duration-s",
            "model-dir",
            "cache",
            "canary-fraction",
            "canary-after",
        ],
    )?;
    let model = args.get("model", "lite".to_string())?;
    let spec = model_spec(&model)?;
    let port: u16 = args.get("port", 8080)?;
    let backend = args.get("backend", "sim".to_string())?;
    let primary_is_sim = match backend.as_str() {
        "sim" => true,
        "f32" => false,
        other => return Err(format!("unknown backend '{other}' (expected f32|sim)")),
    };
    let seed: u64 = args.get("seed", 42)?;
    let tm: usize = args.get("tm", 8)?;
    let tn: usize = args.get("tn", 4)?;
    let batch: usize = args.get("batch", 8)?;
    if batch == 0 || batch > MAX_BATCH {
        return Err(format!("--batch {batch} out of range (1..={MAX_BATCH})"));
    }
    let threads: usize = args.get("threads", 0)?;
    if threads > MAX_THREADS_FLAG {
        return Err(format!(
            "--threads {threads} is not plausible (max {MAX_THREADS_FLAG})"
        ));
    }
    let capacity: usize = args.get("capacity", 1024)?;
    if capacity == 0 {
        return Err("--capacity must be positive".into());
    }
    let deadline_ms: u64 = args.get("deadline-ms", 0)?;
    if deadline_ms > MAX_DEADLINE_MS {
        return Err(format!(
            "--deadline-ms {deadline_ms} is not plausible (max {MAX_DEADLINE_MS})"
        ));
    }
    let retries: u32 = args.get("retries", 2)?;
    if retries > MAX_RETRIES {
        return Err(format!(
            "--retries {retries} is not plausible (max {MAX_RETRIES})"
        ));
    }
    let rate: f64 = args.get("rate", 0.0)?;
    let burst: f64 = args.get("burst", 8.0)?;
    if rate < 0.0 || burst < 0.0 {
        return Err("--rate/--burst must be non-negative".into());
    }
    let max_body: usize = args.get("max-body", WireLimits::default().max_body_bytes)?;
    let max_requests: u64 = args.get("max-requests", 0)?;
    let duration_s: f64 = args.get("duration-s", 0.0)?;
    let model_dir = args.get("model-dir", String::new())?;
    let cache: usize = args.get("cache", 0)?;
    let canary_fraction: f64 = args.get("canary-fraction", 0.0)?;
    let canary_after: u64 = args.get("canary-after", 50)?;
    if !(0.0..=1.0).contains(&canary_fraction) {
        return Err(format!(
            "--canary-fraction {canary_fraction} out of range (0..=1)"
        ));
    }
    if canary_fraction > 0.0 && model_dir.is_empty() {
        return Err("--canary-fraction needs --model-dir (no pushes without a registry)".into());
    }
    let ckpt = args.required("ckpt")?;

    if threads > 0 {
        set_thread_override(Some(threads));
    }
    let mut net = load_into(&spec, &ckpt, seed)?;
    let (c, d, h, w) = spec.input;
    let replicas = max_threads().min(batch).max(1);
    let make_f32 = |replicas: usize| {
        let spec = spec.clone();
        let ckpt = ckpt.clone();
        F32Engine::new(replicas, move || {
            load_into(&spec, &ckpt, seed).expect("checkpoint validated above")
        })
    };
    let (primary, fallback): (
        Box<dyn InferenceEngine + Send>,
        Option<Box<dyn InferenceEngine + Send>>,
    ) = if primary_is_sim {
        let accel = AcceleratorConfig {
            tiling: Tiling::new(tm, tn, 2, 8, 8),
            ports: Ports::new(2, 2, 2),
            freq_mhz: 150.0,
            data_bits: 16,
        };
        let q = QuantizedNetwork::from_network(&spec, &mut net, accel);
        (
            Box::new(SimEngine::new(q, PrunedModel::dense())),
            Some(Box::new(make_f32(replicas)) as Box<dyn InferenceEngine + Send>),
        )
    } else {
        (Box::new(make_f32(replicas)), None)
    };

    // The model-push control plane: publish the startup checkpoint into
    // the registry (so the first response already carries provenance)
    // and hand the server a factory that rebuilds the same engine
    // topology from any pushed checkpoint.
    let mut serving_hash = "unkeyed".to_string();
    let models_cfg: Option<ModelPushConfig> = if model_dir.is_empty() {
        None
    } else {
        let registry = ModelRegistry::open(&model_dir)
            .map_err(|e| format!("cannot open model registry {model_dir}: {e}"))?;
        let bytes =
            std::fs::read(&ckpt).map_err(|e| format!("cannot read checkpoint {ckpt}: {e}"))?;
        let published = registry
            .publish(&bytes)
            .map_err(|e| format!("cannot publish startup checkpoint: {e}"))?;
        serving_hash = published.hash.clone();
        let golden = p3d::tensor::TensorRng::seed(seed).uniform_tensor([c, d, h, w], 0.0, 1.0);
        let factory_spec = spec.clone();
        let factory = Box::new(move |pushed: &Checkpoint| {
            let mut net = build_network(&factory_spec, seed);
            let report = pushed.try_restore(&mut net);
            if report.num_restored() == 0 {
                return Err("checkpoint matches no parameters of this model".to_string());
            }
            if !report.mismatched.is_empty() {
                return Err(format!(
                    "checkpoint shape mismatch for {:?} — was it written by a different model?",
                    report.mismatched
                ));
            }
            let f32_engine = {
                let spec = factory_spec.clone();
                let pushed = pushed.clone();
                F32Engine::new(replicas, move || {
                    let mut net = build_network(&spec, seed);
                    pushed.restore(&mut net);
                    net
                })
            };
            if primary_is_sim {
                let accel = AcceleratorConfig {
                    tiling: Tiling::new(tm, tn, 2, 8, 8),
                    ports: Ports::new(2, 2, 2),
                    freq_mhz: 150.0,
                    data_bits: 16,
                };
                let q = QuantizedNetwork::from_network(&factory_spec, &mut net, accel);
                Ok((
                    Box::new(SimEngine::new(q, PrunedModel::dense()))
                        as Box<dyn InferenceEngine + Send>,
                    Some(Box::new(f32_engine) as Box<dyn InferenceEngine + Send>),
                ))
            } else {
                Ok((
                    Box::new(f32_engine) as Box<dyn InferenceEngine + Send>,
                    None,
                ))
            }
        });
        let canary = (canary_fraction > 0.0).then(|| CanaryPolicy {
            fraction: canary_fraction,
            decide_after: canary_after,
            ..CanaryPolicy::default()
        });
        Some(ModelPushConfig {
            registry,
            factory,
            golden,
            canary,
        })
    };

    let cfg = ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        server: ServerConfig {
            capacity,
            max_batch: batch,
            expected_shape: Some([c, d, h, w]),
            default_deadline: (deadline_ms > 0)
                .then(|| std::time::Duration::from_millis(deadline_ms)),
            max_retries: retries,
            seed,
            ..ServerConfig::default()
        },
        limits: WireLimits {
            max_body_bytes: max_body,
            ..WireLimits::default()
        },
        rate_per_s: rate,
        burst,
        cache_capacity: cache,
        model_hash: serving_hash.clone(),
        ..ServeConfig::default()
    };
    let server = HttpServer::start_with_models(cfg, primary, fallback, models_cfg)
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    println!("listening on {}", server.local_addr());
    if !model_dir.is_empty() {
        println!("serving model {serving_hash} from registry {model_dir}");
    }

    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(25));
        let snap = server.snapshot();
        if max_requests > 0 && snap.http_requests >= max_requests {
            break;
        }
        if duration_s > 0.0 && started.elapsed().as_secs_f64() >= duration_s {
            break;
        }
    }
    let snap = server.shutdown();
    let b = &snap.budget;
    println!(
        "served {} http requests in {:.1} s: {} completed, {} rate limited, {} shed, {} invalid, {} wire rejects, {} batches",
        snap.http_requests,
        snap.uptime_s,
        b.completed,
        b.rate_limited,
        b.shed_overload,
        b.rejected_invalid,
        snap.wire_rejects,
        snap.batches,
    );
    println!("error budget balanced: {}", b.balanced());
    if !model_dir.is_empty() || cache > 0 {
        let s = &snap.swap;
        let (cache_cap, cache_entries, cache_hits, cache_misses) = snap.cache;
        println!(
            "model plane: serving {} | {} published, {} rejected, {} swaps, {} canaries ({} promoted, {} rolled back) | cache {}/{} entries, {} hits, {} misses",
            snap.serving_model,
            s.models_published,
            s.models_rejected,
            s.swaps,
            s.canaries_started,
            s.promotions,
            s.rollbacks,
            cache_entries,
            cache_cap,
            cache_hits,
            cache_misses,
        );
    }
    if threads > 0 {
        set_thread_override(None);
    }
    Ok(())
}

const MODELS_USAGE: &str = "usage: p3d models --dir DIR [--push file.ckpt] [--json]

Inspects (and optionally publishes into) a content-addressed model
registry as used by 'p3d serve --model-dir'. Layout under DIR:

  models/<hash>.ckpt     published checkpoints, named by FNV-1a-64
                         content hash (atomic tmp+fsync+rename writes)
  rejected/<name>.bad    quarantined corrupt pushes, with the typed
                         rejection reason in <name>.reason

--push validates file.ckpt and publishes it under its content hash
(idempotent: re-pushing the same bytes is a no-op). Corrupt or
truncated checkpoints are quarantined, never published. --json emits
the listing as JSON.";

fn cmd_models(args: &Args) -> Result<(), String> {
    if args.get("help", false)? {
        println!("{MODELS_USAGE}");
        return Ok(());
    }
    args.expect_known("models", &["help", "dir", "push", "json"])?;
    let dir = args.required("dir")?;
    let json = args.get("json", false)?;
    let registry =
        ModelRegistry::open(&dir).map_err(|e| format!("cannot open model registry {dir}: {e}"))?;

    if let Some(push) = args.flags.get("push") {
        let bytes = std::fs::read(push).map_err(|e| format!("cannot read {push}: {e}"))?;
        match registry.publish(&bytes) {
            Ok(p) if p.already_present => println!("already published: {}", p.hash),
            Ok(p) => println!("published {} ({} bytes)", p.hash, bytes.len()),
            Err(RegistryError::Rejected { hash, reason }) => {
                return Err(format!("rejected {hash}: {reason} (quarantined under {dir})"));
            }
            Err(e) => return Err(format!("cannot publish {push}: {e}")),
        }
    }

    let models = registry
        .list()
        .map_err(|e| format!("cannot list {dir}: {e}"))?;
    let rejected = registry
        .rejected()
        .map_err(|e| format!("cannot list rejects in {dir}: {e}"))?;
    if json {
        let mut s = String::new();
        s.push_str("{\n  \"models\": [\n");
        let rows: Vec<String> = models
            .iter()
            .map(|m| format!("    {{\"hash\": \"{}\", \"bytes\": {}}}", m.hash, m.bytes))
            .collect();
        s.push_str(&rows.join(",\n"));
        s.push_str("\n  ],\n  \"rejected\": [\n");
        let rows: Vec<String> = rejected
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\": \"{}\", \"reason\": \"{}\"}}",
                    r.name,
                    r.reason.replace('\\', "\\\\").replace('"', "\\\"")
                )
            })
            .collect();
        s.push_str(&rows.join(",\n"));
        s.push_str("\n  ]\n}");
        println!("{s}");
    } else {
        println!("registry {dir}: {} published, {} rejected", models.len(), rejected.len());
        for m in &models {
            println!("  {}  {} bytes", m.hash, m.bytes);
        }
        for r in &rejected {
            println!("  rejected {}: {}", r.name, r.reason);
        }
    }
    Ok(())
}

fn cmd_tables() -> Result<(), String> {
    println!("The table regeneration binaries live in the p3d-bench crate:\n");
    for (bin, what) in [
        ("table1", "R(2+1)D architecture (Table I)"),
        ("table2", "ADMM pruning rates (Table II)"),
        ("table3", "ZCU102 resource utilization (Table III)"),
        ("table4", "performance comparison (Table IV)"),
        ("accuracy", "Section V accuracy experiment (trains)"),
        ("dse", "design-space exploration"),
        ("layer_latency", "per-layer latency/traffic breakdown"),
        ("sweep_sparsity", "latency vs pruning-ratio curve"),
        ("sweep_blockshape", "block-granularity sweep"),
        ("ablation_granularity", "blockwise vs unstructured vs channel"),
        ("ablation_doublebuffer", "overlap on/off"),
        ("ablation_admm", "ADMM vs one-shot magnitude (trains)"),
        ("ablation_quantization", "fixed-point precision sweep (trains)"),
        ("ablation_winograd", "Winograd vs pruning"),
        ("generality", "C3D pruning (trains)"),
    ] {
        println!("  cargo run --release -p p3d-bench --bin {bin:<22} # {what}");
    }
    Ok(())
}

/// `p3d ingest`: write a synthetic P3DVID1 container (`--synth`) or
/// stream an existing one through the prefetch pipeline into the f32
/// engine, reporting end-to-end clips/s and overlap telemetry —
/// optionally against the serial decode-then-infer baseline
/// (`--serial`).
fn cmd_ingest(args: &Args) -> Result<(), String> {
    use p3d::nn::Layer;
    use p3d::video_data::io::{
        read_video_clips, save_video, ClipArena, PrefetchConfig, Prefetcher, PreprocessConfig,
        VidHeader,
    };

    args.expect_known(
        "ingest",
        &[
            "synth", "model", "clips", "width", "height", "seed", "input", "ckpt", "resize-h",
            "resize-w", "batch", "depth", "workers", "threads", "serial", "json",
        ],
    )?;
    let model = args.get("model", "micro".to_string())?;
    let spec = model_spec(&model)?;
    let (c, d, h, w) = spec.input;
    if c != 1 {
        return Err(format!(
            "model '{model}' wants {c} input channels; P3DVID1 streams are single-channel gray8"
        ));
    }
    let seed: u64 = args.get("seed", 42)?;

    // ---- writer mode: synthesize a container ------------------------
    if let Some(out) = args.flags.get("synth") {
        let clips: usize = args.get("clips", 24)?;
        let width: u32 = args.get("width", 256)?;
        let height: u32 = args.get("height", 256)?;
        if clips == 0 {
            return Err("--clips must be positive".into());
        }
        let frames = (clips * d) as u32;
        let header = VidHeader::gray8(width, height, frames, 30_000);
        let mut rng = p3d::tensor::TensorRng::seed(seed);
        let data: Vec<Vec<u8>> = (0..frames)
            .map(|_| {
                (0..header.frame_bytes())
                    .map(|_| rng.below(256) as u8)
                    .collect()
            })
            .collect();
        save_video(
            std::path::Path::new(out),
            header,
            data.iter().map(|f| f.as_slice()),
        )
        .map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "wrote {out}: {frames} frames of {width}x{height} gray8 ({clips} clips of {d} for '{model}', {} bytes)",
            header.stream_len()
        );
        return Ok(());
    }

    // ---- run mode: stream the container into the engine -------------
    let input = args.required("input")?;
    let ckpt = args.required("ckpt")?;
    let resize_h: usize = args.get("resize-h", h + h / 4)?;
    let resize_w: usize = args.get("resize-w", w + w / 4)?;
    let batch: usize = args.get("batch", 8)?;
    let depth: usize = args.get("depth", 4)?;
    let workers: usize = args.get("workers", 2)?;
    let threads: usize = args.get("threads", 0)?;
    let serial = args.get("serial", false)?;
    let json_path = args.get("json", String::new())?;
    if batch == 0 || batch > MAX_BATCH {
        return Err(format!("--batch {batch} out of range (1..={MAX_BATCH})"));
    }
    if threads > MAX_THREADS_FLAG {
        return Err(format!(
            "--threads {threads} is not plausible (max {MAX_THREADS_FLAG})"
        ));
    }
    if threads > 0 {
        set_thread_override(Some(threads));
    }

    // Validates model/checkpoint compatibility before replicating.
    let _validated = load_into(&spec, &ckpt, seed)?;
    let replicas = max_threads().min(batch).max(1);
    let mut engine = F32Engine::new(replicas, || {
        load_into(&spec, &ckpt, seed).expect("checkpoint validated above")
    });

    let preprocess = PreprocessConfig {
        resize_h,
        resize_w,
        crop_h: h,
        crop_w: w,
    };
    let pcfg = PrefetchConfig {
        depth,
        workers,
        clip_depth: d,
        preprocess,
        fault_clip: None,
    };
    let arena = ClipArena::new(pcfg.clip_shape(), depth + workers + batch);
    let path = std::path::Path::new(&input);

    let t0 = std::time::Instant::now();
    let mut pipe =
        Prefetcher::open(path, pcfg, arena.clone()).map_err(|e| format!("opening {input}: {e}"))?;
    let total = pipe.total_clips();
    if total == 0 {
        return Err(format!(
            "{input} holds fewer than {d} frames — no full clip for '{model}'"
        ));
    }
    let mut predictions: Vec<usize> = Vec::with_capacity(total as usize);
    let mut pipe_bits: Vec<Vec<u32>> = Vec::with_capacity(total as usize);
    let mut pending: Vec<p3d::tensor::Tensor> = Vec::with_capacity(batch);
    let flush = |pending: &mut Vec<p3d::tensor::Tensor>,
                     engine: &mut F32Engine,
                     predictions: &mut Vec<usize>,
                     pipe_bits: &mut Vec<Vec<u32>>| {
        if pending.is_empty() {
            return;
        }
        for r in engine.infer_batch(pending) {
            predictions.push(r.prediction);
            pipe_bits.push(r.logits.iter().map(|x| x.to_bits()).collect());
        }
        for t in pending.drain(..) {
            arena.release_tensor(t);
        }
    };
    loop {
        let clip = pipe
            .next_clip()
            .map_err(|e| format!("streaming {input}: {e}"))?;
        match clip {
            Some(clip) => {
                pending.push(clip.into_tensor());
                if pending.len() == batch {
                    flush(&mut pending, &mut engine, &mut predictions, &mut pipe_bits);
                }
            }
            None => {
                flush(&mut pending, &mut engine, &mut predictions, &mut pipe_bits);
                break;
            }
        }
    }
    let pipe_wall = t0.elapsed().as_secs_f64();
    let stats = pipe.stats();
    let grow = arena.stats().grow_events;
    drop(pipe);

    let cps = total as f64 / pipe_wall.max(1e-12);
    println!(
        "pipelined: {total} clips in {:.3} s = {cps:.1} clips/s | decode busy {:.3} s, consumer wait {:.3} s, overlap efficiency {:.2} | arena grow events {grow}",
        pipe_wall,
        stats.decode_busy_s,
        stats.consumer_wait_s,
        stats.overlap_efficiency(),
    );

    let mut serial_cps = 0.0f64;
    let mut bitwise = true;
    if serial {
        let mut net = load_into(&spec, &ckpt, seed)?;
        let t1 = std::time::Instant::now();
        let clips = read_video_clips(path, d, &preprocess)
            .map_err(|e| format!("serial decode of {input}: {e}"))?;
        let mut serial_bits: Vec<Vec<u32>> = Vec::with_capacity(clips.len());
        for clip in &clips {
            let batch1 = clip.reshape([1, c, d, h, w]);
            serial_bits.push(
                net.forward(&batch1, p3d::nn::Mode::Eval)
                    .data()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect(),
            );
        }
        let serial_wall = t1.elapsed().as_secs_f64();
        serial_cps = clips.len() as f64 / serial_wall.max(1e-12);
        bitwise = serial_bits == pipe_bits;
        println!(
            "serial:    {} clips in {:.3} s = {serial_cps:.1} clips/s | pipelined speedup {:.2}x | logits bitwise {}",
            clips.len(),
            serial_wall,
            cps / serial_cps.max(1e-12),
            if bitwise { "identical" } else { "DIVERGED" },
        );
        if !bitwise {
            return Err("pipelined logits diverged from the serial reference".into());
        }
    }

    // Prediction histogram: a quick sanity read on the stream.
    let mut hist: HashMap<usize, usize> = HashMap::new();
    for p in &predictions {
        *hist.entry(*p).or_insert(0) += 1;
    }
    let mut classes: Vec<_> = hist.into_iter().collect();
    classes.sort_unstable();
    let summary: Vec<String> = classes
        .iter()
        .map(|(class, n)| format!("{class}:{n}"))
        .collect();
    println!("predictions: {}", summary.join(" "));

    if !json_path.is_empty() {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"input\": \"{input}\",\n"));
        s.push_str(&format!("  \"model\": \"{model}\",\n"));
        s.push_str(&format!("  \"clips\": {total},\n"));
        s.push_str(&format!("  \"pipelined_clips_per_s\": {cps:.2},\n"));
        s.push_str(&format!("  \"serial_clips_per_s\": {serial_cps:.2},\n"));
        s.push_str(&format!(
            "  \"overlap_efficiency\": {:.3},\n",
            stats.overlap_efficiency()
        ));
        s.push_str(&format!("  \"arena_grow_events\": {grow},\n"));
        s.push_str(&format!("  \"bitwise_equal\": {bitwise}\n"));
        s.push_str("}\n");
        std::fs::write(&json_path, s).map_err(|e| format!("writing {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(
            "usage: p3d <train|eval|prune|simulate|infer|ingest|serve|models|tables> [--flag value ...]"
                .into(),
        );
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "prune" => cmd_prune(&args),
        "simulate" => cmd_simulate(&args),
        "infer" => cmd_infer(&args),
        "ingest" => cmd_ingest(&args),
        "serve" => cmd_serve(&args),
        "models" => cmd_models(&args),
        "tables" => cmd_tables(),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
