//! Integration test: the fixed-point accelerator simulator classifies as
//! well as the f32 network it was quantised from, for both network
//! families (R(2+1)D and C3D), and its cycle counts respond to pruning.

use p3d::fpga::{AcceleratorConfig, Ports, QuantizedNetwork, Tiling};
use p3d::models::{build_network, c3d_lite, r2plus1d_micro, NetworkSpec};
use p3d::nn::{evaluate, CrossEntropyLoss, Dataset, Sgd, Trainer};
use p3d::pruning::PrunedModel;
use p3d::video_data::{GeneratorConfig, SyntheticVideo};

fn accel() -> AcceleratorConfig {
    AcceleratorConfig {
        tiling: Tiling::new(4, 4, 2, 8, 8),
        ports: Ports::new(2, 2, 2),
        freq_mhz: 150.0,
        data_bits: 16,
    }
}

fn train_and_compare(spec: &NetworkSpec, frames: usize, hw: usize) {
    let mut cfg = GeneratorConfig::small();
    cfg.frames = frames;
    cfg.height = hw;
    cfg.width = hw;
    cfg.num_classes = 3;
    let (train, test) = SyntheticVideo::train_test(&cfg, 48, 30, 13);

    let mut net = build_network(spec, 3);
    let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(1e-2, 0.9, 1e-4), 12, 5);
    for _ in 0..12 {
        trainer.train_epoch(&mut net, &train, None);
    }
    let f32_acc = evaluate(&mut net, &test, 12);
    assert!(f32_acc > 0.6, "{}: f32 baseline too weak: {f32_acc}", spec.name);

    let q = QuantizedNetwork::from_network(spec, &mut net, accel());
    let mut correct = 0usize;
    for i in 0..test.len() {
        let (clip, label) = test.sample(i);
        let sim = q.forward(&clip, &PrunedModel::dense());
        if sim.prediction == label {
            correct += 1;
        }
    }
    let sim_acc = correct as f32 / test.len() as f32;
    assert!(
        sim_acc >= f32_acc - 0.15,
        "{}: Q7.8 simulator lost too much accuracy: f32 {f32_acc} vs sim {sim_acc}",
        spec.name
    );
}

#[test]
fn r2plus1d_micro_simulates_accurately() {
    train_and_compare(&r2plus1d_micro(3), 6, 16);
}

#[test]
fn c3d_lite_simulates_accurately() {
    // C3D-lite expects (1, 8, 24, 24) clips; exercises the simulator's
    // max-pool path (absent from R(2+1)D) and full 3x3x3 kernels.
    train_and_compare(&c3d_lite(3), 8, 24);
}
