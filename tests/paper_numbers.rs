//! Integration tests pinning the reproduction to the paper's published
//! numbers (the "shape" checks of EXPERIMENTS.md, enforced in CI).

use p3d::fpga::{
    estimate_resources, network_latency, AcceleratorConfig, Board, DoubleBuffering,
};
use p3d::models::{c3d, r2plus1d_18, summarize};
use p3d::pruning::{BlockGrid, KeepRule, LayerBlockMask, PrunedModel, PruningReport};

/// The analytic pruned model used by the hardware tables (kept blocks
/// uniform across rows; see `p3d-bench`'s `masks` module — re-derived
/// here so the integration test does not depend on the bench crate).
fn paper_pruned(tiling: &p3d::fpga::Tiling) -> PrunedModel {
    let spec = r2plus1d_18(101);
    let mut pm = PrunedModel {
        block_shape: Some(tiling.block_shape()),
        layers: Default::default(),
    };
    for inst in spec.conv_instances().unwrap() {
        let eta = match inst.spec.stage.as_str() {
            "conv2_x" => 0.9,
            "conv3_x" => 0.8,
            _ => continue,
        };
        let grid = BlockGrid::new(
            inst.spec.out_channels,
            inst.spec.in_channels,
            inst.spec.kernel.0 * inst.spec.kernel.1 * inst.spec.kernel.2,
            tiling.block_shape(),
        );
        let kept = KeepRule::Round.kept(grid.num_blocks(), eta);
        let (rows, cols) = (grid.rows(), grid.cols());
        let mut keep = vec![false; grid.num_blocks()];
        let (base, extra) = (kept / rows, kept % rows);
        for bi in 0..rows {
            for bj in 0..(base + usize::from(bi < extra)).min(cols) {
                keep[grid.block_index(bi, bj)] = true;
            }
        }
        pm.insert(inst.spec.name.clone(), LayerBlockMask::new(grid, keep));
    }
    pm
}

#[test]
fn table1_parameter_budget() {
    // Paper: R(2+1)D has 33.22 M parameters and 83.05 G ops per clip.
    let s = summarize(&r2plus1d_18(101)).unwrap();
    assert!((s.total_params as f64 / 1e6 - 33.14).abs() < 0.05);
    assert!((s.total_ops as f64 / 1e9 - 83.05).abs() < 0.2);
}

#[test]
fn table2_pruning_rates() {
    let spec = r2plus1d_18(101);
    let tiling = p3d::fpga::Tiling::paper_tn8();
    let report = PruningReport::build(&spec, &paper_pruned(&tiling)).unwrap();
    // Paper: conv2_x 9.85x, conv3_x 4.85x, total ops 3.18x, params 1.05x.
    let conv2 = report.stages.iter().find(|r| r.stage == "conv2_x").unwrap();
    let conv3 = report.stages.iter().find(|r| r.stage == "conv3_x").unwrap();
    assert!((conv2.param_rate() - 9.85).abs() < 1.5, "{}", conv2.param_rate());
    assert!((conv3.param_rate() - 4.85).abs() < 0.8, "{}", conv3.param_rate());
    assert!((report.total_ops_rate() - 3.18).abs() < 0.25);
    assert!((report.total_param_rate() - 1.05).abs() < 0.02);
}

#[test]
fn table3_resources() {
    let spec = r2plus1d_18(101);
    let insts = spec.conv_instances().unwrap();
    let board = Board::zcu102();
    // Paper: 695 DSP / 710.5 BRAM / 74K LUT / 51K FF at (64,8);
    //        1215 / 912 / 148K / 76K at (64,16).
    let e8 = estimate_resources(&insts, &AcceleratorConfig::paper_tn8());
    assert!((e8.dsps as f64 - 695.0).abs() < 15.0);
    assert!((e8.bram36_partitioned - 710.5).abs() < 120.0);
    assert!((e8.luts as f64 - 74_000.0).abs() < 4_000.0);
    assert!((e8.ffs as f64 - 51_000.0).abs() < 3_000.0);
    let e16 = estimate_resources(&insts, &AcceleratorConfig::paper_tn16());
    assert!((e16.dsps as f64 - 1215.0).abs() < 15.0);
    assert!(e16.bram36_partitioned >= board.bram36 as f64 * 0.95);
}

#[test]
fn table4_latency_shape() {
    // The decisive "shape" checks: who wins and by roughly what factor.
    let r2 = r2plus1d_18(101);
    let c3 = c3d(101);
    let cfg8 = AcceleratorConfig::paper_tn8();
    let cfg16 = AcceleratorConfig::paper_tn16();

    let c3d_8 = network_latency(&c3, &cfg8, &PrunedModel::dense(), DoubleBuffering::On).ms(&cfg8);
    let c3d_16 =
        network_latency(&c3, &cfg16, &PrunedModel::dense(), DoubleBuffering::On).ms(&cfg16);
    let r_dense_8 =
        network_latency(&r2, &cfg8, &PrunedModel::dense(), DoubleBuffering::On).ms(&cfg8);
    let r_pruned_8 = network_latency(&r2, &cfg8, &paper_pruned(&cfg8.tiling), DoubleBuffering::On)
        .ms(&cfg8);
    let r_pruned_16 =
        network_latency(&r2, &cfg16, &paper_pruned(&cfg16.tiling), DoubleBuffering::On)
            .ms(&cfg16);

    // Absolute latencies within ~25% of the paper's measurements.
    assert!((c3d_8 - 826.0).abs() / 826.0 < 0.25, "C3D Tn8 {c3d_8}");
    assert!((c3d_16 - 487.0).abs() / 487.0 < 0.25, "C3D Tn16 {c3d_16}");
    assert!((r_dense_8 - 1044.0).abs() / 1044.0 < 0.35, "R dense {r_dense_8}");
    assert!((r_pruned_8 - 386.0).abs() / 386.0 < 0.35, "R pruned {r_pruned_8}");
    assert!((r_pruned_16 - 234.0).abs() / 234.0 < 0.35, "R pruned16 {r_pruned_16}");

    // Headline claim 1: pruning buys ~2.6x end-to-end.
    let speedup = r_dense_8 / r_pruned_8;
    assert!((2.2..3.0).contains(&speedup), "pruned speedup {speedup}");

    // Headline claim 2: pruned R(2+1)D (Tn=16) beats F-C3D [13] by ~2.3x.
    let vs_fc3d = 542.5 / r_pruned_16;
    assert!((1.9..2.7).contains(&vs_fc3d), "vs [13]: {vs_fc3d}");

    // Ordering: Tn=16 beats Tn=8 on both networks.
    assert!(c3d_16 < c3d_8);
    assert!(r_pruned_16 < r_pruned_8);
}
