//! End-to-end integration test: the full paper pipeline on micro scale —
//! train, ADMM-prune, hard-prune, masked-retrain, then run the pruned
//! network on the simulated accelerator and check the co-design payoff.

use p3d::fpga::{
    network_latency, AcceleratorConfig, DoubleBuffering, Ports, QuantizedNetwork, Tiling,
};
use p3d::models::{build_network, r2plus1d_micro};
use p3d::nn::{CrossEntropyLoss, Layer, LrSchedule, Mode, Sgd, Trainer};
use p3d::pruning::{
    targets_for_stages, AdmmConfig, AdmmPruner, BlockShape, KeepRule, PrunedModel,
};
use p3d::video_data::{GeneratorConfig, SyntheticVideo};

fn micro_dataset() -> (SyntheticVideo, SyntheticVideo) {
    let mut cfg = GeneratorConfig::small();
    cfg.frames = 6;
    cfg.height = 16;
    cfg.width = 16;
    cfg.num_classes = 3;
    SyntheticVideo::train_test(&cfg, 48, 24, 77)
}

#[test]
fn full_pipeline_prunes_and_accelerates() {
    let (train, test) = micro_dataset();
    let spec = r2plus1d_micro(3);
    let mut net = build_network(&spec, 21);
    let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(1e-2, 0.9, 1e-4), 12, 5);

    // Train the baseline enough to beat chance solidly.
    for _ in 0..10 {
        trainer.train_epoch(&mut net, &train, None);
    }
    let acc_before = trainer.evaluate(&mut net, &test);
    assert!(acc_before > 0.5, "baseline failed to learn: {acc_before}");

    // ADMM prune conv2_x at 50% block sparsity.
    let targets = targets_for_stages(&spec, &[("conv2_x", 0.5)]);
    let shape = BlockShape::new(4, 4);
    let config = AdmmConfig {
        rho_schedule: vec![5e-2, 2e-1],
        epochs_per_round: 4,
        epochs_per_admm_update: 2,
        keep_rule: KeepRule::Round,
        epsilon: 0.2,
    };
    let mut pruner = AdmmPruner::new(&mut net, shape, &targets, config);
    pruner.admm_train(&mut net, &mut trainer, &train);
    let pruned = pruner.hard_prune(&mut net);
    assert!(pruner.verify_sparsity(&mut net));

    // Masked retraining restores accuracy near the baseline.
    let schedule = LrSchedule::WarmupCosine {
        base_lr: 5e-3,
        warmup_epochs: 1,
        total_epochs: 8,
        min_lr: 1e-5,
    };
    AdmmPruner::retrain(&mut net, &mut trainer, &train, &schedule, 8);
    let acc_after = trainer.evaluate(&mut net, &test);
    assert!(pruner.verify_sparsity(&mut net), "retraining broke sparsity");
    assert!(
        acc_after >= acc_before - 0.25,
        "pruning cost too much accuracy: {acc_before} -> {acc_after}"
    );

    // The pruned model must be faster on the modelled accelerator whose
    // tiling matches the pruning blocks.
    let accel = AcceleratorConfig {
        tiling: Tiling::new(shape.tm, shape.tn, 2, 8, 8),
        ports: Ports::new(2, 2, 2),
        freq_mhz: 150.0,
        data_bits: 16,
    };
    let dense_lat = network_latency(&spec, &accel, &PrunedModel::dense(), DoubleBuffering::On);
    let pruned_lat = network_latency(&spec, &accel, &pruned, DoubleBuffering::On);
    assert!(
        pruned_lat.total_cycles < dense_lat.total_cycles,
        "pruning bought no modelled speedup"
    );

    // And the functional simulator agrees with the f32 network and skips
    // exactly the pruned blocks.
    let q = QuantizedNetwork::from_network(&spec, &mut net, accel);
    let mut agree = 0;
    for (clip, _) in test.clips().iter().take(8) {
        let sim = q.forward(clip, &pruned);
        let sim_dense = q.forward(clip, &PrunedModel::dense());
        assert_eq!(
            sim.logits, sim_dense.logits,
            "block skipping changed the output"
        );
        assert!(sim.stats.cycles < sim_dense.stats.cycles);
        let batch = clip.reshape([1, 1, 6, 16, 16]);
        if net.forward(&batch, Mode::Eval).argmax() == sim.prediction {
            agree += 1;
        }
    }
    assert!(agree >= 6, "fixed-point sim disagrees with reference: {agree}/8");
}

/// Fraction of a layer's weight mass sitting in the blocks that the
/// projection would prune (the bottom `eta` by block norm).
fn doomed_mass_fraction(net: &mut dyn Layer, layer: &str, eta: f64) -> f64 {
    let mut fraction = None;
    net.visit_params(&mut |p| {
        if p.name == format!("{layer}.weight") {
            let grid = p3d::pruning::BlockGrid::for_weight(&p.value, BlockShape::new(4, 4));
            let mut norms = grid.block_norms_sq(&p.value);
            let total: f64 = norms.iter().sum();
            norms.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let pruned_count = grid.num_blocks() - KeepRule::Round.kept(grid.num_blocks(), eta);
            let doomed: f64 = norms.iter().take(pruned_count).sum();
            fraction = Some(doomed / total.max(1e-12));
        }
    });
    fraction.expect("layer present")
}

#[test]
fn admm_training_moves_mass_out_of_doomed_blocks() {
    // The mechanism behind the paper's "negligible accuracy loss": the
    // W-step's quadratic pull drains the blocks that the Z-projection
    // keeps zeroing, so hard pruning removes less information than
    // one-shot magnitude pruning would.
    let (train, _) = micro_dataset();
    let spec = r2plus1d_micro(3);
    let mut net = build_network(&spec, 4);
    let mut trainer = Trainer::new(
        CrossEntropyLoss::with_smoothing(0.1),
        Sgd::new(1e-2, 0.9, 0.0),
        12,
        9,
    );
    for _ in 0..6 {
        trainer.train_epoch(&mut net, &train, None);
    }
    let layer = "conv2_1a.spatial";
    let eta = 0.5;
    let before = doomed_mass_fraction(&mut net, layer, eta);

    let targets = targets_for_stages(&spec, &[("conv2_x", eta)]);
    let config = AdmmConfig {
        rho_schedule: vec![5e-2, 2e-1, 5e-1],
        epochs_per_round: 6,
        epochs_per_admm_update: 2,
        keep_rule: KeepRule::Round,
        epsilon: 0.2,
    };
    let mut pruner = AdmmPruner::new(&mut net, BlockShape::new(4, 4), &targets, config);
    pruner.admm_train(&mut net, &mut trainer, &train);
    let after = doomed_mass_fraction(&mut net, layer, eta);

    assert!(
        after < before * 0.7,
        "ADMM did not concentrate mass into surviving blocks: {before:.4} -> {after:.4}"
    );
}
