//! Integration tests for the `p3d` command-line interface.

use std::process::Command;

fn p3d() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p3d"))
}

#[test]
fn no_command_prints_usage() {
    let out = p3d().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = p3d().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_model_rejected() {
    let out = p3d()
        .args(["train", "--model", "resnet-900", "--epochs", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}

#[test]
fn missing_required_flag_reported() {
    let out = p3d().args(["eval"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--ckpt is required"));
}

#[test]
fn tables_lists_bench_binaries() {
    let out = p3d().arg("tables").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for bin in ["table1", "table4", "accuracy", "ablation_winograd"] {
        assert!(text.contains(bin), "missing {bin} in tables output");
    }
}

#[test]
fn train_eval_simulate_roundtrip() {
    let dir = std::env::temp_dir().join("p3d_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "2", "--clips", "30", "--seed", "7",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists(), "checkpoint not written");

    let out = p3d()
        .args(["eval", "--model", "micro", "--ckpt", ckpt_s, "--clips", "30", "--seed", "7"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("test accuracy"));

    let out = p3d()
        .args([
            "simulate", "--model", "micro", "--ckpt", ckpt_s, "--tm", "4", "--tn", "4",
            "--clips", "10", "--seed", "7",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated accuracy"));
    assert!(text.contains("ms/clip"));
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn eval_with_wrong_model_for_checkpoint_fails() {
    let dir = std::env::temp_dir().join("p3d_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro2.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    // c3d-lite has entirely different parameter names.
    let out = p3d()
        .args(["eval", "--model", "c3d-lite", "--ckpt", ckpt_s])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // Either the clean no-overlap error, or the shape-mismatch panic from
    // a colliding parameter name (both models call their classifier "fc").
    assert!(
        err.contains("matches no parameters") || err.contains("shape mismatch"),
        "unexpected failure mode: {err}"
    );
    let _ = std::fs::remove_file(&ckpt);
}
