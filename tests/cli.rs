//! Integration tests for the `p3d` command-line interface.

use std::process::Command;

fn p3d() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p3d"))
}

#[test]
fn no_command_prints_usage() {
    let out = p3d().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = p3d().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_model_rejected() {
    let out = p3d()
        .args(["train", "--model", "resnet-900", "--epochs", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}

#[test]
fn missing_required_flag_reported() {
    let out = p3d().args(["eval"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--ckpt is required"));
}

#[test]
fn tables_lists_bench_binaries() {
    let out = p3d().arg("tables").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for bin in ["table1", "table4", "accuracy", "ablation_winograd"] {
        assert!(text.contains(bin), "missing {bin} in tables output");
    }
}

#[test]
fn train_eval_simulate_roundtrip() {
    let dir = std::env::temp_dir().join("p3d_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "2", "--clips", "30", "--seed", "7",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists(), "checkpoint not written");

    let out = p3d()
        .args(["eval", "--model", "micro", "--ckpt", ckpt_s, "--clips", "30", "--seed", "7"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("test accuracy"));

    let out = p3d()
        .args([
            "simulate", "--model", "micro", "--ckpt", ckpt_s, "--tm", "4", "--tn", "4",
            "--clips", "10", "--seed", "7",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated accuracy"));
    assert!(text.contains("ms/clip"));
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn eval_with_wrong_model_for_checkpoint_fails() {
    let dir = std::env::temp_dir().join("p3d_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro2.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    // c3d-lite has entirely different parameter names.
    let out = p3d()
        .args(["eval", "--model", "c3d-lite", "--ckpt", ckpt_s])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // Either the clean no-overlap error, or the shape-mismatch panic from
    // a colliding parameter name (both models call their classifier "fc").
    assert!(
        err.contains("matches no parameters") || err.contains("shape mismatch"),
        "unexpected failure mode: {err}"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn infer_help_exits_zero_with_usage() {
    let out = p3d().args(["infer", "--help"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: p3d infer"), "{text}");
    assert!(text.contains("--backend"), "{text}");
}

#[test]
fn infer_unknown_flag_rejected() {
    let out = p3d()
        .args(["infer", "--bogus", "1", "--ckpt", "whatever.ckpt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --bogus"), "{err}");
    assert!(err.contains("p3d infer --help"), "{err}");
}

#[test]
fn infer_missing_checkpoint_path_fails_cleanly() {
    let out = p3d()
        .args(["infer", "--model", "micro", "--ckpt", "/nonexistent/missing.ckpt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot load /nonexistent/missing.ckpt"), "{err}");
}

#[test]
fn infer_streams_both_backends_and_writes_json() {
    let dir = std::env::temp_dir().join("p3d_cli_infer");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let json = dir.join("infer.json");
    let json_s = json.to_str().unwrap();

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--seed", "9",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = p3d()
        .args([
            "infer", "--model", "micro", "--ckpt", ckpt_s, "--clips", "12", "--batch", "4",
            "--backend", "both", "--tm", "4", "--tn", "4", "--seed", "9", "--json", json_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "infer failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clips/s"), "{text}");
    assert!(text.contains("p50"), "{text}");
    assert!(text.contains("accuracy"), "{text}");
    assert!(text.contains("f32"), "{text}");
    assert!(text.contains("sim"), "{text}");

    let report = std::fs::read_to_string(&json).expect("json report written");
    assert!(report.contains("\"backend\": \"f32\""), "{report}");
    assert!(report.contains("\"backend\": \"sim\""), "{report}");
    assert!(report.contains("\"p99_ms\""), "{report}");
    assert_eq!(
        report.matches('{').count(),
        report.matches('}').count(),
        "unbalanced JSON: {report}"
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&json);
}

#[test]
fn infer_rejects_bad_backend() {
    let out = p3d()
        .args(["infer", "--ckpt", "x.ckpt", "--backend", "tpu"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown backend 'tpu'"), "{err}");
}

/// Every implausible or zero flag value must fail fast with a clear
/// message and a nonzero exit, before any model work starts.
#[test]
fn infer_rejects_zero_and_implausible_flag_values() {
    let cases: &[(&[&str], &str)] = &[
        (&["--batch", "0"], "--batch must be positive"),
        (&["--batch", "100000"], "--batch 100000 is not plausible"),
        (&["--threads", "99999"], "--threads 99999 is not plausible"),
        (&["--replicas", "0"], "--replicas must be positive"),
        (&["--replicas", "5000"], "--replicas 5000 is not plausible"),
        (&["--deadline-ms", "0"], "--deadline-ms must be positive"),
        (
            &["--deadline-ms", "86400000"],
            "--deadline-ms 86400000 is not plausible",
        ),
        (&["--retries", "99"], "--retries 99 is not plausible"),
        (&["--batch", "abc"], "invalid value 'abc' for --batch"),
    ];
    for (flags, want) in cases {
        let out = p3d()
            .args(["infer", "--ckpt", "x.ckpt"])
            .args(*flags)
            .output()
            .expect("spawn");
        assert!(
            !out.status.success(),
            "{flags:?} should have been rejected"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(want), "for {flags:?}: {err}");
    }
}

/// Pulls the integer after `"key": ` out of a JSON string.
fn json_u64(report: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = report.find(&pat).unwrap_or_else(|| panic!("no {key} in {report}"));
    report[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer after key")
}

#[test]
fn infer_resilient_chaos_reports_error_budget() {
    let dir = std::env::temp_dir().join("p3d_cli_chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let json = dir.join("chaos.json");
    let json_s = json.to_str().unwrap();

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--seed", "9",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 24 requested clips -> 12 test clips; chaos seed 7 schedules at
    // least one transient panic and one saturation storm over them.
    let out = p3d()
        .args([
            "infer", "--model", "micro", "--ckpt", ckpt_s, "--clips", "24", "--batch", "8",
            "--backend", "sim", "--tm", "4", "--tn", "4", "--chaos-seed", "7", "--capacity",
            "64", "--retries", "2", "--json", json_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "chaos infer failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("budget:"), "{text}");
    assert!(text.contains("fallbacks"), "{text}");

    let report = std::fs::read_to_string(&json).expect("json report written");
    assert!(report.contains("\"mode\": \"resilient\""), "{report}");
    assert!(report.contains("\"error_budget\""), "{report}");
    let submitted = json_u64(&report, "submitted");
    let completed = json_u64(&report, "completed");
    let quarantined = json_u64(&report, "quarantined");
    let expired = json_u64(&report, "deadline_expired");
    let shed = json_u64(&report, "shed_overload");
    let invalid = json_u64(&report, "rejected_invalid");
    assert_eq!(submitted, 12);
    // Exactly-once: admission and resolution partitions must balance.
    assert_eq!(
        json_u64(&report, "admitted") + shed + invalid,
        submitted,
        "{report}"
    );
    assert_eq!(
        completed + expired + quarantined,
        json_u64(&report, "admitted"),
        "{report}"
    );
    // The seeded mix must actually exercise the machinery.
    assert!(
        json_u64(&report, "retries") >= 1,
        "no retries under chaos: {report}"
    );
    assert!(
        json_u64(&report, "fallbacks") >= 1,
        "no sim->f32 fallback under chaos: {report}"
    );
    assert_eq!(
        report.matches('{').count(),
        report.matches('}').count(),
        "unbalanced JSON: {report}"
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&json);
}

/// Regression for the `--json` schema drift: the batch path used to
/// emit rows with no `mode` and no `error_budget` while the resilient
/// path embedded both, so consumers needed two parsers. Both modes now
/// render through one serializer and must carry the same keys — batch
/// mode with the degenerate all-completed budget.
#[test]
fn infer_json_schema_is_identical_across_modes() {
    let dir = std::env::temp_dir().join("p3d_cli_schema");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let batch_json = dir.join("batch.json");
    let resilient_json = dir.join("resilient.json");

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--seed", "9",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    for (mode_flags, path) in [
        (&[][..], &batch_json),
        (&["--resilient"][..], &resilient_json),
    ] {
        let out = p3d()
            .args([
                "infer", "--model", "micro", "--ckpt", ckpt_s, "--clips", "12", "--batch",
                "4", "--backend", "f32", "--seed", "9", "--json", path.to_str().unwrap(),
            ])
            .args(mode_flags)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "infer {mode_flags:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let batch = std::fs::read_to_string(&batch_json).expect("batch json");
    let resilient = std::fs::read_to_string(&resilient_json).expect("resilient json");
    // One schema: every key present in one mode's row exists in the
    // other's. (Schema stability — consumers parse both with one shape.)
    for key in [
        "backend", "mode", "clips_per_s", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
        "accuracy", "batches", "error_budget", "submitted", "admitted", "shed_overload",
        "rejected_invalid", "rate_limited", "deadline_expired", "retries", "quarantined",
        "fallbacks", "completed", "balanced",
    ] {
        let pat = format!("\"{key}\"");
        assert!(batch.contains(&pat), "batch report lacks {key}: {batch}");
        assert!(resilient.contains(&pat), "resilient report lacks {key}: {resilient}");
    }
    assert!(batch.contains("\"mode\": \"batch\""), "{batch}");
    assert!(resilient.contains("\"mode\": \"resilient\""), "{resilient}");
    // The batch-mode budget is the degenerate balanced one.
    assert_eq!(json_u64(&batch, "submitted"), 6);
    assert_eq!(json_u64(&batch, "completed"), 6);
    assert!(batch.contains("\"balanced\": true"), "{batch}");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&batch_json);
    let _ = std::fs::remove_file(&resilient_json);
}

/// `p3d serve` end to end as a child process: binds an ephemeral port,
/// answers /healthz, /stats, and a real zero-clip inference, exits on
/// --max-requests, and reports a balanced budget on the way out.
#[test]
fn serve_answers_http_and_exits_with_balanced_budget() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join("p3d_cli_serve");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--seed", "9",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = p3d()
        .args([
            "serve", "--model", "micro", "--ckpt", ckpt_s, "--port", "0", "--backend",
            "f32", "--seed", "9", "--max-requests", "3",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();

    let request = |head: &str, body: &[u8]| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body).unwrap();
        s.flush().unwrap();
        let mut reply = Vec::new();
        let _ = s.read_to_end(&mut reply);
        String::from_utf8_lossy(&reply).into_owned()
    };

    let health = request("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", b"");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");

    // A micro clip of zeros: [1, 6, 16, 16] little-endian f32.
    let clip = vec![0u8; 6 * 16 * 16 * 4];
    let infer = request(
        &format!(
            "POST /v1/infer HTTP/1.1\r\nConnection: close\r\n\
             Content-Type: application/x-p3d-f32\r\nX-P3D-Shape: 1,6,16,16\r\n\
             Content-Length: {}\r\n\r\n",
            clip.len()
        ),
        &clip,
    );
    assert!(infer.starts_with("HTTP/1.1 200"), "{infer}");
    for key in ["prediction", "logits_bits", "kernel_path", "latency_ms"] {
        assert!(infer.contains(&format!("\"{key}\"")), "response lacks {key}: {infer}");
    }

    let stats = request("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n", b"");
    assert!(stats.starts_with("HTTP/1.1 200"), "{stats}");
    assert!(stats.contains("\"error_budget\""), "{stats}");

    // Third request trips --max-requests; the server exits on its own.
    let status = child.wait().expect("serve exit");
    assert!(status.success(), "serve exited nonzero");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(
        rest.contains("error budget balanced: true"),
        "final report: {rest}"
    );
    assert!(rest.contains("served 3 http requests"), "final report: {rest}");

    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn models_subcommand_publishes_lists_and_rejects() {
    let dir = std::env::temp_dir().join("p3d_cli_models");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("micro.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let registry = dir.join("registry");
    let registry_s = registry.to_str().unwrap();

    let out = p3d()
        .args([
            "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--seed", "11",
            "--out", ckpt_s,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Publish, then list — the content hash shows up in both.
    let out = p3d()
        .args(["models", "--dir", registry_s, "--push", ckpt_s])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("published "), "{text}");

    let out = p3d()
        .args(["models", "--dir", registry_s, "--json"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"models\""), "{json}");
    assert!(json.contains("\"hash\""), "{json}");

    // Re-pushing the same bytes is idempotent, not an error.
    let out = p3d()
        .args(["models", "--dir", registry_s, "--push", ckpt_s])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("already published"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A truncated checkpoint is rejected typed, exits nonzero, and is
    // quarantined — visible in the next listing.
    let bytes = std::fs::read(&ckpt).unwrap();
    let broken = dir.join("broken.ckpt");
    std::fs::write(&broken, &bytes[..bytes.len() / 2]).unwrap();
    let out = p3d()
        .args(["models", "--dir", registry_s, "--push", broken.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "corrupt push must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rejected"), "{err}");

    let out = p3d()
        .args(["models", "--dir", registry_s])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 published, 1 rejected"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_with_model_dir_hot_swaps_over_the_wire() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join("p3d_cli_swap");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_a = dir.join("a.ckpt");
    let ckpt_b = dir.join("b.ckpt");
    let registry = dir.join("registry");

    for (seed, path) in [("13", &ckpt_a), ("14", &ckpt_b)] {
        let out = p3d()
            .args([
                "train", "--model", "micro", "--epochs", "1", "--clips", "20", "--seed",
                seed, "--out", path.to_str().unwrap(),
            ])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "train failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let mut child = p3d()
        .args([
            "serve", "--model", "micro", "--ckpt", ckpt_a.to_str().unwrap(), "--port",
            "0", "--backend", "f32", "--seed", "13", "--model-dir",
            registry.to_str().unwrap(), "--cache", "16", "--max-requests", "4",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    line.clear();
    stdout.read_line(&mut line).expect("registry line");
    assert!(line.contains("from registry"), "{line}");

    let request = |head: &str, body: &[u8]| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body).unwrap();
        s.flush().unwrap();
        let mut reply = Vec::new();
        let _ = s.read_to_end(&mut reply);
        String::from_utf8_lossy(&reply).into_owned()
    };

    // Push B over the wire; the server validates, publishes and swaps.
    let b_bytes = std::fs::read(&ckpt_b).unwrap();
    let push = request(
        &format!(
            "POST /v1/models HTTP/1.1\r\nConnection: close\r\n\
             Content-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
            b_bytes.len()
        ),
        &b_bytes,
    );
    assert!(push.starts_with("HTTP/1.1 202"), "{push}");
    assert!(push.contains("\"swapping\""), "{push}");

    // An infer request lands on exactly one of the two models (the
    // swap races the request) and carries its provenance.
    let clip = vec![0u8; 6 * 16 * 16 * 4];
    let infer = request(
        &format!(
            "POST /v1/infer HTTP/1.1\r\nConnection: close\r\n\
             Content-Type: application/x-p3d-f32\r\nX-P3D-Shape: 1,6,16,16\r\n\
             Content-Length: {}\r\n\r\n",
            clip.len()
        ),
        &clip,
    );
    assert!(infer.starts_with("HTTP/1.1 200"), "{infer}");
    assert!(infer.contains("\"model_hash\""), "{infer}");

    let listing = request("GET /v1/models HTTP/1.1\r\nConnection: close\r\n\r\n", b"");
    assert!(listing.starts_with("HTTP/1.1 200"), "{listing}");
    assert!(listing.contains("\"serving\""), "{listing}");

    // Fourth request trips --max-requests; the server exits on its own.
    let _ = request("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n", b"");
    let status = child.wait().expect("serve exit");
    assert!(status.success(), "serve exited nonzero");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(
        rest.contains("error budget balanced: true"),
        "final report: {rest}"
    );
    assert!(rest.contains("model plane: serving"), "final report: {rest}");

    let _ = std::fs::remove_dir_all(&dir);
}
