#![warn(missing_docs)]
//! Offline mini-implementation of the `proptest` API surface used by the
//! workspace's property tests.
//!
//! Supported: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assert_ne!`], [`prop_assume!`], range and tuple strategies,
//! [`Strategy::prop_map`], `prop::collection::vec`, `prop::sample::select`,
//! `any::<bool>()`, and [`Just`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   (deterministic) values, not a minimised counterexample.
//! * **Deterministic seeding.** The per-case RNG is derived from the test
//!   name and case index, so failures reproduce without a regression file.
//! * **Rejection budget.** `prop_assume!` rejections retry the case; the
//!   test aborts after 16x the configured case count of total attempts.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SampleRange, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// The per-case random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        TestRng {
            inner: StdRng::seed_from_u64(h.finish()),
        }
    }

    fn sample<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.inner.random_range(range)
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

range_strategies!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Constructs the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for `any::<bool>()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_width_ints {
    ($($t:ty => $name:ident),*) => {$(
        /// Full-width integer strategy.
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;
        impl Strategy for $name {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

arbitrary_full_width_ints!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                           i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64,
                           usize => AnyUsize, isize => AnyIsize);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select() over an empty vec");
            let i = rng.sample(0..self.items.len());
            self.items[i].clone()
        }
    }
}

/// Test-runner configuration (`ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is retried, not counted.
    Reject(String),
    /// `prop_assert!*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Drives one property test: draws cases from `strategy`, runs `f`, and
/// panics on the first failing case. Used by the [`proptest!`] expansion.
///
/// # Panics
///
/// Panics when a case fails or when the rejection budget is exhausted.
pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(16).max(1024);
    while accepted < config.cases {
        if attempt >= max_attempts {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({accepted}/{} accepted after {attempt} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(name, attempt);
        attempt += 1;
        let value = strategy.generate(&mut rng);
        match f(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case #{} : {msg}",
                    attempt - 1
                );
            }
        }
    }
}

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of the crate layout, as re-exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests over drawn values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_cases(&config, stringify!($name), &strategy,
                    |($($pat,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    });
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Rejects the current case (retried without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3usize..10, y in -1.5f32..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn tuples_and_map((a, b) in (0u64..5, 0u64..5).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5);
        }

        #[test]
        fn vec_and_select(xs in prop::collection::vec(0usize..4, 1..=6),
                          pick in prop::sample::select(vec![10usize, 20, 30])) {
            prop_assert!(!xs.is_empty() && xs.len() <= 6);
            prop_assert!(xs.iter().all(|&x| x < 4));
            prop_assert!(pick % 10 == 0);
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_applies(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_cases(
            &ProptestConfig::with_cases(4),
            "failures_panic",
            &(0usize..10,),
            |(_n,)| Err(TestCaseError::fail("boom")),
        );
    }
}
