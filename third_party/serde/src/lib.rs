#![warn(missing_docs)]
//! Offline stand-in for `serde`: the `Serialize` / `Deserialize` names in
//! both the trait and macro namespaces.
//!
//! The workspace only ever *derives* these traits (no serializer backend
//! is in the offline dependency set), so the traits are empty markers and
//! the derives expand to nothing. See `third_party/README.md`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

// The derive macros share the trait names (macro namespace vs type
// namespace), exactly like the real crate with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
