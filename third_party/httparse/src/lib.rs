#![warn(missing_docs)]
//! Offline mini-implementation of the `httparse` request-parsing API
//! surface used by the workspace's HTTP serving layer.
//!
//! Supported: [`Request::parse`] over an incrementally filled buffer,
//! returning [`Status::Partial`] until the full head (request line +
//! headers + blank line) is present, [`EMPTY_HEADER`] header slots, and
//! typed [`Error`]s for malformed input.
//!
//! Differences from the real crate, by design:
//!
//! * **Requests only.** No response parsing, no chunked-extension
//!   helpers — the serving layer frames bodies by `Content-Length`.
//! * **Strict CRLF.** Lines end with `\r\n`; a bare `\n` is a parse
//!   error rather than a tolerated variant.
//! * **No unsafe, no SIMD.** Byte-at-a-time scanning; the caller caps
//!   head size long before parser throughput matters.

/// A parsed header: a name and its raw value bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header<'b> {
    /// Header name as it appeared (case preserved).
    pub name: &'b str,
    /// Raw value bytes, surrounding ASCII whitespace trimmed.
    pub value: &'b [u8],
}

/// An empty header slot, for building the caller-owned header array.
pub const EMPTY_HEADER: Header<'static> = Header { name: "", value: b"" };

/// Parse outcome: either the head is complete (with its byte length,
/// body follows at that offset) or more input is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status<T> {
    /// The request head is complete; the payload is the head's length.
    Complete(T),
    /// The buffer ends before the head does; read more and re-parse.
    Partial,
}

impl<T> Status<T> {
    /// `true` for [`Status::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Status::Complete(_))
    }
}

/// A malformed request head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// The request line or a header line contains a byte that is not
    /// allowed there (control bytes, missing separators, bare `\n`).
    Token,
    /// The `HTTP/1.x` version tag is malformed or unsupported.
    Version,
    /// A header line has no `:` separator.
    HeaderName,
    /// More headers than the caller provided slots for.
    TooManyHeaders,
    /// A line ended with a lone `\r` not followed by `\n`.
    NewLine,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            Error::Token => "invalid token",
            Error::Version => "invalid HTTP version",
            Error::HeaderName => "invalid header name",
            Error::TooManyHeaders => "too many headers",
            Error::NewLine => "invalid line ending",
        };
        write!(f, "{what}")
    }
}

impl std::error::Error for Error {}

/// Shorthand for parse results.
pub type Result<T> = std::result::Result<Status<T>, Error>;

/// A request head being parsed into caller-owned storage.
///
/// ```
/// let mut headers = [httparse::EMPTY_HEADER; 8];
/// let mut req = httparse::Request::new(&mut headers);
/// let buf = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
/// let status = req.parse(buf).unwrap();
/// assert_eq!(status, httparse::Status::Complete(buf.len() - 4));
/// assert_eq!(req.method, Some("POST"));
/// assert_eq!(req.path, Some("/v1/infer"));
/// assert_eq!(req.version, Some(1));
/// assert_eq!(req.headers[0].name, "Content-Length");
/// ```
#[derive(Debug)]
pub struct Request<'h, 'b> {
    /// Request method (`GET`, `POST`, ...), set on completion.
    pub method: Option<&'b str>,
    /// Request target, set on completion.
    pub path: Option<&'b str>,
    /// Minor HTTP version: `0` for HTTP/1.0, `1` for HTTP/1.1.
    pub version: Option<u8>,
    /// Parsed headers; on completion, the used prefix of the slots the
    /// caller passed to [`Request::new`].
    pub headers: &'h mut [Header<'b>],
}

/// `true` for bytes legal in an RFC 7230 token (methods, header names).
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'
        | b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-'
        | b'.' | b'^' | b'_' | b'`' | b'|' | b'~')
}

/// `true` for bytes legal in a request target (no whitespace/controls).
fn is_target_byte(b: u8) -> bool {
    (0x21..=0x7e).contains(&b)
}

/// Takes one CRLF-terminated line out of `buf` starting at `at`.
/// Returns the line (without CRLF) and the offset just past it.
fn take_line(buf: &[u8], at: usize) -> Result<(&[u8], usize)> {
    let mut i = at;
    while i < buf.len() {
        match buf[i] {
            b'\r' => {
                return match buf.get(i + 1) {
                    Some(b'\n') => Ok(Status::Complete((&buf[at..i], i + 2))),
                    Some(_) => Err(Error::NewLine),
                    None => Ok(Status::Partial),
                };
            }
            // A bare LF (or a NUL) never appears in a well-formed head.
            b'\n' | 0 => return Err(Error::Token),
            _ => i += 1,
        }
    }
    Ok(Status::Partial)
}

impl<'h, 'b> Request<'h, 'b> {
    /// A request that will parse into `headers`.
    pub fn new(headers: &'h mut [Header<'b>]) -> Request<'h, 'b> {
        Request {
            method: None,
            path: None,
            version: None,
            headers,
        }
    }

    /// Parses a request head from `buf`.
    ///
    /// Returns [`Status::Complete`] with the head's byte length (the
    /// body, if any, starts at that offset), [`Status::Partial`] when
    /// `buf` ends before the blank line, or an [`Error`] as soon as the
    /// prefix present is malformed — more input cannot fix it.
    pub fn parse(&mut self, buf: &'b [u8]) -> Result<usize> {
        // ---- request line: METHOD SP TARGET SP HTTP/1.x ------------
        let (line, mut at) = match take_line(buf, 0)? {
            Status::Complete(v) => v,
            Status::Partial => {
                // Reject hopeless prefixes early: the method token and
                // its trailing space must be clean even in a fragment.
                let bad = buf
                    .iter()
                    .take_while(|&&b| b != b' ')
                    .any(|&b| !is_token_byte(b));
                return if bad { Err(Error::Token) } else { Ok(Status::Partial) };
            }
        };
        let line_str = std::str::from_utf8(line).map_err(|_| Error::Token)?;
        let mut parts = line_str.splitn(3, ' ');
        let method = parts.next().unwrap_or("");
        let target = parts.next().ok_or(Error::Token)?;
        let version = parts.next().ok_or(Error::Version)?;
        if method.is_empty() || !method.bytes().all(is_token_byte) {
            return Err(Error::Token);
        }
        if target.is_empty() || !target.bytes().all(is_target_byte) {
            return Err(Error::Token);
        }
        let minor = match version {
            "HTTP/1.0" => 0,
            "HTTP/1.1" => 1,
            _ => return Err(Error::Version),
        };

        // ---- header lines until the blank line ---------------------
        let mut used = 0usize;
        loop {
            let (line, next) = match take_line(buf, at)? {
                Status::Complete(v) => v,
                Status::Partial => return Ok(Status::Partial),
            };
            at = next;
            if line.is_empty() {
                break; // blank line: head complete
            }
            let colon = line
                .iter()
                .position(|&b| b == b':')
                .ok_or(Error::HeaderName)?;
            let name_bytes = &line[..colon];
            if name_bytes.is_empty() || !name_bytes.iter().all(|&b| is_token_byte(b)) {
                return Err(Error::HeaderName);
            }
            let name = std::str::from_utf8(name_bytes).map_err(|_| Error::HeaderName)?;
            let mut value = &line[colon + 1..];
            while let [b' ' | b'\t', rest @ ..] = value {
                value = rest;
            }
            while let [rest @ .., b' ' | b'\t'] = value {
                value = rest;
            }
            if value.iter().any(|&b| b < 0x20 && b != b'\t') {
                return Err(Error::Token);
            }
            if used == self.headers.len() {
                return Err(Error::TooManyHeaders);
            }
            self.headers[used] = Header { name, value };
            used += 1;
        }

        self.method = Some(method);
        self.path = Some(target);
        self.version = Some(minor);
        // Shrink the header view to the used prefix, like the real crate.
        let headers = std::mem::take(&mut self.headers);
        self.headers = &mut headers[..used];
        Ok(Status::Complete(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(buf: &[u8]) -> (usize, Vec<(String, Vec<u8>)>) {
        let mut slots = [EMPTY_HEADER; 16];
        let mut req = Request::new(&mut slots);
        match req.parse(buf).expect("parse") {
            Status::Complete(n) => (
                n,
                req.headers
                    .iter()
                    .map(|h| (h.name.to_string(), h.value.to_vec()))
                    .collect(),
            ),
            Status::Partial => panic!("unexpectedly partial"),
        }
    }

    #[test]
    fn parses_full_head_and_offsets_body() {
        let buf = b"POST /v1/infer?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 3\r\n\r\nxyz";
        let (n, headers) = parse_ok(buf);
        assert_eq!(&buf[n..], b"xyz");
        assert_eq!(headers.len(), 2);
        assert_eq!(headers[1], ("Content-Length".to_string(), b"3".to_vec()));
    }

    #[test]
    fn value_whitespace_is_trimmed() {
        let buf = b"GET / HTTP/1.0\r\nX-Pad:  \tv a l \t \r\n\r\n";
        let (_, headers) = parse_ok(buf);
        assert_eq!(headers[0].1, b"v a l".to_vec());
    }

    #[test]
    fn incomplete_heads_are_partial() {
        for cut in 1.."GET / HTTP/1.1\r\nHost: a\r\n\r\n".len() {
            let buf = &b"GET / HTTP/1.1\r\nHost: a\r\n\r\n"[..cut];
            let mut slots = [EMPTY_HEADER; 4];
            let mut req = Request::new(&mut slots);
            assert_eq!(req.parse(buf).expect("prefix parses"), Status::Partial, "cut {cut}");
        }
    }

    #[test]
    fn malformed_heads_error() {
        let cases: &[&[u8]] = &[
            b"GET\r\n\r\n",                          // no target
            b"GET /\r\n\r\n",                        // no version
            b"GET / HTTP/2.0\r\n\r\n",               // bad version
            b"G T / HTTP/1.1\r\n\r\n",               // space in method -> 3-way split fails version
            b"GET / HTTP/1.1\r\nNo-Colon\r\n\r\n",   // header without ':'
            b"GET / HTTP/1.1\r\n: v\r\n\r\n",        // empty header name
            b"GET / HTTP/1.1\nHost: a\n\n",          // bare LF line endings
            b"GET / HTTP/1.1\r\nBad\x01Name: v\r\n\r\n",
            b"\x00\xff\x00\xff",                     // binary garbage
        ];
        for case in cases {
            let mut slots = [EMPTY_HEADER; 4];
            let mut req = Request::new(&mut slots);
            assert!(req.parse(case).is_err(), "accepted {case:?}");
        }
    }

    #[test]
    fn header_overflow_is_typed() {
        let mut slots = [EMPTY_HEADER; 1];
        let mut req = Request::new(&mut slots);
        let buf = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\n\r\n";
        assert_eq!(req.parse(buf), Err(Error::TooManyHeaders));
    }
}
