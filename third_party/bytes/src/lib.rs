#![warn(missing_docs)]
//! Offline stand-in for the subset of the `bytes` crate used by the
//! workspace: an immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`BufMut`] write trait.
//!
//! Backed by `Arc<[u8]>` / `Vec<u8>`; cheap clones of frozen buffers, no
//! unsafe. See `third_party/README.md`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", &self.data)
    }
}

/// Sink for sequentially written bytes.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }
}
