#![warn(missing_docs)]
//! Offline stand-in for the subset of `criterion` used by the workspace's
//! benches: `Criterion`, `benchmark_group` / `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (deliberately simple): a fixed warm-up, then timed batches
//! until ~`measure_ms` of wall clock is spent; reports the per-iteration
//! mean and the minimum batch average. No plots, no statistics files.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for benches that import it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    warmup_iters: u32,
    measure_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup_iters: 3,
            measure_ms: 300,
        }
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    warmup_iters: u32,
    measure_ms: u64,
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, recording per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup_iters {
            std_black_box(f());
        }
        let budget = Duration::from_millis(self.measure_ms);
        let started = Instant::now();
        let mut total_ns = 0f64;
        let mut iters = 0u64;
        let mut min_ns = f64::INFINITY;
        while started.elapsed() < budget {
            let t0 = Instant::now();
            std_black_box(f());
            let ns = t0.elapsed().as_nanos() as f64;
            total_ns += ns;
            iters += 1;
            min_ns = min_ns.min(ns);
        }
        self.mean_ns = if iters > 0 { total_ns / iters as f64 } else { 0.0 };
        self.min_ns = if min_ns.is_finite() { min_ns } else { 0.0 };
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    println!(
        "bench {name:<40} {:>12.0} ns/iter (min {:>12.0} ns, {} iters)",
        b.mean_ns, b.min_ns, b.iters
    );
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup_iters: self.warmup_iters,
            measure_ms: self.measure_ms,
            mean_ns: 0.0,
            min_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Bundles bench functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warmup_iters: 1,
            measure_ms: 5,
        };
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
