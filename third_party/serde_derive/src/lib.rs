//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives these traits on its data types for forward
//! compatibility, but never invokes an actual serializer backend
//! (`serde_json` & co. are not in the offline dependency set), so the
//! derives can safely expand to nothing. The `serde` helper attribute is
//! declared so `#[serde(...)]` annotations, if ever added, still parse.

use proc_macro::TokenStream;

/// Derives nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
