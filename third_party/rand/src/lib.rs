#![warn(missing_docs)]
//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace: a seedable generator ([`rngs::StdRng`]), the
//! [`SeedableRng`] constructor trait, and the [`RngExt`] sampling
//! extension trait.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic given the seed, which is all the
//! reproduction needs. See `third_party/README.md` for why this exists.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Random {
    /// Draws one uniform sample.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64 - lo as i64) as u64 + 1;
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i64, i32, i16, i8, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Random>::random_from(rng);
                let x = self.start + u * (self.end - self.start);
                // Guard against rounding up to the exclusive endpoint.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample of `T` over its natural domain (`[0, 1)` for
    /// floats, full width for integers).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, portable, and fast.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw 256-bit generator state, for checkpoint/resume.
        ///
        /// Together with [`StdRng::from_state`] this round-trips the
        /// generator exactly: a restored generator produces the same
        /// stream as the original from the capture point onward.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (it only
        /// ever emits zero); it cannot be produced by seeding, so it is
        /// replaced by the state of `seed_from_u64(0)`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.random_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.random_range(0..7usize);
            assert!(n < 7);
            let m: usize = rng.random_range(0..=4usize);
            assert!(m <= 4);
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let _burn: Vec<u64> = (0..5).map(|_| a.random::<u64>()).collect();
        let mut b = StdRng::from_state(a.state());
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_eq!(va, vb);
        // The degenerate all-zero state is rejected.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.random::<u64>(), 0u64);
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 =
            (0..20_000).map(|_| rng.random::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
