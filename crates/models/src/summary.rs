//! Table-style summaries of network specifications: per-stage parameter
//! and operation counts (the "before pruning" columns of the paper's
//! Table II) and an architecture table (Table I).

use crate::spec::{ConvInstance, NetworkSpec, SpecError};
use std::collections::BTreeMap;

/// Parameter and operation totals for one stage (residual block).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Stage label (`"conv2_x"`, ...).
    pub stage: String,
    /// Conv weight parameters.
    pub params: usize,
    /// Multiply-accumulates.
    pub macs: usize,
    /// Operations (2 per MAC).
    pub ops: usize,
    /// Number of conv layers in the stage.
    pub layers: usize,
}

/// Per-stage totals in first-appearance order, plus a grand total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSummary {
    /// Network name.
    pub name: String,
    /// Per-stage rows.
    pub stages: Vec<StageCounts>,
    /// Whole-model conv parameters.
    pub total_params: usize,
    /// Whole-model conv ops.
    pub total_ops: usize,
}

impl ModelSummary {
    /// Renders a fixed-width text table (the Table II "before" columns).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.name));
        out.push_str(&format!(
            "{:<10} {:>8} {:>12} {:>12}\n",
            "Stage", "Layers", "Params (M)", "Ops (G)"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<10} {:>8} {:>12.3} {:>12.2}\n",
                s.stage,
                s.layers,
                s.params as f64 / 1e6,
                s.ops as f64 / 1e9
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>8} {:>12.3} {:>12.2}\n",
            "Total",
            self.stages.iter().map(|s| s.layers).sum::<usize>(),
            self.total_params as f64 / 1e6,
            self.total_ops as f64 / 1e9
        ));
        out
    }
}

/// Summarises a spec per stage.
pub fn summarize(spec: &NetworkSpec) -> Result<ModelSummary, SpecError> {
    let insts = spec.conv_instances()?;
    let order = spec.stages()?;
    let mut map: BTreeMap<&str, StageCounts> = BTreeMap::new();
    for inst in &insts {
        let entry = map.entry(&inst.spec.stage).or_insert_with(|| StageCounts {
            stage: inst.spec.stage.clone(),
            ..Default::default()
        });
        entry.params += inst.spec.params();
        entry.macs += inst.macs();
        entry.ops += inst.ops();
        entry.layers += 1;
    }
    let stages: Vec<StageCounts> = order
        .iter()
        .map(|s| map.remove(s.as_str()).expect("stage present"))
        .collect();
    Ok(ModelSummary {
        name: spec.name.clone(),
        total_params: stages.iter().map(|s| s.params).sum(),
        total_ops: stages.iter().map(|s| s.ops).sum(),
        stages,
    })
}

/// One row of an architecture table (Table I).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchRow {
    /// Layer name.
    pub name: String,
    /// Stage.
    pub stage: String,
    /// Kernel descriptor, e.g. `"1x3x3, 144"`.
    pub kernel: String,
    /// Output size `DxHxW`.
    pub output: String,
}

/// Architecture rows for every convolution (Table I, expanded to
/// individual layers).
pub fn architecture_rows(spec: &NetworkSpec) -> Result<Vec<ArchRow>, SpecError> {
    Ok(spec
        .conv_instances()?
        .iter()
        .map(|i: &ConvInstance| ArchRow {
            name: i.spec.name.clone(),
            stage: i.spec.stage.clone(),
            kernel: format!(
                "{}x{}x{}, {}",
                i.spec.kernel.0, i.spec.kernel.1, i.spec.kernel.2, i.spec.out_channels
            ),
            output: format!("{}x{}x{}", i.output.1, i.output.2, i.output.3),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r2plus1d::r2plus1d_18;

    #[test]
    fn summary_matches_table2_shape() {
        let spec = r2plus1d_18(101);
        let s = summarize(&spec).unwrap();
        assert_eq!(s.stages.len(), 5);
        assert_eq!(s.stages[0].stage, "conv1");
        assert_eq!(s.stages[1].stage, "conv2_x");
        // conv2_x dominates operations (Table II: 44.39 of 83.05 G).
        let conv2_ops = s.stages[1].ops;
        assert!(s.stages.iter().all(|st| st.ops <= conv2_ops));
        // conv5_x dominates parameters (24.92 of 33.1 M).
        let conv5_params = s.stages[4].params;
        assert!(s.stages.iter().all(|st| st.params <= conv5_params));
    }

    #[test]
    fn totals_are_stage_sums() {
        let spec = r2plus1d_18(101);
        let s = summarize(&spec).unwrap();
        assert_eq!(
            s.total_params,
            s.stages.iter().map(|st| st.params).sum::<usize>()
        );
        assert_eq!(s.total_ops, s.stages.iter().map(|st| st.ops).sum::<usize>());
    }

    #[test]
    fn table_renders() {
        let spec = r2plus1d_18(101);
        let s = summarize(&spec).unwrap();
        let t = s.to_table();
        assert!(t.contains("conv2_x"));
        assert!(t.contains("Total"));
    }

    #[test]
    fn arch_rows_table1() {
        let spec = r2plus1d_18(101);
        let rows = architecture_rows(&spec).unwrap();
        let stem = rows.iter().find(|r| r.name == "conv1.spatial").unwrap();
        assert_eq!(stem.kernel, "1x7x7, 45");
        assert_eq!(stem.output, "16x56x56");
        let c3 = rows.iter().find(|r| r.name == "conv3_1a.spatial").unwrap();
        assert_eq!(c3.kernel, "1x3x3, 230");
    }
}
