//! Builds trainable `p3d-nn` networks from [`NetworkSpec`]s.

use crate::spec::{NetworkSpec, Node};
use p3d_nn::{
    BatchNorm3d, Conv3d, Flatten, GlobalAvgPool, Linear, MaxPool3d, Relu, ResidualBlock,
    Sequential,
};
use p3d_tensor::TensorRng;

fn build_nodes(nodes: &[Node], rng: &mut TensorRng, flat: &mut bool, bn_counter: &mut usize) -> Sequential {
    let mut seq = Sequential::new();
    for node in nodes {
        match node {
            Node::Conv(c) => {
                seq.add(Box::new(Conv3d::new(
                    &c.name,
                    c.out_channels,
                    c.in_channels,
                    c.kernel,
                    c.stride,
                    c.pad,
                    c.bias,
                    rng,
                )));
            }
            Node::BatchNorm { channels } => {
                // Names are indexed in document order (depth-first, main
                // before shortcut) so external consumers — notably the
                // FPGA simulator's parameter extraction — can re-derive
                // them by walking the spec the same way.
                seq.add(Box::new(BatchNorm3d::new(&format!("bn{bn_counter}"), *channels)));
                *bn_counter += 1;
            }
            Node::Relu => seq.add(Box::new(Relu::new())),
            Node::MaxPool { kernel, stride, pad } => {
                assert_eq!(
                    *pad,
                    (0, 0, 0),
                    "the trainable builder does not support padded pooling; \
                     padded pools exist only in analytic specs"
                );
                seq.add(Box::new(MaxPool3d::new(*kernel, *stride)));
            }
            Node::GlobalAvgPool => {
                seq.add(Box::new(GlobalAvgPool::new()));
                *flat = true;
            }
            Node::Linear {
                name,
                out_features,
                in_features,
            } => {
                if !*flat {
                    seq.add(Box::new(Flatten::new()));
                    *flat = true;
                }
                seq.add(Box::new(Linear::new(name, *out_features, *in_features, true, rng)));
            }
            Node::Residual { main, shortcut } => {
                let main_seq = build_nodes(main, rng, flat, bn_counter);
                let block = match shortcut {
                    Some(s) => {
                        ResidualBlock::projected(main_seq, build_nodes(s, rng, flat, bn_counter))
                    }
                    None => ResidualBlock::identity(main_seq),
                };
                seq.add(Box::new(block));
            }
        }
    }
    seq
}

/// Instantiates a trainable network from a specification, with
/// deterministic Kaiming initialisation from `seed`.
///
/// Batch-norm parameter names are derived from channel counts and layer
/// position; convolution and linear parameters keep their spec names, so
/// the ADMM pruner can target spec layers by name.
pub fn build_network(spec: &NetworkSpec, seed: u64) -> Sequential {
    let mut rng = TensorRng::seed(seed);
    let mut flat = false;
    let mut bn_counter = 0usize;
    build_nodes(&spec.nodes, &mut rng, &mut flat, &mut bn_counter)
}

/// Enumerates the batch-norm node names (`bn0`, `bn1`, ...) in the same
/// document order [`build_network`] assigns them, paired with each node's
/// channel count. Used to re-associate exported running statistics with
/// spec nodes.
pub fn bn_names(spec: &NetworkSpec) -> Vec<(String, usize)> {
    fn walk(nodes: &[Node], counter: &mut usize, out: &mut Vec<(String, usize)>) {
        for node in nodes {
            match node {
                Node::BatchNorm { channels } => {
                    out.push((format!("bn{counter}"), *channels));
                    *counter += 1;
                }
                Node::Residual { main, shortcut } => {
                    walk(main, counter, out);
                    if let Some(s) = shortcut {
                        walk(s, counter, out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    let mut counter = 0;
    walk(&spec.nodes, &mut counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lite::r2plus1d_lite;
    use p3d_nn::{Layer, LayerExt, Mode};
    use p3d_tensor::TensorRng;

    #[test]
    fn lite_network_forward_shape() {
        let spec = r2plus1d_lite(4);
        let mut net = build_network(&spec, 7);
        let mut rng = TensorRng::seed(1);
        let (c, d, h, w) = spec.input;
        let x = rng.uniform_tensor([2, c, d, h, w], 0.0, 1.0);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 4]);
    }

    #[test]
    fn built_param_count_matches_spec() {
        let spec = r2plus1d_lite(4);
        let mut net = build_network(&spec, 7);
        let conv_params: usize = spec.conv_params().unwrap();
        let mut built_conv = 0usize;
        net.visit_params(&mut |p| {
            if p.kind == p3d_nn::ParamKind::ConvWeight {
                built_conv += p.len();
            }
        });
        assert_eq!(built_conv, conv_params);
    }

    #[test]
    fn deterministic_build() {
        let spec = r2plus1d_lite(4);
        let mut a = build_network(&spec, 3);
        let mut b = build_network(&spec, 3);
        let pa = a.snapshot_params();
        let pb = b.snapshot_params();
        assert_eq!(pa.len(), pb.len());
        for ((na, ta), (nb, tb)) in pa.iter().zip(&pb) {
            assert_eq!(na, nb);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    #[should_panic(expected = "padded pooling")]
    fn padded_pool_rejected() {
        let spec = crate::c3d::c3d(4);
        let _ = build_network(&spec, 0);
    }
}
