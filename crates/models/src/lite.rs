//! Scaled-down, trainable variants of R(2+1)D and C3D.
//!
//! The full networks (33 M / 78 M parameters, 40+ GMACs per clip) are far
//! beyond what a from-scratch CPU training stack can train in reasonable
//! time; they are used analytically (Tables I–IV). These "lite" variants
//! keep every architectural ingredient — (2+1)D factorisation with the
//! midplane formula, residual units, projected shortcuts with combined
//! spatio-temporal downsampling, batch norm, global average pooling — at
//! a width and resolution that trains in minutes on the synthetic motion
//! dataset. The accuracy experiments (paper §V: pruned vs unpruned
//! accuracy) run on these.

use crate::r2plus1d::midplanes;
use crate::spec::{Conv3dSpec, NetworkSpec, Node};

fn conv(
    name: String,
    stage: &str,
    m: usize,
    n: usize,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> Node {
    Node::Conv(Conv3dSpec {
        name,
        stage: stage.to_string(),
        out_channels: m,
        in_channels: n,
        kernel,
        stride,
        pad,
        bias: false,
    })
}

fn conv2plus1d(name: &str, stage: &str, m: usize, n: usize, stride: (usize, usize, usize), nodes: &mut Vec<Node>) {
    let mid = midplanes(n, m, 3, 3).max(1);
    nodes.push(conv(
        format!("{name}.spatial"),
        stage,
        mid,
        n,
        (1, 3, 3),
        (1, stride.1, stride.2),
        (0, 1, 1),
    ));
    nodes.push(Node::BatchNorm { channels: mid });
    nodes.push(Node::Relu);
    nodes.push(conv(
        format!("{name}.temporal"),
        stage,
        m,
        mid,
        (3, 1, 1),
        (stride.0, 1, 1),
        (1, 0, 0),
    ));
}

fn residual_unit(stage_idx: usize, in_ch: usize, out_ch: usize, downsample: bool) -> Node {
    let stage = format!("conv{stage_idx}_x");
    let stride = if downsample { (2, 2, 2) } else { (1, 1, 1) };
    let mut main = Vec::new();
    conv2plus1d(
        &format!("conv{stage_idx}_1a"),
        &stage,
        out_ch,
        in_ch,
        stride,
        &mut main,
    );
    main.push(Node::BatchNorm { channels: out_ch });
    main.push(Node::Relu);
    conv2plus1d(
        &format!("conv{stage_idx}_1b"),
        &stage,
        out_ch,
        out_ch,
        (1, 1, 1),
        &mut main,
    );
    main.push(Node::BatchNorm { channels: out_ch });
    let shortcut = if downsample || in_ch != out_ch {
        Some(vec![
            conv(
                format!("conv{stage_idx}_sc"),
                &stage,
                out_ch,
                in_ch,
                (1, 1, 1),
                stride,
                (0, 0, 0),
            ),
            Node::BatchNorm { channels: out_ch },
        ])
    } else {
        None
    };
    Node::Residual { main, shortcut }
}

/// A small R(2+1)D for `(1, 8, 24, 24)` clips: a (2+1)D stem, one
/// identity residual unit at width 12 (`conv2_x`) and one downsampling
/// residual unit to width 24 (`conv3_x`), then global pooling and an FC
/// classifier. ~25 k conv parameters.
pub fn r2plus1d_lite(num_classes: usize) -> NetworkSpec {
    let mut nodes = Vec::new();
    // Stem: spatial 1x5x5 stride (1,2,2) then temporal 3x1x1 (mirrors
    // conv1 of the full model, narrower).
    nodes.push(conv(
        "conv1.spatial".into(),
        "conv1",
        8,
        1,
        (1, 5, 5),
        (1, 2, 2),
        (0, 2, 2),
    ));
    nodes.push(Node::BatchNorm { channels: 8 });
    nodes.push(Node::Relu);
    nodes.push(conv(
        "conv1.temporal".into(),
        "conv1",
        12,
        8,
        (3, 1, 1),
        (1, 1, 1),
        (1, 0, 0),
    ));
    nodes.push(Node::BatchNorm { channels: 12 });
    nodes.push(Node::Relu);

    nodes.push(residual_unit(2, 12, 12, false));
    nodes.push(residual_unit(3, 12, 24, true));

    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Linear {
        name: "fc".into(),
        out_features: num_classes,
        in_features: 24,
    });
    NetworkSpec {
        name: "R(2+1)D-lite".into(),
        input: (1, 8, 24, 24),
        nodes,
    }
}

/// A wider trainable R(2+1)D (widths 16/32, ~55 k conv parameters) for
/// the accuracy experiments: at the paper's 90%/80% stage pruning
/// ratios, the pruned capacity still comfortably covers the synthetic
/// task — mirroring how heavily overparameterised R(2+1)D-18 is for
/// UCF101, which is what makes the paper's accuracy deltas negligible.
pub fn r2plus1d_lite_wide(num_classes: usize) -> NetworkSpec {
    let mut nodes = Vec::new();
    nodes.push(conv(
        "conv1.spatial".into(),
        "conv1",
        10,
        1,
        (1, 5, 5),
        (1, 2, 2),
        (0, 2, 2),
    ));
    nodes.push(Node::BatchNorm { channels: 10 });
    nodes.push(Node::Relu);
    nodes.push(conv(
        "conv1.temporal".into(),
        "conv1",
        16,
        10,
        (3, 1, 1),
        (1, 1, 1),
        (1, 0, 0),
    ));
    nodes.push(Node::BatchNorm { channels: 16 });
    nodes.push(Node::Relu);
    nodes.push(residual_unit(2, 16, 16, false));
    nodes.push(residual_unit(3, 16, 32, true));
    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Linear {
        name: "fc".into(),
        out_features: num_classes,
        in_features: 32,
    });
    NetworkSpec {
        name: "R(2+1)D-lite-wide".into(),
        input: (1, 8, 24, 24),
        nodes,
    }
}

/// An even smaller R(2+1)D for fast unit tests: stem + one residual unit
/// on `(1, 6, 16, 16)` clips.
pub fn r2plus1d_micro(num_classes: usize) -> NetworkSpec {
    let mut nodes = Vec::new();
    nodes.push(conv(
        "conv1.spatial".into(),
        "conv1",
        6,
        1,
        (1, 3, 3),
        (1, 2, 2),
        (0, 1, 1),
    ));
    nodes.push(Node::BatchNorm { channels: 6 });
    nodes.push(Node::Relu);
    nodes.push(conv(
        "conv1.temporal".into(),
        "conv1",
        8,
        6,
        (3, 1, 1),
        (1, 1, 1),
        (1, 0, 0),
    ));
    nodes.push(Node::BatchNorm { channels: 8 });
    nodes.push(Node::Relu);
    nodes.push(residual_unit(2, 8, 8, false));
    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Linear {
        name: "fc".into(),
        out_features: num_classes,
        in_features: 8,
    });
    NetworkSpec {
        name: "R(2+1)D-micro".into(),
        input: (1, 6, 16, 16),
        nodes,
    }
}

/// A small C3D analogue for `(1, 8, 24, 24)` clips: three `3x3x3`
/// convolutions with interleaved pooling, global pooling, FC.
pub fn c3d_lite(num_classes: usize) -> NetworkSpec {
    let conv3 = |name: &str, stage: &str, m: usize, n: usize| {
        conv(name.to_string(), stage, m, n, (3, 3, 3), (1, 1, 1), (1, 1, 1))
    };
    let nodes = vec![
        conv3("conv1a", "conv1", 8, 1),
        Node::BatchNorm { channels: 8 },
        Node::Relu,
        Node::MaxPool {
            kernel: (1, 2, 2),
            stride: (1, 2, 2),
            pad: (0, 0, 0),
        },
        conv3("conv2a", "conv2", 16, 8),
        Node::BatchNorm { channels: 16 },
        Node::Relu,
        Node::MaxPool {
            kernel: (2, 2, 2),
            stride: (2, 2, 2),
            pad: (0, 0, 0),
        },
        conv3("conv3a", "conv3", 24, 16),
        Node::BatchNorm { channels: 24 },
        Node::Relu,
        Node::GlobalAvgPool,
        Node::Linear {
            name: "fc".into(),
            out_features: num_classes,
            in_features: 24,
        },
    ];
    NetworkSpec {
        name: "C3D-lite".into(),
        input: (1, 8, 24, 24),
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lite_shape_checks() {
        for (spec, classes) in [
            (r2plus1d_lite(10), 10),
            (r2plus1d_micro(4), 4),
            (c3d_lite(10), 10),
        ] {
            assert_eq!(
                spec.output_shape().unwrap(),
                Some((classes, 1, 1, 1)),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn lite_uses_midplane_formula() {
        let spec = r2plus1d_lite(10);
        let insts = spec.conv_instances().unwrap();
        let sp = insts
            .iter()
            .find(|i| i.spec.name == "conv2_1a.spatial")
            .unwrap();
        assert_eq!(sp.spec.out_channels, midplanes(12, 12, 3, 3));
    }

    #[test]
    fn lite_has_prunable_stages() {
        let spec = r2plus1d_lite(10);
        let stages = spec.stages().unwrap();
        assert!(stages.contains(&"conv2_x".to_string()));
        assert!(stages.contains(&"conv3_x".to_string()));
    }

    #[test]
    fn lite_is_actually_small() {
        let spec = r2plus1d_lite(10);
        let params = spec.conv_params().unwrap();
        assert!(params < 60_000, "lite model too big: {params}");
        let macs = spec.conv_macs().unwrap();
        assert!(macs < 30_000_000, "lite model too slow: {macs} MACs");
    }

    #[test]
    fn lite_wide_shape_and_size() {
        let spec = r2plus1d_lite_wide(10);
        assert_eq!(spec.output_shape().unwrap(), Some((10, 1, 1, 1)));
        let params = spec.conv_params().unwrap();
        assert!((30_000..90_000).contains(&params), "{params}");
        // Wider than lite, as intended.
        assert!(params > r2plus1d_lite(10).conv_params().unwrap());
    }

    #[test]
    fn micro_is_tiny() {
        let spec = r2plus1d_micro(4);
        assert!(spec.conv_params().unwrap() < 5_000);
    }

    #[test]
    fn downsampling_halves_everything() {
        let spec = r2plus1d_lite(10);
        let insts = spec.conv_instances().unwrap();
        let last = insts
            .iter()
            .find(|i| i.spec.name == "conv3_1b.temporal")
            .unwrap();
        // (1,8,24,24) -> stem spatial /2 -> 12x12; conv3 halves all dims.
        assert_eq!(last.output, (24, 4, 6, 6));
    }
}
