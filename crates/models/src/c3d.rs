//! The standard C3D network (Tran et al., ICCV 2015) — the baseline the
//! paper compares against (its Table IV reimplements unpruned C3D on the
//! same board as [13]).

use crate::spec::{Conv3dSpec, NetworkSpec, Node};

fn conv(name: &str, m: usize, n: usize) -> Node {
    Node::Conv(Conv3dSpec {
        name: name.to_string(),
        stage: name.split(|c: char| c.is_ascii_digit()).next().unwrap_or("conv").to_string()
            + &name
                .chars()
                .filter(|c| c.is_ascii_digit())
                .take(1)
                .collect::<String>(),
        out_channels: m,
        in_channels: n,
        kernel: (3, 3, 3),
        stride: (1, 1, 1),
        pad: (1, 1, 1),
        bias: true,
    })
}

fn pool(kernel: (usize, usize, usize), pad: (usize, usize, usize)) -> Node {
    Node::MaxPool {
        kernel,
        stride: kernel,
        pad,
    }
}

/// Builds the full C3D specification for `(3, 16, 112, 112)` clips.
///
/// Architecture: 8 convolutions (all `3x3x3`, stride 1, pad 1), 5 max
/// pools, and 3 fully-connected layers (4096, 4096, classes). `pool1` is
/// `(1,2,2)` to preserve early temporal resolution; `pool5` pads
/// spatially so the `7x7` maps pool to `4x4`, giving the classic
/// `512*1*4*4 = 8192` flattened features.
pub fn c3d(num_classes: usize) -> NetworkSpec {
    c3d_for_input(num_classes, (3, 16, 112, 112))
}

/// C3D for an arbitrary input shape (the FC sizes adapt).
pub fn c3d_for_input(num_classes: usize, input: (usize, usize, usize, usize)) -> NetworkSpec {
    let nodes = vec![
        conv("conv1a", 64, input.0),
        Node::Relu,
        pool((1, 2, 2), (0, 0, 0)),
        conv("conv2a", 128, 64),
        Node::Relu,
        pool((2, 2, 2), (0, 0, 0)),
        conv("conv3a", 256, 128),
        Node::Relu,
        conv("conv3b", 256, 256),
        Node::Relu,
        pool((2, 2, 2), (0, 0, 0)),
        conv("conv4a", 512, 256),
        Node::Relu,
        conv("conv4b", 512, 512),
        Node::Relu,
        pool((2, 2, 2), (0, 0, 0)),
        conv("conv5a", 512, 512),
        Node::Relu,
        conv("conv5b", 512, 512),
        Node::Relu,
        pool((2, 2, 2), (0, 1, 1)),
    ];
    let mut spec = NetworkSpec {
        name: "C3D".into(),
        input,
        nodes,
    };
    // Resolve the flattened width after pool5, then append the FCs.
    let feat = spec
        .output_shape()
        .expect("C3D trunk must shape-check")
        .expect("C3D trunk ends with a feature map");
    let flat = feat.0 * feat.1 * feat.2 * feat.3;
    spec.nodes.push(Node::Linear {
        name: "fc6".into(),
        out_features: 4096,
        in_features: flat,
    });
    spec.nodes.push(Node::Relu);
    spec.nodes.push(Node::Linear {
        name: "fc7".into(),
        out_features: 4096,
        in_features: 4096,
    });
    spec.nodes.push(Node::Relu);
    spec.nodes.push(Node::Linear {
        name: "fc8".into(),
        out_features: num_classes,
        in_features: 4096,
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_convs_all_3x3x3() {
        let spec = c3d(101);
        let insts = spec.conv_instances().unwrap();
        assert_eq!(insts.len(), 8);
        assert!(insts.iter().all(|i| i.spec.kernel == (3, 3, 3)));
    }

    #[test]
    fn feature_map_progression() {
        let spec = c3d(101);
        let insts = spec.conv_instances().unwrap();
        let by_name = |n: &str| insts.iter().find(|i| i.spec.name == n).unwrap();
        assert_eq!(by_name("conv1a").output, (64, 16, 112, 112));
        assert_eq!(by_name("conv2a").input, (64, 16, 56, 56));
        assert_eq!(by_name("conv3a").input, (128, 8, 28, 28));
        assert_eq!(by_name("conv4a").input, (256, 4, 14, 14));
        assert_eq!(by_name("conv5a").input, (512, 2, 7, 7));
    }

    #[test]
    fn classifier_head_is_8192_wide() {
        let spec = c3d(101);
        let fc6 = spec.nodes.iter().find_map(|n| match n {
            Node::Linear { name, in_features, .. } if name == "fc6" => Some(*in_features),
            _ => None,
        });
        assert_eq!(fc6, Some(8192));
        assert_eq!(spec.output_shape().unwrap(), Some((101, 1, 1, 1)));
    }

    #[test]
    fn macs_match_literature() {
        // C3D at 16x112x112 is ~38.5 GMACs (what [13] and Table IV call
        // 38.5 "GOP" under the 1-op-per-MAC convention).
        let spec = c3d(101);
        let gmacs = spec.conv_macs().unwrap() as f64 / 1e9;
        assert!((gmacs - 38.5).abs() < 0.3, "gmacs = {gmacs}");
    }

    #[test]
    fn conv_params_about_27m() {
        // C3D conv parameters are ~27.7 M (FCs add ~50 M more).
        let spec = c3d(101);
        let m = spec.conv_params().unwrap() as f64 / 1e6;
        assert!((m - 27.7).abs() < 0.5, "conv params = {m} M");
    }
}
