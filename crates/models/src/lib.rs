#![warn(missing_docs)]
// Spec builders accumulate nodes imperatively; `vec![...]` literals would
// obscure the conditional stage construction.
#![allow(clippy::vec_init_then_push)]
//! Network specifications and builders for the 3D CNNs of the paper:
//! R(2+1)D-18 (Table I) and the C3D baseline, plus scaled-down trainable
//! variants.
//!
//! The crate is organised around [`NetworkSpec`], a declarative network
//! description from which three consumers derive everything they need:
//!
//! * [`build::build_network`] instantiates a trainable `p3d-nn` network,
//! * [`summary`] produces the per-stage parameter/operation tables
//!   (Tables I and II of the paper),
//! * the `p3d-fpga` crate consumes [`spec::ConvInstance`] lists to model
//!   per-layer accelerator latency and resources.
//!
//! # Example
//!
//! ```
//! use p3d_models::r2plus1d::r2plus1d_18;
//!
//! let spec = r2plus1d_18(101);
//! // Table II, "before pruning": 83.05 G ops on a 16x112x112 clip.
//! let gops = spec.conv_ops().unwrap() as f64 / 1e9;
//! assert!((gops - 83.05).abs() < 0.1);
//! ```

pub mod build;
pub mod c3d;
pub mod lite;
pub mod r2plus1d;
pub mod spec;
pub mod summary;
pub mod variants;

pub use build::build_network;
pub use c3d::c3d;
pub use lite::{c3d_lite, r2plus1d_lite, r2plus1d_lite_wide, r2plus1d_micro};
pub use r2plus1d::r2plus1d_18;
pub use spec::{Conv3dSpec, ConvInstance, FeatShape, NetworkSpec, Node, SpecError};
pub use summary::{architecture_rows, summarize, ModelSummary, StageCounts};
pub use variants::{mc3_18, r3d_18};
