//! The R(2+1)D-18 network of Tran et al. (CVPR 2018), as described in
//! Table I of the paper.
//!
//! Every 3D convolution is factorised into a `1xKxK` **spatial**
//! convolution followed by a `Kx1x1` **temporal** convolution with an
//! intermediate channel count `Mi` chosen so the factorised pair has
//! (approximately) the same parameter budget as the full 3D kernel:
//!
//! ```text
//! Mi = floor( t*d*d*N*M / (d*d*N + t*M) )      (t = d = 3)
//! ```
//!
//! This reproduces the parenthesised mid-channel values of Table I
//! (230, 460, 921) for the stage-entry units whose input width differs
//! from their output width, and 144/288/576/1152 elsewhere.

use crate::spec::{Conv3dSpec, NetworkSpec, Node};

/// Mid-channel count of an R(2+1)D factorisation of a `t x d x d` kernel
/// from `n` to `m` channels.
pub fn midplanes(n: usize, m: usize, t: usize, d: usize) -> usize {
    (t * d * d * n * m) / (d * d * n + t * m)
}

fn conv(
    name: String,
    stage: &str,
    m: usize,
    n: usize,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> Node {
    Node::Conv(Conv3dSpec {
        name,
        stage: stage.to_string(),
        out_channels: m,
        in_channels: n,
        kernel,
        stride,
        pad,
        bias: false,
    })
}

/// One (2+1)D convolution: spatial `1xdxd` (+BN+ReLU) then temporal
/// `tx1x1`. `stride` applies its spatial part to the spatial conv and its
/// temporal part to the temporal conv, as in the reference
/// implementation.
#[allow(clippy::too_many_arguments)]
fn conv2plus1d(
    name: &str,
    stage: &str,
    m: usize,
    n: usize,
    stride: (usize, usize, usize),
    t: usize,
    d: usize,
    nodes: &mut Vec<Node>,
) {
    let mid = midplanes(n, m, t, d);
    nodes.push(conv(
        format!("{name}.spatial"),
        stage,
        mid,
        n,
        (1, d, d),
        (1, stride.1, stride.2),
        (0, d / 2, d / 2),
    ));
    nodes.push(Node::BatchNorm { channels: mid });
    nodes.push(Node::Relu);
    nodes.push(conv(
        format!("{name}.temporal"),
        stage,
        m,
        mid,
        (t, 1, 1),
        (stride.0, 1, 1),
        (t / 2, 0, 0),
    ));
}

fn residual_unit(
    stage_idx: usize,
    unit_idx: usize,
    in_ch: usize,
    out_ch: usize,
    downsample: bool,
) -> Node {
    let stage = format!("conv{stage_idx}_x");
    let name = |suffix: &str| format!("conv{stage_idx}_{unit_idx}{suffix}");
    let stride = if downsample { (2, 2, 2) } else { (1, 1, 1) };

    let mut main = Vec::new();
    conv2plus1d(&name("a"), &stage, out_ch, in_ch, stride, 3, 3, &mut main);
    main.push(Node::BatchNorm { channels: out_ch });
    main.push(Node::Relu);
    conv2plus1d(&name("b"), &stage, out_ch, out_ch, (1, 1, 1), 3, 3, &mut main);
    main.push(Node::BatchNorm { channels: out_ch });

    let shortcut = if downsample || in_ch != out_ch {
        // The paper's "shortcut with 2 layers": strided 1x1x1 conv + BN.
        Some(vec![
            conv(
                format!("conv{stage_idx}_sc"),
                &stage,
                out_ch,
                in_ch,
                (1, 1, 1),
                stride,
                (0, 0, 0),
            ),
            Node::BatchNorm { channels: out_ch },
        ])
    } else {
        None
    };
    Node::Residual { main, shortcut }
}

/// Builds the full R(2+1)D-18 specification for clips of
/// `(3, 16, 112, 112)` — the configuration of Table I.
pub fn r2plus1d_18(num_classes: usize) -> NetworkSpec {
    r2plus1d_18_for_input(num_classes, (3, 16, 112, 112))
}

/// R(2+1)D-18 for an arbitrary input shape (used by tests with smaller
/// clips; the architecture is unchanged).
pub fn r2plus1d_18_for_input(
    num_classes: usize,
    input: (usize, usize, usize, usize),
) -> NetworkSpec {
    let mut nodes = Vec::new();
    // conv1 / "stem": [1x7x7, 45] then [3x1x1, 64] (Table I).
    nodes.push(conv(
        "conv1.spatial".into(),
        "conv1",
        45,
        input.0,
        (1, 7, 7),
        (1, 2, 2),
        (0, 3, 3),
    ));
    nodes.push(Node::BatchNorm { channels: 45 });
    nodes.push(Node::Relu);
    nodes.push(conv(
        "conv1.temporal".into(),
        "conv1",
        64,
        45,
        (3, 1, 1),
        (1, 1, 1),
        (1, 0, 0),
    ));
    nodes.push(Node::BatchNorm { channels: 64 });
    nodes.push(Node::Relu);

    let widths = [64usize, 128, 256, 512];
    let mut in_ch = 64usize;
    for (i, &w) in widths.iter().enumerate() {
        let stage_idx = i + 2;
        let downsample = stage_idx > 2;
        nodes.push(residual_unit(stage_idx, 1, in_ch, w, downsample));
        nodes.push(residual_unit(stage_idx, 2, w, w, false));
        in_ch = w;
    }

    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Linear {
        name: "fc".into(),
        out_features: num_classes,
        in_features: 512,
    });

    NetworkSpec {
        name: "R(2+1)D-18".into(),
        input,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midplanes_match_table1() {
        assert_eq!(midplanes(64, 64, 3, 3), 144);
        assert_eq!(midplanes(64, 128, 3, 3), 230);
        assert_eq!(midplanes(128, 128, 3, 3), 288);
        assert_eq!(midplanes(128, 256, 3, 3), 460);
        assert_eq!(midplanes(256, 256, 3, 3), 576);
        assert_eq!(midplanes(256, 512, 3, 3), 921);
        assert_eq!(midplanes(512, 512, 3, 3), 1152);
    }

    #[test]
    fn table1_output_sizes() {
        // Table I: conv1 and conv2_x keep 16x56x56; conv3_x 8x28x28;
        // conv4_x 4x14x14; conv5_x 2x7x7.
        let spec = r2plus1d_18(101);
        let insts = spec.conv_instances().unwrap();
        let out_of = |name: &str| {
            insts
                .iter()
                .find(|i| i.spec.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .output
        };
        assert_eq!(out_of("conv1.temporal"), (64, 16, 56, 56));
        assert_eq!(out_of("conv2_2b.temporal"), (64, 16, 56, 56));
        assert_eq!(out_of("conv3_2b.temporal"), (128, 8, 28, 28));
        assert_eq!(out_of("conv4_2b.temporal"), (256, 4, 14, 14));
        assert_eq!(out_of("conv5_2b.temporal"), (512, 2, 7, 7));
        assert_eq!(spec.output_shape().unwrap(), Some((101, 1, 1, 1)));
    }

    #[test]
    fn table2_per_stage_parameters() {
        // Table II "Number of Parameters (M)" before pruning, by stage.
        let spec = r2plus1d_18(101);
        let insts = spec.conv_instances().unwrap();
        let params_of = |stage: &str| -> usize {
            insts
                .iter()
                .filter(|i| i.spec.stage == stage)
                .map(|i| i.spec.params())
                .sum()
        };
        assert_eq!(params_of("conv1"), 15_255); // 0.015 M
        assert_eq!(params_of("conv2_x"), 442_368); // 0.444 M
        assert_eq!(params_of("conv3_x"), 1_556_096); // 1.56 M
        assert_eq!(params_of("conv4_x"), 6_224_384); // 6.23 M
        assert_eq!(params_of("conv5_x"), 24_901_376); // 24.92 M
        let total: usize = spec.conv_params().unwrap();
        // Paper: 33.22 M (includes BN); conv-only is 33.14 M.
        assert!((total as f64 / 1e6 - 33.14).abs() < 0.01, "total {total}");
    }

    #[test]
    fn table2_per_stage_operations() {
        // Table II "Operations (giga)" before pruning, by stage
        // (ops = 2 x MACs at 16x112x112 input).
        let spec = r2plus1d_18(101);
        let insts = spec.conv_instances().unwrap();
        let gops_of = |stage: &str| -> f64 {
            insts
                .iter()
                .filter(|i| i.spec.stage == stage)
                .map(|i| i.ops() as f64)
                .sum::<f64>()
                / 1e9
        };
        assert!((gops_of("conv1") - 1.53).abs() < 0.01, "{}", gops_of("conv1"));
        assert!((gops_of("conv2_x") - 44.39).abs() < 0.05, "{}", gops_of("conv2_x"));
        assert!((gops_of("conv3_x") - 21.21).abs() < 0.05, "{}", gops_of("conv3_x"));
        assert!((gops_of("conv4_x") - 10.61).abs() < 0.05, "{}", gops_of("conv4_x"));
        assert!((gops_of("conv5_x") - 5.31).abs() < 0.05, "{}", gops_of("conv5_x"));
        let total = spec.conv_ops().unwrap() as f64 / 1e9;
        assert!((total - 83.05).abs() < 0.1, "total {total}");
    }

    #[test]
    fn layer_count_matches_paper() {
        // Paper: 40 CONV layers = 2 (stem) + 4 stages x 8 primary + 3
        // shortcuts x 2 (counting conv+BN); we count conv tensors:
        // 2 + 32 + 3 = 37 distinct conv weight tensors.
        let spec = r2plus1d_18(101);
        assert_eq!(spec.conv_instances().unwrap().len(), 37);
    }

    #[test]
    fn stages_ordered() {
        let spec = r2plus1d_18(101);
        assert_eq!(
            spec.stages().unwrap(),
            vec!["conv1", "conv2_x", "conv3_x", "conv4_x", "conv5_x"]
        );
    }
}
