//! Network specifications: a declarative description of a 3D CNN from
//! which everything else is derived — trainable networks (`build`),
//! parameter/operation counts (`summary`), and FPGA latency/resource
//! models (the `p3d-fpga` crate).

use serde::{Deserialize, Serialize};

/// Specification of one 3D convolution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv3dSpec {
    /// Unique layer name, e.g. `"conv3_1.spatial"`.
    pub name: String,
    /// Stage label used for per-block reporting, e.g. `"conv3_x"`.
    pub stage: String,
    /// Output channels `M`.
    pub out_channels: usize,
    /// Input channels `N`.
    pub in_channels: usize,
    /// Kernel `(Kd, Kr, Kc)`.
    pub kernel: (usize, usize, usize),
    /// Stride `(Sd, Sr, Sc)`.
    pub stride: (usize, usize, usize),
    /// Padding `(Pd, Pr, Pc)`.
    pub pad: (usize, usize, usize),
    /// Whether the layer has a bias (convs followed by BN do not).
    pub bias: bool,
}

impl Conv3dSpec {
    /// Weight parameter count `M * N * Kd * Kr * Kc` (+ bias).
    pub fn params(&self) -> usize {
        let w = self.out_channels
            * self.in_channels
            * self.kernel.0
            * self.kernel.1
            * self.kernel.2;
        w + if self.bias { self.out_channels } else { 0 }
    }

    /// Multiply-accumulate count for the given output volume.
    pub fn macs(&self, out_volume: usize) -> usize {
        self.out_channels
            * self.in_channels
            * self.kernel.0
            * self.kernel.1
            * self.kernel.2
            * out_volume
    }
}

/// One node of a network graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A 3D convolution.
    Conv(Conv3dSpec),
    /// Batch normalisation over `channels`.
    BatchNorm {
        /// Feature channels.
        channels: usize,
    },
    /// ReLU activation.
    Relu,
    /// Max pooling with `kernel`, `stride` and symmetric `pad`.
    MaxPool {
        /// Pooling window.
        kernel: (usize, usize, usize),
        /// Stride.
        stride: (usize, usize, usize),
        /// Padding per side (analytic only; the trainable builder
        /// rejects padded pooling).
        pad: (usize, usize, usize),
    },
    /// Global spatio-temporal average pooling to `[B, C]`.
    GlobalAvgPool,
    /// Fully-connected layer.
    Linear {
        /// Layer name.
        name: String,
        /// Output features.
        out_features: usize,
        /// Input features.
        in_features: usize,
    },
    /// Residual block: `relu(main(x) + shortcut(x))`; `shortcut = None`
    /// is the identity.
    Residual {
        /// Main path.
        main: Vec<Node>,
        /// Optional projection shortcut (the paper's "shortcut with 2
        /// layers": strided 1x1x1 conv + BN).
        shortcut: Option<Vec<Node>>,
    },
}

/// A complete network specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name, e.g. `"R(2+1)D-18"`.
    pub name: String,
    /// Input clip shape `(C, D, H, W)` (no batch dimension).
    pub input: (usize, usize, usize, usize),
    /// Top-level nodes.
    pub nodes: Vec<Node>,
}

/// A feature-map shape `(C, D, H, W)` flowing between nodes.
pub type FeatShape = (usize, usize, usize, usize);

/// A convolution *instance*: its spec plus the resolved input/output
/// feature-map shapes. This is the unit the FPGA models consume.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConvInstance {
    /// The convolution specification.
    pub spec: Conv3dSpec,
    /// Input feature map `(N, Di, Hi, Wi)`.
    pub input: FeatShape,
    /// Output feature map `(M, Do, Ho, Wo)`.
    pub output: FeatShape,
}

impl ConvInstance {
    /// Output volume `Do * Ho * Wo`.
    pub fn out_volume(&self) -> usize {
        self.output.1 * self.output.2 * self.output.3
    }

    /// MAC count of this instance.
    pub fn macs(&self) -> usize {
        self.spec.macs(self.out_volume())
    }

    /// Operation count, 2 ops per MAC (multiply + add), the convention of
    /// the paper's Table II.
    pub fn ops(&self) -> usize {
        2 * self.macs()
    }
}

fn conv_out3(
    input: (usize, usize, usize),
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
) -> (usize, usize, usize) {
    use p3d_tensor::shape::conv_out;
    (
        conv_out(input.0, kernel.0, stride.0, pad.0),
        conv_out(input.1, kernel.1, stride.1, pad.1),
        conv_out(input.2, kernel.2, stride.2, pad.2),
    )
}

/// Errors produced by shape inference over a [`NetworkSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A conv/linear input did not match the incoming feature map.
    ChannelMismatch {
        /// Offending layer name.
        layer: String,
        /// Channels the layer expects.
        expected: usize,
        /// Channels actually flowing in.
        actual: usize,
    },
    /// Residual main/shortcut output shapes disagree.
    ResidualShapeMismatch {
        /// Main-path output.
        main: FeatShape,
        /// Shortcut output.
        shortcut: FeatShape,
    },
    /// A linear layer appeared before pooling to a vector.
    LinearBeforeFlatten,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ChannelMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "layer {layer}: expected {expected} input channels, got {actual}"),
            SpecError::ResidualShapeMismatch { main, shortcut } => write!(
                f,
                "residual paths disagree: main {main:?} vs shortcut {shortcut:?}"
            ),
            SpecError::LinearBeforeFlatten => {
                write!(f, "linear layer before global pooling/flatten")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Walks `nodes` starting from `shape`, appending every conv instance to
/// `out`, and returns the final feature shape (or `None` once the map has
/// been pooled to a vector).
fn walk(
    nodes: &[Node],
    mut shape: Option<FeatShape>,
    out: &mut Vec<ConvInstance>,
) -> Result<Option<FeatShape>, SpecError> {
    for node in nodes {
        match node {
            Node::Conv(spec) => {
                let (c, d, h, w) = shape.ok_or(SpecError::LinearBeforeFlatten)?;
                if c != spec.in_channels {
                    return Err(SpecError::ChannelMismatch {
                        layer: spec.name.clone(),
                        expected: spec.in_channels,
                        actual: c,
                    });
                }
                let (od, oh, ow) = conv_out3((d, h, w), spec.kernel, spec.stride, spec.pad);
                out.push(ConvInstance {
                    spec: spec.clone(),
                    input: (c, d, h, w),
                    output: (spec.out_channels, od, oh, ow),
                });
                shape = Some((spec.out_channels, od, oh, ow));
            }
            Node::BatchNorm { channels } => {
                let (c, ..) = shape.ok_or(SpecError::LinearBeforeFlatten)?;
                if c != *channels {
                    return Err(SpecError::ChannelMismatch {
                        layer: format!("batchnorm({channels})"),
                        expected: *channels,
                        actual: c,
                    });
                }
            }
            Node::Relu => {}
            Node::MaxPool { kernel, stride, pad } => {
                let (c, d, h, w) = shape.ok_or(SpecError::LinearBeforeFlatten)?;
                let (od, oh, ow) = conv_out3((d, h, w), *kernel, *stride, *pad);
                shape = Some((c, od, oh, ow));
            }
            Node::GlobalAvgPool => {
                let (c, ..) = shape.ok_or(SpecError::LinearBeforeFlatten)?;
                // The pooled vector is recorded as a (c, 1, 1, 1) shape so
                // the following linear layer can check its input width.
                shape = Some((c, 1, 1, 1));
            }
            Node::Linear {
                name,
                out_features,
                in_features,
            } => {
                if let Some((c, d, h, w)) = shape {
                    let flat = c * d * h * w;
                    if flat != *in_features {
                        return Err(SpecError::ChannelMismatch {
                            layer: name.clone(),
                            expected: *in_features,
                            actual: flat,
                        });
                    }
                }
                shape = Some((*out_features, 1, 1, 1));
            }
            Node::Residual { main, shortcut } => {
                let entry = shape;
                let main_out = walk(main, entry, out)?;
                let short_out = match shortcut {
                    Some(s) => walk(s, entry, out)?,
                    None => entry,
                };
                match (main_out, short_out) {
                    (Some(a), Some(b)) if a == b => shape = Some(a),
                    (Some(a), Some(b)) => {
                        return Err(SpecError::ResidualShapeMismatch { main: a, shortcut: b })
                    }
                    _ => return Err(SpecError::LinearBeforeFlatten),
                }
            }
        }
    }
    Ok(shape)
}

impl NetworkSpec {
    /// Resolves every convolution in execution order with its
    /// input/output feature-map shapes.
    pub fn conv_instances(&self) -> Result<Vec<ConvInstance>, SpecError> {
        let mut out = Vec::new();
        let (c, d, h, w) = self.input;
        walk(&self.nodes, Some((c, d, h, w)), &mut out)?;
        Ok(out)
    }

    /// The final feature shape (e.g. `(num_classes, 1, 1, 1)` for a
    /// classifier).
    pub fn output_shape(&self) -> Result<Option<FeatShape>, SpecError> {
        let mut scratch = Vec::new();
        let (c, d, h, w) = self.input;
        walk(&self.nodes, Some((c, d, h, w)), &mut scratch)
    }

    /// Total trainable parameters in convolution layers.
    pub fn conv_params(&self) -> Result<usize, SpecError> {
        Ok(self.conv_instances()?.iter().map(|c| c.spec.params()).sum())
    }

    /// Total MACs over all convolution layers.
    pub fn conv_macs(&self) -> Result<usize, SpecError> {
        Ok(self.conv_instances()?.iter().map(|c| c.macs()).sum())
    }

    /// Total conv operations (2 per MAC).
    pub fn conv_ops(&self) -> Result<usize, SpecError> {
        Ok(2 * self.conv_macs()?)
    }

    /// All distinct stage labels in first-appearance order.
    pub fn stages(&self) -> Result<Vec<String>, SpecError> {
        let mut stages = Vec::new();
        for inst in self.conv_instances()? {
            if !stages.contains(&inst.spec.stage) {
                stages.push(inst.spec.stage.clone());
            }
        }
        Ok(stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, stage: &str, m: usize, n: usize, k: (usize, usize, usize)) -> Conv3dSpec {
        Conv3dSpec {
            name: name.into(),
            stage: stage.into(),
            out_channels: m,
            in_channels: n,
            kernel: k,
            stride: (1, 1, 1),
            pad: (k.0 / 2, k.1 / 2, k.2 / 2),
            bias: false,
        }
    }

    fn tiny_spec() -> NetworkSpec {
        NetworkSpec {
            name: "tiny".into(),
            input: (1, 4, 8, 8),
            nodes: vec![
                Node::Conv(conv("c1", "s1", 4, 1, (3, 3, 3))),
                Node::BatchNorm { channels: 4 },
                Node::Relu,
                Node::Residual {
                    main: vec![
                        Node::Conv(conv("c2", "s2", 4, 4, (1, 3, 3))),
                        Node::BatchNorm { channels: 4 },
                    ],
                    shortcut: None,
                },
                Node::GlobalAvgPool,
                Node::Linear {
                    name: "fc".into(),
                    out_features: 3,
                    in_features: 4,
                },
            ],
        }
    }

    #[test]
    fn conv_instances_resolved() {
        let spec = tiny_spec();
        let insts = spec.conv_instances().unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].output, (4, 4, 8, 8));
        assert_eq!(insts[1].input, (4, 4, 8, 8));
    }

    #[test]
    fn params_and_macs() {
        let spec = tiny_spec();
        // c1: 4*1*27 = 108; c2: 4*4*9 = 144.
        assert_eq!(spec.conv_params().unwrap(), 252);
        // volume 4*8*8 = 256 for both convs.
        assert_eq!(spec.conv_macs().unwrap(), 108 * 256 + 144 * 256);
        assert_eq!(spec.conv_ops().unwrap(), 2 * spec.conv_macs().unwrap());
    }

    #[test]
    fn output_is_classifier_vector() {
        let spec = tiny_spec();
        assert_eq!(spec.output_shape().unwrap(), Some((3, 1, 1, 1)));
    }

    #[test]
    fn stages_in_order() {
        assert_eq!(tiny_spec().stages().unwrap(), vec!["s1", "s2"]);
    }

    #[test]
    fn channel_mismatch_detected() {
        let mut spec = tiny_spec();
        if let Node::Conv(c) = &mut spec.nodes[0] {
            c.in_channels = 2;
        }
        match spec.conv_instances() {
            Err(SpecError::ChannelMismatch { expected, actual, .. }) => {
                assert_eq!((expected, actual), (2, 1));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn residual_mismatch_detected() {
        let spec = NetworkSpec {
            name: "bad".into(),
            input: (2, 2, 4, 4),
            nodes: vec![Node::Residual {
                main: vec![Node::Conv(conv("m", "s", 4, 2, (1, 1, 1)))],
                shortcut: None,
            }],
        };
        assert!(matches!(
            spec.conv_instances(),
            Err(SpecError::ResidualShapeMismatch { .. })
        ));
    }

    #[test]
    fn strided_pooling_shapes() {
        let spec = NetworkSpec {
            name: "pool".into(),
            input: (1, 16, 112, 112),
            nodes: vec![Node::MaxPool {
                kernel: (2, 2, 2),
                stride: (2, 2, 2),
                pad: (0, 1, 1),
            }],
        };
        // C3D pool5-style: (7+2-2)/2+1 = 4 when input is 7.
        let spec7 = NetworkSpec {
            input: (1, 2, 7, 7),
            ..spec.clone()
        };
        let mut v = Vec::new();
        let end = walk(&spec7.nodes, Some((1, 2, 7, 7)), &mut v).unwrap();
        assert_eq!(end, Some((1, 1, 4, 4)));
    }
}
