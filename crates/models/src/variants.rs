//! Sibling 18-layer 3D ResNet variants from Tran et al. (CVPR 2018):
//! R3D (full 3D kernels throughout) and MC3 ("mixed convolution": 3D in
//! the first residual stage, 2D after). The paper's related-work section
//! positions R(2+1)D against exactly these; having them as specs lets
//! the harness compare parameter/ops/latency across the family on the
//! same accelerator (`bench --bin architectures`).

use crate::spec::{Conv3dSpec, NetworkSpec, Node};

fn conv(
    name: String,
    stage: &str,
    m: usize,
    n: usize,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
) -> Node {
    Node::Conv(Conv3dSpec {
        name,
        stage: stage.to_string(),
        out_channels: m,
        in_channels: n,
        pad: (kernel.0 / 2, kernel.1 / 2, kernel.2 / 2),
        kernel,
        stride,
        bias: false,
    })
}

/// Kernel selector per stage: R3D uses `3x3x3` everywhere; MC3 uses
/// `3x3x3` in conv2_x and `1x3x3` afterwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavor {
    R3d,
    Mc3,
}

impl Flavor {
    fn kernel(&self, stage_idx: usize) -> (usize, usize, usize) {
        match self {
            Flavor::R3d => (3, 3, 3),
            Flavor::Mc3 => {
                if stage_idx <= 2 {
                    (3, 3, 3)
                } else {
                    (1, 3, 3)
                }
            }
        }
    }

    /// MC3's 2D stages do not downsample time (their kernels cannot see
    /// across frames anyway, but the reference design still strides
    /// spatially only after the 3D stages... Tran et al. keep temporal
    /// striding in MCx; we follow the reference and stride (2,2,2)).
    fn stride(&self, downsample: bool) -> (usize, usize, usize) {
        if downsample {
            (2, 2, 2)
        } else {
            (1, 1, 1)
        }
    }
}

fn residual_unit(
    flavor: Flavor,
    stage_idx: usize,
    unit: usize,
    in_ch: usize,
    out_ch: usize,
    downsample: bool,
) -> Node {
    let stage = format!("conv{stage_idx}_x");
    let kernel = flavor.kernel(stage_idx);
    let stride = flavor.stride(downsample);
    let mut main = vec![
        conv(
            format!("conv{stage_idx}_{unit}a"),
            &stage,
            out_ch,
            in_ch,
            kernel,
            stride,
        ),
        Node::BatchNorm { channels: out_ch },
        Node::Relu,
        conv(
            format!("conv{stage_idx}_{unit}b"),
            &stage,
            out_ch,
            out_ch,
            kernel,
            (1, 1, 1),
        ),
        Node::BatchNorm { channels: out_ch },
    ];
    let shortcut = if downsample || in_ch != out_ch {
        Some(vec![
            conv(
                format!("conv{stage_idx}_sc"),
                &stage,
                out_ch,
                in_ch,
                (1, 1, 1),
                stride,
            ),
            Node::BatchNorm { channels: out_ch },
        ])
    } else {
        None
    };
    // `main` is moved; rebuild as Residual.
    let main_nodes = std::mem::take(&mut main);
    Node::Residual {
        main: main_nodes,
        shortcut,
    }
}

fn build_18(name: &str, flavor: Flavor, num_classes: usize) -> NetworkSpec {
    let mut nodes = vec![
        // The R3D/MC3 stem: a single 3x7x7 stride (1,2,2) convolution.
        conv("conv1".into(), "conv1", 64, 3, (3, 7, 7), (1, 2, 2)),
        Node::BatchNorm { channels: 64 },
        Node::Relu,
    ];
    let widths = [64usize, 128, 256, 512];
    let mut in_ch = 64;
    for (i, &w) in widths.iter().enumerate() {
        let stage_idx = i + 2;
        let ds = stage_idx > 2;
        nodes.push(residual_unit(flavor, stage_idx, 1, in_ch, w, ds));
        nodes.push(residual_unit(flavor, stage_idx, 2, w, w, false));
        in_ch = w;
    }
    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Linear {
        name: "fc".into(),
        out_features: num_classes,
        in_features: 512,
    });
    NetworkSpec {
        name: name.into(),
        input: (3, 16, 112, 112),
        nodes,
    }
}

/// R3D-18: the all-3D 18-layer ResNet baseline.
pub fn r3d_18(num_classes: usize) -> NetworkSpec {
    build_18("R3D-18", Flavor::R3d, num_classes)
}

/// MC3-18: 3D convolutions in `conv2_x`, 2D (`1x3x3`) afterwards.
pub fn mc3_18(num_classes: usize) -> NetworkSpec {
    build_18("MC3-18", Flavor::Mc3, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r2plus1d::r2plus1d_18;

    #[test]
    fn r3d_shape_checks_and_is_heavier_than_r2plus1d() {
        let r3d = r3d_18(101);
        assert_eq!(r3d.output_shape().unwrap(), Some((101, 1, 1, 1)));
        // R3D-18 is ~33.2 M conv params — nearly identical to R(2+1)D by
        // construction of the midplane formula.
        let p_r3d = r3d.conv_params().unwrap();
        let p_r21 = r2plus1d_18(101).conv_params().unwrap();
        assert!((p_r3d as f64 / p_r21 as f64 - 1.0).abs() < 0.02, "{p_r3d} vs {p_r21}");
    }

    #[test]
    fn mc3_lighter_than_r3d() {
        let mc3 = mc3_18(101);
        assert_eq!(mc3.output_shape().unwrap(), Some((101, 1, 1, 1)));
        let p_mc3 = mc3.conv_params().unwrap();
        let p_r3d = r3d_18(101).conv_params().unwrap();
        assert!(p_mc3 < p_r3d, "MC3 should drop the temporal taps of the top stages");
        // Dropping Kd=3 -> 1 in conv3..conv5 removes roughly 2/3 of
        // their weights; whole-model reduction lands near 2.9x.
        let ratio = p_r3d as f64 / p_mc3 as f64;
        assert!((2.0..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn stage_structure_matches_family() {
        for spec in [r3d_18(101), mc3_18(101)] {
            assert_eq!(
                spec.stages().unwrap(),
                vec!["conv1", "conv2_x", "conv3_x", "conv4_x", "conv5_x"],
                "{}",
                spec.name
            );
            // 1 stem + 4 stages x 4 convs + 3 shortcuts = 20 conv tensors.
            assert_eq!(spec.conv_instances().unwrap().len(), 20, "{}", spec.name);
        }
    }

    #[test]
    fn feature_maps_match_r2plus1d_grid() {
        // Same downsampling points: 16x56x56 after conv2, 2x7x7 at conv5.
        let spec = r3d_18(101);
        let insts = spec.conv_instances().unwrap();
        let last = insts.iter().rev().find(|i| i.spec.stage == "conv5_x").unwrap();
        assert_eq!(
            (last.output.1, last.output.2, last.output.3),
            (2, 7, 7)
        );
    }
}
