//! Property-based cross-checks between the three consumers of
//! `NetworkSpec`: the analytic shape inference, the trainable builder,
//! and the parameter counters must all agree on randomly generated
//! architectures.

use p3d_models::{build_network, Conv3dSpec, NetworkSpec, Node};
use p3d_nn::{Layer, LayerExt, Mode, ParamKind};
use p3d_tensor::TensorRng;
use proptest::prelude::*;

/// A random but valid small spec: stem conv, optional residual unit,
/// optional pool, classifier head.
fn arb_spec() -> impl Strategy<Value = NetworkSpec> {
    (
        1usize..4,  // input channels
        2usize..5,  // frames
        prop::sample::select(vec![8usize, 10, 12]),
        2usize..6,  // stem width
        prop::sample::select(vec![(1usize, 3usize, 3usize), (3, 1, 1), (3, 3, 3)]),
        any::<bool>(), // residual unit?
        any::<bool>(), // with projection (wider)?
        2usize..5,  // classes
    )
        .prop_map(|(cin, d, hw, width, kernel, residual, project, classes)| {
            let mut nodes = vec![
                Node::Conv(Conv3dSpec {
                    name: "stem".into(),
                    stage: "conv1".into(),
                    out_channels: width,
                    in_channels: cin,
                    pad: (kernel.0 / 2, kernel.1 / 2, kernel.2 / 2),
                    kernel,
                    stride: (1, 1, 1),
                    bias: false,
                }),
                Node::BatchNorm { channels: width },
                Node::Relu,
            ];
            let mut out_width = width;
            if residual {
                let target = if project { width + 2 } else { width };
                let conv = |name: &str, m: usize, n: usize| {
                    Node::Conv(Conv3dSpec {
                        name: name.into(),
                        stage: "conv2_x".into(),
                        out_channels: m,
                        in_channels: n,
                        kernel: (1, 3, 3),
                        stride: (1, 1, 1),
                        pad: (0, 1, 1),
                        bias: false,
                    })
                };
                let main = vec![
                    conv("u1a", target, width),
                    Node::BatchNorm { channels: target },
                    Node::Relu,
                    conv("u1b", target, target),
                    Node::BatchNorm { channels: target },
                ];
                let shortcut = if project {
                    Some(vec![
                        Node::Conv(Conv3dSpec {
                            name: "sc".into(),
                            stage: "conv2_x".into(),
                            out_channels: target,
                            in_channels: width,
                            kernel: (1, 1, 1),
                            stride: (1, 1, 1),
                            pad: (0, 0, 0),
                            bias: false,
                        }),
                        Node::BatchNorm { channels: target },
                    ])
                } else {
                    None
                };
                nodes.push(Node::Residual { main, shortcut });
                out_width = target;
            }
            nodes.push(Node::GlobalAvgPool);
            nodes.push(Node::Linear {
                name: "fc".into(),
                out_features: classes,
                in_features: out_width,
            });
            NetworkSpec {
                name: "arb".into(),
                input: (cin, d, hw, hw),
                nodes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn built_network_matches_spec_shape(spec in arb_spec(), seed in 0u64..100) {
        let expected = spec.output_shape().unwrap().unwrap();
        let mut net = build_network(&spec, seed);
        let (c, d, h, w) = spec.input;
        let mut rng = TensorRng::seed(seed + 1);
        let x = rng.uniform_tensor([2, c, d, h, w], -1.0, 1.0);
        let y = net.forward(&x, Mode::Eval);
        let shape = y.shape();
        prop_assert_eq!(shape.dims(), &[2, expected.0]);
    }

    #[test]
    fn built_conv_params_match_counters(spec in arb_spec(), seed in 0u64..100) {
        let mut net = build_network(&spec, seed);
        let mut built = 0usize;
        net.visit_params(&mut |p| {
            if p.kind == ParamKind::ConvWeight {
                built += p.len();
            }
        });
        prop_assert_eq!(built, spec.conv_params().unwrap());
    }

    #[test]
    fn training_mode_backward_runs(spec in arb_spec(), seed in 0u64..50) {
        // Forward(Train) then backward must succeed and touch every param.
        let mut net = build_network(&spec, seed);
        let (c, d, h, w) = spec.input;
        let mut rng = TensorRng::seed(seed + 2);
        let x = rng.uniform_tensor([1, c, d, h, w], -1.0, 1.0);
        let y = net.forward(&x, Mode::Train);
        let g = rng.uniform_tensor(y.shape(), -1.0, 1.0);
        let _ = net.backward(&g);
        let mut any_nonzero = false;
        net.visit_params(&mut |p| {
            if p.grad.frobenius_norm() > 0.0 {
                any_nonzero = true;
            }
        });
        prop_assert!(any_nonzero, "backward produced no gradients");
        net.zero_grads();
    }

    #[test]
    fn conv_instances_count_matches_built_conv_tensors(spec in arb_spec(), seed in 0u64..50) {
        let mut net = build_network(&spec, seed);
        let mut conv_tensors = 0usize;
        net.visit_params(&mut |p| {
            if p.kind == ParamKind::ConvWeight {
                conv_tensors += 1;
            }
        });
        prop_assert_eq!(conv_tensors, spec.conv_instances().unwrap().len());
    }
}
