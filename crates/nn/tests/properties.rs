//! Property-based tests for the neural-network stack: linearity of the
//! convolution, shape algebra, and optimizer behaviour.

use p3d_nn::{Conv3d, Layer, Linear, Mode, Relu, Sequential};
use p3d_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

fn conv_case() -> impl Strategy<Value = (usize, usize, (usize, usize, usize), u64)> {
    (
        1usize..5,
        1usize..5,
        prop::sample::select(vec![(1usize, 3usize, 3usize), (3, 1, 1), (2, 2, 2), (1, 1, 1)]),
        0u64..1000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_is_linear_in_input((m, n, kernel, seed) in conv_case()) {
        let mut rng = TensorRng::seed(seed);
        let pad = (kernel.0 / 2, kernel.1 / 2, kernel.2 / 2);
        let mut conv = Conv3d::new("l", m, n, kernel, (1, 1, 1), pad, false, &mut rng);
        let x = rng.uniform_tensor([1, n, 3, 5, 5], -1.0, 1.0);
        let y = rng.uniform_tensor([1, n, 3, 5, 5], -1.0, 1.0);
        let (a, b) = (rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0));
        let lhs = conv.forward(&(&(&x * a) + &(&y * b)), Mode::Eval);
        let fx = conv.forward(&x, Mode::Eval);
        let fy = conv.forward(&y, Mode::Eval);
        let rhs = &(&fx * a) + &(&fy * b);
        prop_assert!(lhs.allclose(&rhs, 1e-3), "conv violates linearity");
    }

    #[test]
    fn conv_translation_equivariance_spatial(seed in 0u64..500) {
        // Shifting the input (away from borders) shifts the output.
        let mut rng = TensorRng::seed(seed);
        let mut conv = Conv3d::new("t", 2, 1, (1, 3, 3), (1, 1, 1), (0, 1, 1), false, &mut rng);
        let mut x = Tensor::zeros([1, 1, 1, 9, 9]);
        // A blob well inside the interior.
        for dy in 0..2 {
            for dx in 0..2 {
                x.set(&[0, 0, 0, 3 + dy, 3 + dx], 1.0);
            }
        }
        let y = conv.forward(&x, Mode::Eval);
        let mut xs = Tensor::zeros([1, 1, 1, 9, 9]);
        for dy in 0..2 {
            for dx in 0..2 {
                xs.set(&[0, 0, 0, 4 + dy, 4 + dx], 1.0);
            }
        }
        let ys = conv.forward(&xs, Mode::Eval);
        // Compare shifted interiors.
        for m in 0..2 {
            for r in 2..6 {
                for c in 2..6 {
                    let a = y.get(&[0, m, 0, r, c]);
                    let b = ys.get(&[0, m, 0, r + 1, c + 1]);
                    prop_assert!((a - b).abs() < 1e-4, "equivariance broken at {m},{r},{c}");
                }
            }
        }
    }

    #[test]
    fn backward_input_grad_matches_linearity((m, n, kernel, seed) in conv_case()) {
        // For a linear layer, <grad_in, dx> == <grad_out, f(dx)>.
        let mut rng = TensorRng::seed(seed.wrapping_add(7));
        let pad = (kernel.0 / 2, kernel.1 / 2, kernel.2 / 2);
        let mut conv = Conv3d::new("g", m, n, kernel, (1, 1, 1), pad, false, &mut rng);
        let x = rng.uniform_tensor([1, n, 2, 4, 4], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Train);
        let g = rng.uniform_tensor(y.shape(), -1.0, 1.0);
        let grad_in = conv.backward(&g);
        let dx = rng.uniform_tensor(x.shape(), -1.0, 1.0);
        let f_dx = conv.forward(&dx, Mode::Eval);
        let lhs = grad_in.dot(&dx);
        let rhs = g.dot(&f_dx);
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn relu_is_idempotent_and_nonexpansive(xs in prop::collection::vec(-5.0f32..5.0, 1..64)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([xs.len()], xs);
        let once = relu.forward(&x, Mode::Eval);
        let twice = relu.forward(&once, Mode::Eval);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.frobenius_norm() <= x.frobenius_norm() + 1e-6);
        prop_assert!(once.min() >= 0.0);
    }

    #[test]
    fn linear_composition_is_matrix_product(seed in 0u64..500) {
        let mut rng = TensorRng::seed(seed);
        let mut a = Linear::new("a", 3, 4, false, &mut rng);
        let mut b = Linear::new("b", 2, 3, false, &mut rng);
        let x = rng.uniform_tensor([2, 4], -1.0, 1.0);
        let via_layers = b.forward(&a.forward(&x, Mode::Eval), Mode::Eval);
        // W_b (W_a x^T) == x (W_a^T W_b^T)
        let combined = b.weight.value.matmul(&a.weight.value); // [2, 4]
        let direct = x.matmul_nt(&combined);
        prop_assert!(via_layers.allclose(&direct, 1e-4));
    }

    #[test]
    fn sequential_forward_equals_manual_chain(seed in 0u64..500) {
        let mut rng = TensorRng::seed(seed);
        let mut c1 = Conv3d::new("c1", 2, 1, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng);
        let mut rng2 = TensorRng::seed(seed);
        let mut seq = Sequential::new()
            .push(Conv3d::new("c1", 2, 1, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng2))
            .push(Relu::new());
        let x = rng.uniform_tensor([1, 1, 2, 5, 5], -1.0, 1.0);
        let manual = c1.forward(&x, Mode::Eval).map(|v| v.max(0.0));
        let chained = seq.forward(&x, Mode::Eval);
        prop_assert!(manual.allclose(&chained, 1e-6));
    }
}
