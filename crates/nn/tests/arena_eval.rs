//! Arena-based evaluation must match `forward(Mode::Eval)` bitwise and
//! stop growing once the per-layer buffers are warm.

use p3d_nn::{
    BatchNorm3d, Conv3d, EvalArena, Flatten, GlobalAvgPool, Layer, Linear, MaxPool3d, Mode, Relu,
    ResidualBlock, Sequential,
};
use p3d_tensor::{Tensor, TensorRng};

/// A small network exercising every layer kind that overrides
/// `eval_into`: conv, batch norm, relu, max pool, residual (identity and
/// projected), global average pool, flatten, and linear.
fn build_net(rng: &mut TensorRng) -> Sequential {
    let stem = Sequential::new()
        .push(Conv3d::new("stem", 4, 1, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, rng))
        .push(BatchNorm3d::new("stem_bn", 4))
        .push(Relu::new())
        .push(MaxPool3d::new((1, 2, 2), (1, 2, 2)));
    let id_block = ResidualBlock::identity(
        Sequential::new()
            .push(Conv3d::new("r1a", 4, 4, (3, 1, 1), (1, 1, 1), (1, 0, 0), false, rng))
            .push(BatchNorm3d::new("r1a_bn", 4))
            .push(Relu::new())
            .push(Conv3d::new("r1b", 4, 4, (1, 3, 3), (1, 1, 1), (0, 1, 1), false, rng))
            .push(BatchNorm3d::new("r1b_bn", 4)),
    );
    let proj_block = ResidualBlock::projected(
        Sequential::new()
            .push(Conv3d::new("r2a", 6, 4, (1, 3, 3), (2, 2, 2), (0, 1, 1), false, rng))
            .push(BatchNorm3d::new("r2a_bn", 6)),
        Sequential::new()
            .push(Conv3d::new("r2s", 6, 4, (1, 1, 1), (2, 2, 2), (0, 0, 0), false, rng))
            .push(BatchNorm3d::new("r2s_bn", 6)),
    );
    stem.push(id_block)
        .push(proj_block)
        .push(GlobalAvgPool::new())
        .push(Flatten::new())
        .push(Linear::new("fc", 5, 6, true, rng))
}

/// Randomises batch-norm statistics so the eval path exercises
/// non-trivial running means/variances rather than the 0/1 defaults.
fn warm_bn(net: &mut Sequential, rng: &mut TensorRng, shape: [usize; 5]) {
    for _ in 0..2 {
        let x = rng.uniform_tensor(shape, -1.0, 1.0);
        let _ = net.forward(&x, Mode::Train);
    }
}

#[test]
fn arena_eval_bitwise_matches_forward() {
    let mut rng = TensorRng::seed(42);
    let mut net = build_net(&mut rng);
    warm_bn(&mut net, &mut rng, [2, 1, 4, 8, 8]);

    let mut arena = EvalArena::new();
    for trial in 0..3 {
        let x = rng.uniform_tensor([2, 1, 4, 8, 8], -1.0, 1.0);
        let want = net.forward(&x, Mode::Eval);

        arena.reset();
        let input = arena.load_clip(&x);
        let out = net.eval_into(&mut arena, input);
        assert_eq!(arena.shape(out).dims(), want.shape().dims());
        // Bitwise, not approximate: the arena path must replay the same
        // f32 expressions in the same order.
        assert_eq!(arena.buf(out), want.data(), "trial {trial} diverged");
    }
}

#[test]
fn arena_stops_growing_after_first_clip() {
    let mut rng = TensorRng::seed(7);
    let mut net = build_net(&mut rng);
    warm_bn(&mut net, &mut rng, [1, 1, 4, 8, 8]);

    let mut arena = EvalArena::new();
    // Warm-up clip sizes every buffer.
    let x = rng.uniform_tensor([1, 1, 4, 8, 8], -1.0, 1.0);
    arena.reset();
    let input = arena.load_clip(&x);
    let _ = net.eval_into(&mut arena, input);
    let warm = arena.stats();
    assert!(warm.grow_events > 0, "warm-up should allocate");
    // No layer in this net should hit the copy-out fallback.
    assert_eq!(warm.fallback_events, 0, "unexpected eval_into fallback");

    // Steady state: same-shaped clips must reuse the warm buffers.
    for _ in 0..5 {
        let x = rng.uniform_tensor([1, 1, 4, 8, 8], -1.0, 1.0);
        arena.reset();
        let input = arena.load_clip(&x);
        let _ = net.eval_into(&mut arena, input);
    }
    let steady = arena.stats();
    assert_eq!(
        steady.grow_events, warm.grow_events,
        "steady-state eval grew the arena"
    );
    assert_eq!(steady.buffers, warm.buffers);
}

#[test]
fn default_eval_into_fallback_matches_forward() {
    /// A layer that does not override `eval_into`; exercises the
    /// copy-out default path end to end.
    struct Scale(f32);
    impl Layer for Scale {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.map(|x| x * self.0)
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.map(|g| g * self.0)
        }
        fn visit_params(&mut self, _f: &mut dyn FnMut(&mut p3d_nn::Param)) {}
        fn describe(&self) -> String {
            "scale".to_string()
        }
    }

    let mut rng = TensorRng::seed(9);
    let mut net = Sequential::new().push(Scale(0.5)).push(Relu::new());
    let x = rng.uniform_tensor([2, 3], -1.0, 1.0);
    let want = net.forward(&x, Mode::Eval);

    let mut arena = EvalArena::new();
    let input = arena.load_clip(&x);
    let out = net.eval_into(&mut arena, input);
    assert_eq!(arena.buf(out), want.data());
    assert_eq!(arena.stats().fallback_events, 1);
}
