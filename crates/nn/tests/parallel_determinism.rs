//! Determinism of the batch-parallel convolution path and the
//! im2col/col2im adjoint identity under parallel execution.

use p3d_nn::im2col::{col2im, im2col, ConvGeometry};
use p3d_nn::{BatchNorm3d, Conv3d, Layer, MaxPool3d, Mode};
use p3d_tensor::parallel::set_thread_override;
use p3d_tensor::{Tensor, TensorRng};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises tests that mutate the process-wide thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn mk_conv(seed: u64) -> Conv3d {
    let mut rng = TensorRng::seed(seed);
    Conv3d::new("d", 4, 3, (2, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng)
}

/// Runs one train step (forward + backward) at a given thread count and
/// returns `(output, grad_in, grad_w, grad_bias)`.
fn conv_step(threads: usize, x: &Tensor, g: &Tensor) -> (Tensor, Tensor, Tensor, Tensor) {
    set_thread_override(Some(threads));
    let mut conv = mk_conv(123);
    let y = conv.forward(x, Mode::Train);
    let gi = conv.backward(g);
    (
        y,
        gi,
        conv.weight.grad.clone(),
        conv.bias.as_ref().unwrap().grad.clone(),
    )
}

#[test]
fn conv3d_train_step_bitwise_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = TensorRng::seed(55);
    let x = rng.uniform_tensor([4, 3, 3, 6, 6], -1.0, 1.0);
    let g = rng.uniform_tensor([4, 4, 2, 6, 6], -1.0, 1.0);

    let (y1, gi1, gw1, gb1) = conv_step(1, &x, &g);
    for threads in [2, 8] {
        let (y, gi, gw, gb) = conv_step(threads, &x, &g);
        assert_eq!(y1, y, "forward differs at {threads} threads");
        assert_eq!(gi1, gi, "grad_in differs at {threads} threads");
        assert_eq!(gw1, gw, "grad_w differs at {threads} threads");
        assert_eq!(gb1, gb, "grad_bias differs at {threads} threads");
    }
    set_thread_override(None);
}

#[test]
fn batchnorm_and_maxpool_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = TensorRng::seed(56);
    let x = rng.uniform_tensor([4, 3, 2, 6, 6], -2.0, 2.0);
    let gp = rng.uniform_tensor([4, 3, 2, 3, 3], -1.0, 1.0);
    let gb = rng.uniform_tensor([4, 3, 2, 6, 6], -1.0, 1.0);

    let run = |threads: usize| {
        set_thread_override(Some(threads));
        let mut bn = BatchNorm3d::new("bn", 3);
        let bn_y = bn.forward(&x, Mode::Train);
        let bn_g = bn.backward(&gb);
        let mut mp = MaxPool3d::new((1, 2, 2), (1, 2, 2));
        let mp_y = mp.forward(&x, Mode::Train);
        let mp_g = mp.backward(&gp);
        (bn_y, bn_g, mp_y, mp_g)
    };
    let base = run(1);
    for threads in [2, 8] {
        let got = run(threads);
        assert_eq!(base.0, got.0, "bn forward differs at {threads} threads");
        assert_eq!(base.1, got.1, "bn backward differs at {threads} threads");
        assert_eq!(base.2, got.2, "maxpool forward differs at {threads} threads");
        assert_eq!(base.3, got.3, "maxpool backward differs at {threads} threads");
    }
    set_thread_override(None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..500) {
        // col2im is the adjoint of im2col: <col2im(G), X> == <G, im2col(X)>
        // for any X and any column-space G. This must survive the parallel
        // matmul inside conv backward, so it is checked through the same
        // geometry conv uses.
        let mut rng = TensorRng::seed(seed);
        let geom = ConvGeometry {
            channels: 2,
            input: (3, 5, 5),
            kernel: (2, 3, 3),
            stride: (1, 1, 1),
            pad: (0, 1, 1),
        };
        let x: Vec<f32> = (0..2 * 3 * 5 * 5).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let g = rng.uniform_tensor([geom.col_rows(), geom.col_cols()], -1.0, 1.0);

        let cols = im2col(&x, &geom);
        let mut back = vec![0.0f32; x.len()];
        col2im(&g, &geom, &mut back);

        let lhs: f32 = back.iter().zip(&x).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = g.data().iter().zip(cols.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_adjoint_through_parallel_path(seed in 0u64..200) {
        // <grad_in, dx> == <grad_out, conv(dx)> — the layer-level adjoint
        // identity, exercised with a batch big enough to take the
        // batch-parallel path.
        let mut rng = TensorRng::seed(seed);
        let mut conv = mk_conv(seed.wrapping_add(9));
        let x = rng.uniform_tensor([3, 3, 3, 5, 5], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Train);
        let g = rng.uniform_tensor(y.shape(), -1.0, 1.0);
        let grad_in = conv.backward(&g);
        let dx = rng.uniform_tensor(x.shape(), -1.0, 1.0);
        let f_dx = conv.forward(&dx, Mode::Eval);
        // Remove the bias contribution: conv(dx) includes the bias, which
        // the adjoint identity excludes. conv(0) == bias pattern.
        let f_zero = conv.forward(&Tensor::zeros(x.shape()), Mode::Eval);
        let f_dx_linear = &f_dx - &f_zero;
        let lhs = grad_in.dot(&dx);
        let rhs = g.dot(&f_dx_linear);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }
}
