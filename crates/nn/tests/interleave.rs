//! Regression tests for the eval-clobbers-train-cache bug.
//!
//! The training loop legitimately interleaves a validation pass between
//! `forward(Train)` and `backward` (e.g. mid-epoch metrics). Before the
//! fix, every cached-state layer *cleared* its Train cache on an Eval
//! forward, so the subsequent `backward` either panicked or silently used
//! stale state. The contract is now: Eval never touches cached Train
//! state; only a Train forward refreshes it.

use p3d_nn::{
    BatchNorm3d, Conv3d, Layer, Linear, MaxPool3d, Mode, Relu, ResidualBlock, Sequential,
};
use p3d_tensor::{Tensor, TensorRng};

/// Runs `layer` through forward(Train) on `x`, then — on the interleaved
/// copy — an extra forward(Eval) on `x_eval`, then backward on both and
/// asserts identical input gradients.
fn assert_interleave_safe<L: Layer>(
    mut plain: L,
    mut interleaved: L,
    x: &Tensor,
    x_eval: &Tensor,
    grad_seed: u64,
) {
    let y1 = plain.forward(x, Mode::Train);
    let y2 = interleaved.forward(x, Mode::Train);
    assert_eq!(y1, y2, "train forwards diverge before the eval pass");

    // The interleaved validation pass that used to clobber the cache.
    let _ = interleaved.forward(x_eval, Mode::Eval);

    let mut rng = TensorRng::seed(grad_seed);
    let g = rng.uniform_tensor(y1.shape(), -1.0, 1.0);
    let gi1 = plain.backward(&g);
    let gi2 = interleaved.backward(&g);
    assert_eq!(
        gi1, gi2,
        "eval pass between forward(Train) and backward changed the gradient"
    );
}

#[test]
fn conv3d_survives_eval_between_train_and_backward() {
    let mut rng = TensorRng::seed(10);
    let mk = || {
        let mut r = TensorRng::seed(99);
        Conv3d::new("c", 3, 2, (2, 2, 2), (1, 1, 1), (0, 0, 0), true, &mut r)
    };
    let x = rng.uniform_tensor([2, 2, 3, 4, 4], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([1, 2, 3, 4, 4], -1.0, 1.0);
    assert_interleave_safe(mk(), mk(), &x, &x_eval, 1);
}

#[test]
fn linear_survives_eval_between_train_and_backward() {
    let mut rng = TensorRng::seed(11);
    let mk = || {
        let mut r = TensorRng::seed(98);
        Linear::new("l", 4, 6, true, &mut r)
    };
    let x = rng.uniform_tensor([3, 6], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([5, 6], -1.0, 1.0);
    assert_interleave_safe(mk(), mk(), &x, &x_eval, 2);
}

#[test]
fn relu_survives_eval_between_train_and_backward() {
    let mut rng = TensorRng::seed(12);
    let x = rng.uniform_tensor([2, 3, 2, 4, 4], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([2, 3, 2, 4, 4], -1.0, 1.0);
    assert_interleave_safe(Relu::new(), Relu::new(), &x, &x_eval, 3);
}

#[test]
fn maxpool_survives_eval_between_train_and_backward() {
    let mut rng = TensorRng::seed(13);
    let x = rng.uniform_tensor([2, 2, 2, 4, 4], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([1, 2, 2, 4, 4], -1.0, 1.0);
    assert_interleave_safe(
        MaxPool3d::new((1, 2, 2), (1, 2, 2)),
        MaxPool3d::new((1, 2, 2), (1, 2, 2)),
        &x,
        &x_eval,
        4,
    );
}

#[test]
fn batchnorm_survives_eval_between_train_and_backward() {
    let mut rng = TensorRng::seed(14);
    let x = rng.uniform_tensor([3, 2, 2, 3, 3], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([2, 2, 2, 3, 3], -1.0, 1.0);
    assert_interleave_safe(
        BatchNorm3d::new("bn", 2),
        BatchNorm3d::new("bn", 2),
        &x,
        &x_eval,
        5,
    );
}

#[test]
fn residual_block_survives_eval_between_train_and_backward() {
    let mk = || {
        let mut r = TensorRng::seed(97);
        let main = Sequential::new()
            .push(Conv3d::new(
                "m",
                2,
                2,
                (1, 3, 3),
                (1, 1, 1),
                (0, 1, 1),
                false,
                &mut r,
            ))
            .push(Relu::new());
        ResidualBlock::identity(main)
    };
    let mut rng = TensorRng::seed(15);
    let x = rng.uniform_tensor([2, 2, 2, 4, 4], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([2, 2, 2, 4, 4], -1.0, 1.0);
    assert_interleave_safe(mk(), mk(), &x, &x_eval, 6);
}

#[test]
fn weight_grads_also_match_after_interleaved_eval() {
    // Beyond input gradients: accumulated parameter gradients must be
    // identical too (Conv3d reduces per-clip contributions in clip order).
    let mk = || {
        let mut r = TensorRng::seed(96);
        Conv3d::new("w", 2, 2, (2, 2, 2), (1, 1, 1), (0, 0, 0), true, &mut r)
    };
    let mut plain = mk();
    let mut interleaved = mk();
    let mut rng = TensorRng::seed(16);
    let x = rng.uniform_tensor([3, 2, 3, 4, 4], -1.0, 1.0);
    let x_eval = rng.uniform_tensor([1, 2, 3, 4, 4], -1.0, 1.0);

    let y = plain.forward(&x, Mode::Train);
    let _ = interleaved.forward(&x, Mode::Train);
    let _ = interleaved.forward(&x_eval, Mode::Eval);
    let g = rng.uniform_tensor(y.shape(), -1.0, 1.0);
    let _ = plain.backward(&g);
    let _ = interleaved.backward(&g);

    assert_eq!(plain.weight.grad, interleaved.weight.grad);
    assert_eq!(
        plain.bias.as_ref().unwrap().grad,
        interleaved.bias.as_ref().unwrap().grad
    );
}
