//! Fuzz-style robustness tests for the `P3DCKPT2` checkpoint reader.
//!
//! Invariants under test, for *any* corruption of a valid file:
//!
//! * the reader returns `Err`, never panics and never allocates
//!   unboundedly (the hardened reader streams payloads in small chunks
//!   and validates every header field before trusting it);
//! * truncation at *every* byte offset is detected;
//! * any single bit flip in the body is caught by the per-record CRC32
//!   (flips inside the 8-byte magic or the count field are caught by
//!   magic/structure validation instead);
//! * legacy `P3DCKPT1` files (no checksums) still load, and their
//!   truncations still fail cleanly.

use p3d_nn::{Checkpoint, Flatten, Linear, Sequential};
use p3d_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

/// A small but representative checkpoint: several tensors, multi-dim
/// shapes, a mask, and NaN-pattern lanes from bit-packed counters.
fn sample_checkpoint() -> Checkpoint {
    let mut ck = Checkpoint::default();
    let mut rng = TensorRng::seed(7);
    ck.tensors
        .insert("conv.weight".into(), rng.uniform_tensor([4, 2, 1, 3, 3], -1.0, 1.0));
    ck.tensors
        .insert("conv.weight.mask".into(), Tensor::from_vec([4], vec![0.0, 1.0, 1.0, 0.0]));
    ck.tensors.insert("fc.bias".into(), Tensor::zeros([4]));
    // Bit-packed u64s produce NaN/denormal f32 lanes — they must survive.
    ck.tensors
        .insert("trainer.rng".into(), p3d_nn::pack_u64s(&[u64::MAX, 0, 42, 1 << 63]));
    ck
}

/// Bitwise checkpoint equality: `PartialEq` on tensors uses float `==`,
/// which is false for the NaN lanes produced by bit-packed counters.
fn assert_bits_eq(a: &Checkpoint, b: &Checkpoint) {
    assert_eq!(
        a.tensors.keys().collect::<Vec<_>>(),
        b.tensors.keys().collect::<Vec<_>>()
    );
    for (name, ta) in &a.tensors {
        let tb = &b.tensors[name];
        assert_eq!(ta.shape(), tb.shape(), "shape mismatch for {name}");
        let same = ta
            .data()
            .iter()
            .zip(tb.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "data bits differ for {name}");
    }
}

fn v2_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    sample_checkpoint().write_to(&mut buf).unwrap();
    buf
}

fn v1_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    sample_checkpoint().write_to_v1(&mut buf).unwrap();
    buf
}

#[test]
fn valid_files_roundtrip_both_versions() {
    let original = sample_checkpoint();
    let v2 = Checkpoint::read_from(&mut &v2_bytes()[..]).unwrap();
    assert_bits_eq(&v2, &original);
    let v1 = Checkpoint::read_from(&mut &v1_bytes()[..]).unwrap();
    assert_bits_eq(&v1, &original);
}

#[test]
fn v1_file_restores_into_network() {
    // End-to-end compatibility: a legacy file written by the old format
    // restores into a live network through the new reader.
    let mut rng = TensorRng::seed(3);
    let mut net = Sequential::new()
        .push(Flatten::new())
        .push(Linear::new("fc", 2, 4, true, &mut rng));
    let mut old = Checkpoint::capture(&mut net);
    old.tensors.remove("trainer.rng"); // not present in model captures anyway
    let mut buf = Vec::new();
    old.write_to_v1(&mut buf).unwrap();

    let mut rng2 = TensorRng::seed(99);
    let mut fresh = Sequential::new()
        .push(Flatten::new())
        .push(Linear::new("fc", 2, 4, true, &mut rng2));
    let report = Checkpoint::read_from(&mut &buf[..]).unwrap().restore(&mut fresh);
    assert!(report.is_exact(), "v1 restore not exact: {report:?}");
    assert_eq!(Checkpoint::capture(&mut fresh), old);
}

#[test]
fn every_truncation_point_errors() {
    // Exhaustive, not sampled: the files are a few KiB.
    for bytes in [v2_bytes(), v1_bytes()] {
        for cut in 0..bytes.len() {
            let r = Checkpoint::read_from(&mut &bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut}/{} accepted", bytes.len());
        }
    }
}

#[test]
fn every_single_bit_flip_in_v2_errors_or_roundtrips_magically_never_panics() {
    // A flip anywhere past the magic+count header must be caught by
    // validation or CRC. (A flip inside the 16-byte header may produce a
    // wrong-magic or wrong-count error; both are Errs too.)
    let bytes = v2_bytes();
    let original = sample_checkpoint();
    let mut accepted_unchanged = 0usize;
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut m = bytes.clone();
            m[byte] ^= 1 << bit;
            match Checkpoint::read_from(&mut &m[..]) {
                Err(_) => {}
                Ok(ck) => {
                    // The only acceptable Ok is a parse identical to the
                    // original (cannot happen for a real flip, but keep
                    // the invariant explicit).
                    assert_bits_eq(&ck, &original);
                    accepted_unchanged += 1;
                }
            }
        }
    }
    assert_eq!(accepted_unchanged, 0, "some flips were undetected");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_multi_byte_corruption_never_panics(
        seed in 0u64..10_000,
        flips in 1usize..16,
    ) {
        let mut bytes = v2_bytes();
        let mut rng = TensorRng::seed(seed);
        for _ in 0..flips {
            let pos = rng.uniform(0.0, bytes.len() as f32) as usize % bytes.len();
            let bit = rng.uniform(0.0, 8.0) as u32 % 8;
            bytes[pos] ^= 1 << bit;
        }
        // Must not panic; almost always Err. An Ok must decode to a
        // well-formed map (reader invariants), which we simply touch.
        if let Ok(ck) = Checkpoint::read_from(&mut &bytes[..]) {
            prop_assert!(ck.tensors.len() <= p3d_nn::checkpoint::MAX_TENSORS);
        }
    }

    #[test]
    fn random_garbage_never_panics_nor_overallocates(
        len in 0usize..512,
        seed in 0u64..10_000,
    ) {
        // Arbitrary bytes, including ones starting with a valid magic:
        // the reader must fail fast without large allocations (malicious
        // headers claiming 2^64 tensors / 4 GiB names are rejected by
        // bound checks before any allocation).
        let mut rng = TensorRng::seed(seed);
        let mut bytes: Vec<u8> = (0..len)
            .map(|_| rng.uniform(0.0, 256.0) as u8)
            .collect();
        if len >= 8 && seed % 2 == 0 {
            bytes[..8].copy_from_slice(b"P3DCKPT2");
        }
        let r = Checkpoint::read_from(&mut &bytes[..]);
        prop_assert!(r.is_err() || bytes.len() >= 16);
    }
}
