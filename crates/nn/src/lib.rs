#![warn(missing_docs)]
// Numeric kernels index multiple parallel buffers; explicit indices read
// better than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]
//! A from-scratch neural-network stack for 3D CNNs.
//!
//! This crate supplies the DNN training substrate that the paper
//! (*"3D CNN Acceleration on FPGA using Hardware-Aware Pruning"*, DAC
//! 2020) obtained from a mainstream framework: layers with manual
//! backprop, SGD with momentum, learning-rate schedules including the
//! warmup+cosine schedule used for masked retraining, cross entropy with
//! label smoothing, and a mini-batch training loop with a gradient hook
//! through which the ADMM W-minimisation step injects its quadratic
//! penalty.
//!
//! # Layers
//!
//! * [`Conv3d`] — all convolution flavours used by C3D and R(2+1)D
//!   (`3x3x3`, `1xKxK` spatial, `Kx1x1` temporal, `1x1x1` projections),
//! * [`BatchNorm3d`], [`Relu`], [`MaxPool3d`], [`GlobalAvgPool`],
//!   [`Linear`], [`Flatten`],
//! * containers [`Sequential`] and [`ResidualBlock`].
//!
//! # Example
//!
//! ```
//! use p3d_nn::{Conv3d, GlobalAvgPool, Layer, Linear, Mode, Relu, Sequential};
//! use p3d_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed(0);
//! let mut net = Sequential::new()
//!     .push(Conv3d::new("c1", 8, 1, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng))
//!     .push(Relu::new())
//!     .push(GlobalAvgPool::new())
//!     .push(Linear::new("fc", 4, 8, true, &mut rng));
//! let clip = rng.uniform_tensor([2, 1, 4, 8, 8], -1.0, 1.0);
//! let logits = net.forward(&clip, Mode::Eval);
//! assert_eq!(logits.shape().dims(), &[2, 4]);
//! ```

pub mod activation;
pub mod arena;
pub mod batchnorm;
pub mod checkpoint;
pub mod container;
pub mod conv3d;
pub mod gradcheck;
pub mod im2col;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod pool;
pub mod schedule;
pub mod sentinel;
pub mod train_state;
pub mod trainer;

pub use activation::Relu;
pub use arena::{ArenaStats, BufId, EvalArena};
pub use batchnorm::BatchNorm3d;
pub use checkpoint::{Checkpoint, RestoreReport};
pub use container::{ResidualBlock, Sequential};
pub use conv3d::Conv3d;
pub use layer::{Layer, LayerExt, Mode, Param, ParamKind};
pub use linear::{Flatten, Linear};
pub use loss::CrossEntropyLoss;
pub use optim::Sgd;
pub use pool::{GlobalAvgPool, MaxPool3d};
pub use schedule::LrSchedule;
pub use sentinel::{activation_sentinels_enabled, set_activation_sentinels};
pub use train_state::{pack_u64s, unpack_u64s, TrainState};
pub use trainer::{evaluate, stack_clips, Dataset, EpochStats, ToyDataset, Trainer};
