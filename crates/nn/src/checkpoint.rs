//! Checkpointing: saving and restoring network parameters and state.
//!
//! The on-disk format (`P3DCKPT2`) is a simple self-describing binary:
//! a magic header, a record count, then length-prefixed
//! `(name, shape, f32 data, crc32)` records for every parameter, pruning
//! mask, and exported state tensor. No external serialisation crate is
//! needed, and files are byte-identical across platforms (little-endian).
//!
//! # Format spec (`P3DCKPT2`)
//!
//! ```text
//! magic   : 8 bytes  b"P3DCKPT2"
//! count   : u64 LE   number of records (<= MAX_TENSORS)
//! record  :
//!   name_len : u32 LE   1..=MAX_NAME_LEN
//!   name     : name_len bytes, UTF-8
//!   rank     : u32 LE   1..=MAX_RANK
//!   dims     : rank x u64 LE, each >= 1; product <= MAX_ELEMS
//!   data     : product x f32 LE
//!   crc      : u32 LE   CRC-32 (IEEE) over the record bytes above
//! ```
//!
//! No trailing bytes are allowed after the last record. The legacy
//! `P3DCKPT1` format (identical but without the per-record CRC) is still
//! readable; [`Checkpoint::write_to_v1`] can produce it for
//! compatibility tests.
//!
//! # Robustness
//!
//! The reader is hardened against corrupt or adversarial inputs: every
//! length field is bounds-checked before allocation, element counts use
//! checked multiplication, and tensor payloads are streamed in small
//! chunks so a truncated file fails with [`std::io::ErrorKind::InvalidData`]
//! after allocating at most a few kilobytes — it can never OOM or panic.
//! Saving is crash-safe: data is written to a sibling `*.tmp` file,
//! fsynced, and atomically renamed over the destination, so a crash
//! mid-save leaves either the old file or the new one, never a torn mix.

use crate::layer::Layer;
use p3d_tensor::{Shape, Tensor};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_V2: &[u8; 8] = b"P3DCKPT2";
const MAGIC_V1: &[u8; 8] = b"P3DCKPT1";

/// Maximum number of records in one checkpoint.
pub const MAX_TENSORS: usize = 1 << 20;
/// Maximum tensor-name length in bytes.
pub const MAX_NAME_LEN: usize = 4096;
/// Maximum number of scalars in one tensor (1 GiB of f32 data).
pub const MAX_ELEMS: usize = 1 << 28;

/// Streaming chunk size for tensor payloads (multiple of 4).
const IO_CHUNK: usize = 64 * 1024;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, no external dependency.
// ---------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE) state.
#[derive(Clone, Copy, Debug)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// CRC-32 of a byte slice.
fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` that reports truncation as `InvalidData` instead of
/// `UnexpectedEof`, so callers see one uniform "malformed checkpoint"
/// error kind.
fn read_exact_ckpt(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("truncated checkpoint")
        } else {
            e
        }
    })
}

/// Appends the little-endian bytes of `data` to `out` in bulk.
///
/// One `reserve` plus tight 4-byte appends replaces the historical
/// per-scalar `write_all` loop; on release builds this lowers to a
/// vectorised copy and makes R(2+1)D-sized checkpoint saves several
/// times faster (see EXPERIMENTS.md).
fn extend_f32_le(out: &mut Vec<u8>, data: &[f32]) {
    out.reserve(data.len() * 4);
    for &x in data {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// A report of what a [`Checkpoint::restore`] actually did.
///
/// Historically, tensors missing from the checkpoint or unused by the
/// network were silently ignored; this report makes every mismatch
/// visible, and [`Checkpoint::restore_strict`] turns any mismatch into
/// an error.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Names restored into the network (parameters, masks, and state).
    pub restored: Vec<String>,
    /// Names the network wanted but the checkpoint does not contain.
    pub missing: Vec<String>,
    /// Checkpoint tensors no part of the network consumed.
    pub unused: Vec<String>,
    /// Names present in both but with incompatible shapes (populated by
    /// [`Checkpoint::try_restore`]; the panicking [`Checkpoint::restore`]
    /// aborts on these instead).
    pub mismatched: Vec<String>,
}

impl RestoreReport {
    /// Number of tensors restored.
    pub fn num_restored(&self) -> usize {
        self.restored.len()
    }

    /// `true` when the checkpoint and network matched exactly: nothing
    /// missing, nothing unused, no shape mismatches.
    pub fn is_exact(&self) -> bool {
        self.missing.is_empty() && self.unused.is_empty() && self.mismatched.is_empty()
    }
}

/// A named collection of tensors: parameters plus exported state
/// (batch-norm running statistics, pruning masks, optimiser and
/// trainer state, ...).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Tensors by unique name.
    pub tensors: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Captures every parameter value, installed pruning mask, and
    /// exported state tensor of a network.
    ///
    /// Masks are stored as `{param}.mask` tensors so that a
    /// saved-then-loaded pruned model stays on its sparsity set: without
    /// them the first optimiser step after a restore would resurrect
    /// pruned weights.
    pub fn capture(network: &mut dyn Layer) -> Self {
        let mut tensors = BTreeMap::new();
        network.visit_params(&mut |p| {
            tensors.insert(p.name.clone(), p.value.clone());
            if let Some(mask) = &p.mask {
                tensors.insert(format!("{}.mask", p.name), mask.clone());
            }
        });
        network.export_state(&mut |name, t| {
            tensors.insert(name.to_string(), t.clone());
        });
        Checkpoint { tensors }
    }

    fn restore_impl(&self, network: &mut dyn Layer) -> RestoreReport {
        let mut report = RestoreReport::default();
        let mut used: BTreeSet<String> = BTreeSet::new();
        network.visit_params(&mut |p| {
            match self.tensors.get(&p.name) {
                Some(t) if t.shape() == p.value.shape() => {
                    p.value = t.clone();
                    used.insert(p.name.clone());
                    report.restored.push(p.name.clone());
                }
                Some(_) => {
                    used.insert(p.name.clone());
                    report.mismatched.push(p.name.clone());
                }
                None => report.missing.push(p.name.clone()),
            }
            let mask_key = format!("{}.mask", p.name);
            match self.tensors.get(&mask_key) {
                Some(m) if m.shape() == p.value.shape() => {
                    p.set_mask(m.clone());
                    used.insert(mask_key.clone());
                    report.restored.push(mask_key);
                }
                Some(_) => {
                    used.insert(mask_key.clone());
                    report.mismatched.push(mask_key);
                }
                // No mask in the checkpoint: leave whatever mask the
                // live parameter has. (An unmasked checkpoint of a
                // masked network is a deliberate "unprune".)
                None => {}
            }
        });
        network.import_state(&mut |name, expect| match self.tensors.get(name) {
            Some(t) if t.shape() == *expect => {
                used.insert(name.to_string());
                report.restored.push(name.to_string());
                Some(t.clone())
            }
            Some(_) => {
                used.insert(name.to_string());
                report.mismatched.push(name.to_string());
                None
            }
            None => {
                report.missing.push(name.to_string());
                None
            }
        });
        for name in self.tensors.keys() {
            if !used.contains(name) {
                report.unused.push(name.clone());
            }
        }
        report
    }

    /// Restores parameter values, pruning masks (`{param}.mask`
    /// entries), *and* exported state (batch-norm running statistics)
    /// into a network built with the same architecture and naming.
    ///
    /// Returns a [`RestoreReport`] listing restored, missing, and unused
    /// tensors instead of silently ignoring mismatches.
    ///
    /// # Panics
    ///
    /// Panics if a stored tensor exists for a parameter (or its mask)
    /// but with a different shape. Use [`Checkpoint::try_restore`] for a
    /// non-panicking variant.
    pub fn restore(&self, network: &mut dyn Layer) -> RestoreReport {
        let report = self.restore_impl(network);
        assert!(
            report.mismatched.is_empty(),
            "checkpoint shape mismatch for {}",
            report.mismatched.join(", ")
        );
        report
    }

    /// Like [`Checkpoint::restore`], but records shape mismatches in
    /// [`RestoreReport::mismatched`] (skipping those tensors) instead of
    /// panicking.
    pub fn try_restore(&self, network: &mut dyn Layer) -> RestoreReport {
        self.restore_impl(network)
    }

    /// Strict restore: errors unless the checkpoint and the network
    /// match *exactly* — every network tensor restored, no checkpoint
    /// tensor unused, no shape mismatch.
    ///
    /// Note that the network may still have been partially mutated when
    /// this returns an error.
    pub fn restore_strict(&self, network: &mut dyn Layer) -> io::Result<RestoreReport> {
        let report = self.restore_impl(network);
        if report.is_exact() {
            Ok(report)
        } else {
            Err(invalid(format!(
                "strict restore mismatch: missing {:?}, unused {:?}, shape-mismatched {:?}",
                report.missing, report.unused, report.mismatched
            )))
        }
    }

    /// Serialises to any writer in the current (`P3DCKPT2`) format.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC_V2)?;
        w.write_all(&(self.tensors.len() as u64).to_le_bytes())?;
        let mut rec: Vec<u8> = Vec::new();
        for (name, t) in &self.tensors {
            rec.clear();
            let name_bytes = name.as_bytes();
            rec.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
            rec.extend_from_slice(name_bytes);
            let shape = t.shape();
            let dims = shape.dims();
            rec.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                rec.extend_from_slice(&(d as u64).to_le_bytes());
            }
            extend_f32_le(&mut rec, t.data());
            let crc = crc32(&rec);
            w.write_all(&rec)?;
            w.write_all(&crc.to_le_bytes())?;
        }
        Ok(())
    }

    /// Serialises in the legacy `P3DCKPT1` format (no checksums).
    ///
    /// New code writes v2; this exists so compatibility tests (and any
    /// tooling that must interoperate with pre-v2 readers) can still
    /// produce v1 files.
    pub fn write_to_v1(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC_V1)?;
        w.write_all(&(self.tensors.len() as u64).to_le_bytes())?;
        let mut rec: Vec<u8> = Vec::new();
        for (name, t) in &self.tensors {
            rec.clear();
            let name_bytes = name.as_bytes();
            rec.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
            rec.extend_from_slice(name_bytes);
            let shape = t.shape();
            let dims = shape.dims();
            rec.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                rec.extend_from_slice(&(d as u64).to_le_bytes());
            }
            extend_f32_le(&mut rec, t.data());
            w.write_all(&rec)?;
        }
        Ok(())
    }

    /// Reads one `(name, tensor)` record; `with_crc` selects the v2
    /// layout (trailing CRC-32) versus legacy v1.
    fn read_record(r: &mut impl Read, with_crc: bool) -> io::Result<(String, Tensor)> {
        let mut crc = Crc32::new();
        let mut u32buf = [0u8; 4];
        let mut u64buf = [0u8; 8];

        read_exact_ckpt(r, &mut u32buf)?;
        crc.update(&u32buf);
        let name_len = u32::from_le_bytes(u32buf) as usize;
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(invalid(format!(
                "tensor name length {name_len} out of bounds (1..={MAX_NAME_LEN})"
            )));
        }
        let mut name_bytes = vec![0u8; name_len];
        read_exact_ckpt(r, &mut name_bytes)?;
        crc.update(&name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|e| invalid(e.to_string()))?;

        read_exact_ckpt(r, &mut u32buf)?;
        crc.update(&u32buf);
        let rank = u32::from_le_bytes(u32buf) as usize;
        if rank == 0 || rank > p3d_tensor::shape::MAX_RANK {
            return Err(invalid(format!("tensor rank {rank} out of bounds")));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut elems: usize = 1;
        for _ in 0..rank {
            read_exact_ckpt(r, &mut u64buf)?;
            crc.update(&u64buf);
            let d = u64::from_le_bytes(u64buf);
            if d == 0 || d > MAX_ELEMS as u64 {
                return Err(invalid(format!("tensor dimension {d} out of bounds")));
            }
            let d = d as usize;
            elems = elems
                .checked_mul(d)
                .filter(|&e| e <= MAX_ELEMS)
                .ok_or_else(|| invalid("tensor element count overflows the allocation budget"))?;
            dims.push(d);
        }

        // Stream the payload in bounded chunks: a truncated or lying
        // header fails after at most IO_CHUNK extra bytes of allocation,
        // never a multi-GB `vec!`.
        let mut data: Vec<f32> = Vec::new();
        let mut remaining = elems * 4;
        let mut chunk = [0u8; IO_CHUNK];
        while remaining > 0 {
            let n = remaining.min(IO_CHUNK);
            read_exact_ckpt(r, &mut chunk[..n])?;
            crc.update(&chunk[..n]);
            data.reserve(n / 4);
            for b in chunk[..n].chunks_exact(4) {
                data.push(f32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            }
            remaining -= n;
        }

        if with_crc {
            read_exact_ckpt(r, &mut u32buf)?;
            let stored = u32::from_le_bytes(u32buf);
            let computed = crc.finish();
            if stored != computed {
                return Err(invalid(format!(
                    "checksum mismatch for tensor '{name}': stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
        }

        Ok((name, Tensor::from_vec(Shape::new(&dims), data)))
    }

    /// Deserialises from any reader, accepting both the current
    /// (`P3DCKPT2`, checksummed) and legacy (`P3DCKPT1`) formats.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a wrong magic header, malformed or
    /// truncated records, out-of-bounds lengths, checksum mismatches,
    /// duplicate names, or trailing bytes. Never panics and never
    /// allocates more than a bounded amount beyond the bytes actually
    /// present in the input.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        read_exact_ckpt(r, &mut magic)?;
        let with_crc = match &magic {
            m if m == MAGIC_V2 => true,
            m if m == MAGIC_V1 => false,
            _ => return Err(invalid("not a p3d checkpoint")),
        };
        let mut u64buf = [0u8; 8];
        read_exact_ckpt(r, &mut u64buf)?;
        let count = u64::from_le_bytes(u64buf);
        if count > MAX_TENSORS as u64 {
            return Err(invalid(format!("record count {count} out of bounds")));
        }
        let mut tensors = BTreeMap::new();
        for _ in 0..count {
            let (name, t) = Self::read_record(r, with_crc)?;
            if tensors.insert(name.clone(), t).is_some() {
                return Err(invalid(format!("duplicate tensor name '{name}'")));
            }
        }
        // No trailing garbage: a flipped count field must not let a
        // corrupt file parse as a shorter valid one.
        let mut probe = [0u8; 1];
        loop {
            match r.read(&mut probe) {
                Ok(0) => break,
                Ok(_) => return Err(invalid("trailing bytes after last record")),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(Checkpoint { tensors })
    }

    /// Saves to a file **atomically**: the checkpoint is written to a
    /// sibling `{file}.tmp`, flushed and fsynced, then renamed over the
    /// destination. A crash mid-save leaves either the previous file or
    /// the complete new one — never a torn, half-written checkpoint.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let result = (|| {
            let f = std::fs::File::create(&tmp)?;
            let mut w = io::BufWriter::new(f);
            self.write_to(&mut w)?;
            w.flush()?;
            w.get_ref().sync_all()?;
            drop(w);
            std::fs::rename(&tmp, path)?;
            // Make the rename itself durable.
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    if let Ok(d) = std::fs::File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Checkpoint::read_from(&mut f)
    }

    /// Total number of scalars stored.
    pub fn num_scalars(&self) -> usize {
        self.tensors.values().map(|t| t.len()).sum()
    }
}

/// `{path}.tmp` in the same directory (so the final rename is atomic on
/// POSIX filesystems — rename across filesystems is not).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("checkpoint"));
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Sequential;
    use crate::conv3d::Conv3d;
    use crate::layer::Mode;
    use p3d_tensor::TensorRng;

    fn demo_net(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        Sequential::new()
            .push(Conv3d::new("a", 3, 2, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng))
            .push(crate::batchnorm::BatchNorm3d::new("bn0", 3))
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut net = demo_net(1);
        // Run a training step so BN stats are non-default.
        let mut rng = TensorRng::seed(2);
        let x = rng.uniform_tensor([2, 2, 2, 4, 4], -1.0, 1.0);
        let _ = net.forward(&x, Mode::Train);
        let ckpt = Checkpoint::capture(&mut net);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back, ckpt);
        assert!(back.tensors.contains_key("a.weight"));
        assert!(back.tensors.contains_key("bn0.running_mean"));
    }

    #[test]
    fn v1_files_still_load() {
        let mut net = demo_net(2);
        let ckpt = Checkpoint::capture(&mut net);
        let mut v1 = Vec::new();
        ckpt.write_to_v1(&mut v1).unwrap();
        assert_eq!(&v1[..8], b"P3DCKPT1");
        let back = Checkpoint::read_from(&mut &v1[..]).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn restore_into_fresh_network() {
        let mut net = demo_net(3);
        let ckpt = Checkpoint::capture(&mut net);
        let mut fresh = demo_net(4);
        // Different seed -> different weights before restore.
        assert_ne!(
            Checkpoint::capture(&mut fresh).tensors["a.weight"],
            ckpt.tensors["a.weight"]
        );
        let report = ckpt.restore(&mut fresh);
        // weight, bias, gamma, beta + running mean/var.
        assert_eq!(report.num_restored(), 6);
        assert!(report.is_exact(), "unexpected mismatch: {report:?}");
        assert_eq!(
            Checkpoint::capture(&mut fresh).tensors["a.weight"],
            ckpt.tensors["a.weight"]
        );
    }

    #[test]
    fn restore_report_lists_missing_and_unused() {
        let mut net = demo_net(5);
        let mut ckpt = Checkpoint::capture(&mut net);
        ckpt.tensors.remove("a.bias");
        ckpt.tensors
            .insert("stray".into(), Tensor::zeros([2, 2]));
        let report = ckpt.restore(&mut net);
        assert_eq!(report.missing, vec!["a.bias".to_string()]);
        assert_eq!(report.unused, vec!["stray".to_string()]);
        assert!(!report.is_exact());
        assert!(ckpt.restore_strict(&mut net).is_err());
    }

    #[test]
    fn masks_roundtrip_and_reinstall() {
        let mut net = demo_net(6);
        // Install a pruning mask on the conv weight.
        net.visit_params(&mut |p| {
            if p.name == "a.weight" {
                let mut m = Tensor::ones(p.value.shape());
                m.data_mut()[0] = 0.0;
                p.set_mask(m);
            }
        });
        let ckpt = Checkpoint::capture(&mut net);
        assert!(ckpt.tensors.contains_key("a.weight.mask"));

        let mut fresh = demo_net(7);
        let report = ckpt.restore(&mut fresh);
        assert!(report.restored.contains(&"a.weight.mask".to_string()));
        let mut mask_ok = false;
        fresh.visit_params(&mut |p| {
            if p.name == "a.weight" {
                let m = p.mask.as_ref().expect("mask not reinstalled");
                mask_ok = m.data()[0] == 0.0 && p.value.data()[0] == 0.0;
            }
        });
        assert!(mask_ok, "restored mask not applied");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut net = demo_net(8);
        let mut ckpt = Checkpoint::capture(&mut net);
        ckpt.tensors
            .insert("a.weight".into(), Tensor::zeros([1, 1, 1, 1, 1]));
        let _ = ckpt.restore(&mut net);
    }

    #[test]
    fn try_restore_reports_mismatch_without_panicking() {
        let mut net = demo_net(9);
        let mut ckpt = Checkpoint::capture(&mut net);
        ckpt.tensors
            .insert("a.weight".into(), Tensor::zeros([1, 1, 1, 1, 1]));
        let report = ckpt.try_restore(&mut net);
        assert_eq!(report.mismatched, vec!["a.weight".to_string()]);
    }

    #[test]
    fn rejects_wrong_magic() {
        let garbage = b"NOTACKPT________";
        assert!(Checkpoint::read_from(&mut &garbage[..]).is_err());
    }

    #[test]
    fn rejects_corruption_via_checksum() {
        let mut net = demo_net(10);
        let ckpt = Checkpoint::capture(&mut net);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        // Flip one payload bit somewhere past the header.
        let idx = buf.len() / 2;
        buf[idx] ^= 0x10;
        let err = Checkpoint::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let mut net = demo_net(11);
        let ckpt = Checkpoint::capture(&mut net);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        for cut in [9, 16, 21, buf.len() / 2, buf.len() - 1] {
            let err = Checkpoint::read_from(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut net = demo_net(12);
        let ckpt = Checkpoint::capture(&mut net);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        buf.push(0);
        assert!(Checkpoint::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn malicious_headers_fail_without_huge_allocation() {
        // A 16-byte file claiming u64::MAX records.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P3DCKPT2");
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Checkpoint::read_from(&mut &buf[..]).is_err());

        // One record whose name claims to be 4 GiB long.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P3DCKPT2");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Checkpoint::read_from(&mut &buf[..]).is_err());

        // One record whose dims multiply to ~2^64 elements.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P3DCKPT2");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'w');
        buf.extend_from_slice(&4u32.to_le_bytes());
        for _ in 0..4 {
            buf.extend_from_slice(&(u16::MAX as u64).to_le_bytes());
        }
        assert!(Checkpoint::read_from(&mut &buf[..]).is_err());

        // Zero-sized dimension (would panic Shape::new if trusted).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P3DCKPT2");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'w');
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(Checkpoint::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let mut net = demo_net(13);
        let ckpt = Checkpoint::capture(&mut net);
        let dir = std::env::temp_dir().join("p3d_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        ckpt.save(&path).unwrap();
        // The temp sibling must not survive a successful save.
        assert!(!tmp_sibling(&path).exists(), "stale .tmp left behind");
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.num_scalars(), ckpt.num_scalars());
        // Overwriting an existing checkpoint also works atomically.
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
