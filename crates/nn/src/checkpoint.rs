//! Checkpointing: saving and restoring network parameters and state.
//!
//! The format is a simple self-describing binary: a magic header, then
//! length-prefixed `(name, shape, f32 data)` records for every parameter
//! and exported state tensor. No external serialisation crate is needed
//! for the hot path, and files are byte-identical across platforms
//! (little-endian).

use crate::layer::Layer;
use p3d_tensor::{Shape, Tensor};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"P3DCKPT1";

/// A named collection of tensors: parameters plus exported state
/// (batch-norm running statistics).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Tensors by unique name.
    pub tensors: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Captures every parameter value and exported state tensor of a
    /// network.
    pub fn capture(network: &mut dyn Layer) -> Self {
        let mut tensors = BTreeMap::new();
        network.visit_params(&mut |p| {
            tensors.insert(p.name.clone(), p.value.clone());
        });
        network.export_state(&mut |name, t| {
            tensors.insert(name.to_string(), t.clone());
        });
        Checkpoint { tensors }
    }

    /// Restores parameter values *and* exported state (batch-norm
    /// running statistics) into a network built with the same
    /// architecture and naming. Returns the number of parameters
    /// restored (state tensors are restored via
    /// [`Layer::import_state`] and not counted).
    ///
    /// # Panics
    ///
    /// Panics if a stored tensor exists for a parameter but with a
    /// different shape.
    pub fn restore(&self, network: &mut dyn Layer) -> usize {
        let mut restored = 0usize;
        network.visit_params(&mut |p| {
            if let Some(t) = self.tensors.get(&p.name) {
                assert_eq!(
                    t.shape(),
                    p.value.shape(),
                    "checkpoint shape mismatch for {}",
                    p.name
                );
                p.value = t.clone();
                restored += 1;
            }
        });
        network.import_state(&mut |name| self.tensors.get(name).cloned());
        restored
    }

    /// Serialises to any writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.tensors.len() as u64).to_le_bytes())?;
        for (name, t) in &self.tensors {
            let name_bytes = name.as_bytes();
            w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
            w.write_all(name_bytes)?;
            let shape = t.shape();
            let dims = shape.dims();
            w.write_all(&(dims.len() as u32).to_le_bytes())?;
            for &d in dims {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for &x in t.data() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialises from any reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a wrong magic header or malformed
    /// records.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a p3d checkpoint",
            ));
        }
        let mut u64buf = [0u8; 8];
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf);
        let mut tensors = BTreeMap::new();
        for _ in 0..count {
            r.read_exact(&mut u32buf)?;
            let name_len = u32::from_le_bytes(u32buf) as usize;
            let mut name_bytes = vec![0u8; name_len];
            r.read_exact(&mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            r.read_exact(&mut u32buf)?;
            let rank = u32::from_le_bytes(u32buf) as usize;
            if rank > p3d_tensor::shape::MAX_RANK {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "rank too large"));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                r.read_exact(&mut u64buf)?;
                dims.push(u64::from_le_bytes(u64buf) as usize);
            }
            let shape = Shape::new(&dims);
            let mut data = vec![0f32; shape.len()];
            for x in &mut data {
                r.read_exact(&mut u32buf)?;
                *x = f32::from_le_bytes(u32buf);
            }
            tensors.insert(name, Tensor::from_vec(shape, data));
        }
        Ok(Checkpoint { tensors })
    }

    /// Saves to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Checkpoint::read_from(&mut f)
    }

    /// Total number of scalars stored.
    pub fn num_scalars(&self) -> usize {
        self.tensors.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Sequential;
    use crate::conv3d::Conv3d;
    use crate::layer::Mode;
    use p3d_tensor::TensorRng;

    fn demo_net(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        Sequential::new()
            .push(Conv3d::new("a", 3, 2, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng))
            .push(crate::batchnorm::BatchNorm3d::new("bn0", 3))
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut net = demo_net(1);
        // Run a training step so BN stats are non-default.
        let mut rng = TensorRng::seed(2);
        let x = rng.uniform_tensor([2, 2, 2, 4, 4], -1.0, 1.0);
        let _ = net.forward(&x, Mode::Train);
        let ckpt = Checkpoint::capture(&mut net);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back, ckpt);
        assert!(back.tensors.contains_key("a.weight"));
        assert!(back.tensors.contains_key("bn0.running_mean"));
    }

    #[test]
    fn restore_into_fresh_network() {
        let mut net = demo_net(3);
        let ckpt = Checkpoint::capture(&mut net);
        let mut fresh = demo_net(4);
        // Different seed -> different weights before restore.
        assert_ne!(
            Checkpoint::capture(&mut fresh).tensors["a.weight"],
            ckpt.tensors["a.weight"]
        );
        let restored = fresh.restore_from(&ckpt);
        assert_eq!(restored, 4); // weight, bias, gamma, beta
        assert_eq!(
            Checkpoint::capture(&mut fresh).tensors["a.weight"],
            ckpt.tensors["a.weight"]
        );
    }

    #[test]
    fn rejects_wrong_magic() {
        let garbage = b"NOTACKPT________";
        assert!(Checkpoint::read_from(&mut &garbage[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut net = demo_net(5);
        let mut ckpt = Checkpoint::capture(&mut net);
        ckpt.tensors
            .insert("a.weight".into(), Tensor::zeros([1, 1, 1, 1, 1]));
        let _ = ckpt.restore(&mut net);
    }

    #[test]
    fn file_roundtrip() {
        let mut net = demo_net(6);
        let ckpt = Checkpoint::capture(&mut net);
        let dir = std::env::temp_dir().join("p3d_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.num_scalars(), ckpt.num_scalars());
        let _ = std::fs::remove_file(path);
    }

    /// Convenience used in the tests above.
    trait RestoreExt {
        fn restore_from(&mut self, ckpt: &Checkpoint) -> usize;
    }
    impl RestoreExt for Sequential {
        fn restore_from(&mut self, ckpt: &Checkpoint) -> usize {
            ckpt.restore(self)
        }
    }
}
