//! Layer containers: sequential chains and residual blocks.

use crate::arena::{BufId, EvalArena};
use crate::layer::{Layer, Mode, Param};
use p3d_tensor::Tensor;

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, builder-style.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the chain holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Sequential::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn export_state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        for layer in &self.layers {
            layer.export_state(f);
        }
    }

    fn import_state(&mut self, get: &mut dyn FnMut(&str, &p3d_tensor::Shape) -> Option<Tensor>) {
        for layer in &mut self.layers {
            layer.import_state(get);
        }
    }

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        let mut cur = input;
        for layer in &mut self.layers {
            cur = layer.eval_into(arena, cur);
            // Numeric guardrail: catch NaN/Inf the layer that produced
            // it, not three layers later in the logits. Free when
            // sentinels are disabled (release default); the panic is
            // caught and classified by the serving supervisor.
            crate::sentinel::check_finite(arena.buf(cur), || layer.describe());
        }
        cur
    }

    fn install_block_patterns(
        &mut self,
        get: &mut dyn FnMut(&str) -> Option<p3d_tensor::BlockPattern>,
    ) {
        for layer in &mut self.layers {
            layer.install_block_patterns(get);
        }
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("sequential[{}]", parts.join(", "))
    }
}

/// A residual block: `y = relu(main(x) + shortcut(x))`.
///
/// The shortcut is the identity when `None` (same-shape blocks) or a
/// projection chain (the paper's "shortcut with 2 layers": a strided
/// `1x1x1` convolution plus batch norm) when the block changes resolution
/// or width. The trailing ReLU is built in, matching R(2+1)D.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Creates a residual block with an identity shortcut.
    pub fn identity(main: Sequential) -> Self {
        ResidualBlock {
            main,
            shortcut: None,
            relu_mask: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn projected(main: Sequential, shortcut: Sequential) -> Self {
        ResidualBlock {
            main,
            shortcut: Some(shortcut),
            relu_mask: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(input, mode),
            None => input.clone(),
        };
        assert_eq!(
            main_out.shape(),
            short_out.shape(),
            "residual add shape mismatch: main {} vs shortcut {}",
            main_out.shape(),
            short_out.shape()
        );
        let sum = &main_out + &short_out;
        // Only Train refreshes the mask; Eval must not clobber a pending
        // backward's cached state.
        if mode == Mode::Train {
            self.relu_mask = Some(sum.data().iter().map(|&x| x > 0.0).collect());
        }
        sum.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .relu_mask
            .as_ref()
            .expect("residual backward called before forward(Train)");
        let gated = Tensor::from_vec(
            grad_out.shape(),
            grad_out
                .data()
                .iter()
                .zip(mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        );
        let g_main = self.main.backward(&gated);
        let g_short = match &mut self.shortcut {
            Some(s) => s.backward(&gated),
            None => gated,
        };
        &g_main + &g_short
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn export_state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.main.export_state(f);
        if let Some(s) = &self.shortcut {
            s.export_state(f);
        }
    }

    fn import_state(&mut self, get: &mut dyn FnMut(&str, &p3d_tensor::Shape) -> Option<Tensor>) {
        self.main.import_state(get);
        if let Some(s) = &mut self.shortcut {
            s.import_state(get);
        }
    }

    fn install_block_patterns(
        &mut self,
        get: &mut dyn FnMut(&str) -> Option<p3d_tensor::BlockPattern>,
    ) {
        self.main.install_block_patterns(get);
        if let Some(s) = &mut self.shortcut {
            s.install_block_patterns(get);
        }
    }

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        // Keep a copy of the input for the shortcut path; `main` may
        // consume (release or mutate) the original buffer.
        let saved = arena.duplicate(input);
        let main_out = self.main.eval_into(arena, input);
        let short_out = match &mut self.shortcut {
            Some(s) => s.eval_into(arena, saved),
            None => saved,
        };
        assert_eq!(
            arena.shape(main_out),
            arena.shape(short_out),
            "residual add shape mismatch: main {} vs shortcut {}",
            arena.shape(main_out),
            arena.shape(short_out)
        );
        {
            // `(m + s).max(0.0)` element-wise matches `&main + &short`
            // followed by `map(|x| x.max(0.0))` in `forward`.
            let (s, m) = arena.pair(short_out, main_out);
            for (mv, &sv) in m.iter_mut().zip(s.iter()) {
                *mv = (*mv + sv).max(0.0);
            }
        }
        arena.release(short_out);
        main_out
    }

    fn describe(&self) -> String {
        match &self.shortcut {
            Some(s) => format!(
                "residual(main: {}, shortcut: {})",
                self.main.describe(),
                s.describe()
            ),
            None => format!("residual(main: {}, identity)", self.main.describe()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv3d::Conv3d;
    use p3d_tensor::TensorRng;

    #[test]
    fn sequential_composes() {
        let mut rng = TensorRng::seed(1);
        let mut seq = Sequential::new()
            .push(Conv3d::new("a", 2, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), false, &mut rng))
            .push(Relu::new());
        let x = rng.uniform_tensor([1, 1, 2, 2, 2], -1.0, 1.0);
        let y = seq.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2, 2]);
        assert!(y.min() >= 0.0);
        assert_eq!(seq.len(), 2);
    }

    #[test]
    fn identity_residual_doubles_positive_input() {
        // main = identity conv (weight 1), so out = relu(x + x) = 2x for x>0.
        let mut rng = TensorRng::seed(2);
        let mut conv = Conv3d::new("i", 1, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), false, &mut rng);
        conv.weight.value.fill(1.0);
        let mut block = ResidualBlock::identity(Sequential::new().push(conv));
        let x = Tensor::full([1, 1, 1, 2, 2], 3.0);
        let y = block.forward(&x, Mode::Eval);
        assert!(y.allclose(&Tensor::full([1, 1, 1, 2, 2], 6.0), 1e-6));
    }

    #[test]
    fn residual_backward_sums_paths() {
        let mut rng = TensorRng::seed(3);
        let mut conv = Conv3d::new("i", 1, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), false, &mut rng);
        conv.weight.value.fill(2.0);
        let mut block = ResidualBlock::identity(Sequential::new().push(conv));
        let x = Tensor::full([1, 1, 1, 1, 1], 1.0);
        let _ = block.forward(&x, Mode::Train); // out = relu(2 + 1) = 3
        let g = block.backward(&Tensor::full([1, 1, 1, 1, 1], 1.0));
        // d out / d x = w + 1 = 3.
        assert!((g.data()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shortcut_panics() {
        let mut rng = TensorRng::seed(4);
        let conv = Conv3d::new("m", 2, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), false, &mut rng);
        let mut block = ResidualBlock::identity(Sequential::new().push(conv));
        let x = Tensor::ones([1, 1, 1, 1, 1]);
        let _ = block.forward(&x, Mode::Eval);
    }
}
