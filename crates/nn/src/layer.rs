//! The layer abstraction: parameters, forward/backward, and parameter
//! visitation.

use crate::arena::{BufId, EvalArena};
use p3d_tensor::{BlockPattern, Tensor};
use serde::{Deserialize, Serialize};

/// Whether a forward pass is part of training or evaluation.
///
/// Batch normalisation uses batch statistics in [`Mode::Train`] and running
/// statistics in [`Mode::Eval`]; other layers ignore the mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: batch statistics, caches saved for backward.
    Train,
    /// Inference: running statistics, no gradient bookkeeping required.
    Eval,
}

/// The role a parameter tensor plays in its layer.
///
/// The ADMM pruner targets [`ParamKind::ConvWeight`] parameters only, as in
/// the paper ("our weight pruning focuses on the CONV layers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// A convolution weight tensor `[M, N, Kd, Kr, Kc]`.
    ConvWeight,
    /// A fully-connected weight matrix `[out, in]`.
    LinearWeight,
    /// A bias vector.
    Bias,
    /// Batch-norm scale.
    BnGamma,
    /// Batch-norm shift.
    BnBeta,
}

/// A trainable parameter: value, gradient accumulator, and an optional
/// binary retraining mask.
///
/// When a mask is installed (after hard pruning), [`Param::apply_mask`]
/// zeroes both the masked weights and their gradients so that masked
/// retraining — the paper's final step — never resurrects pruned weights.
#[derive(Clone, Debug)]
pub struct Param {
    /// Stable, human-readable identifier, e.g. `"conv2_1.spatial.weight"`.
    pub name: String,
    /// What the parameter is (conv weight, bias, ...).
    pub kind: ParamKind,
    /// Current value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value`, accumulated by `backward`.
    pub grad: Tensor,
    /// Optional 0/1 mask; `Some` only during masked retraining.
    pub mask: Option<Tensor>,
}

impl Param {
    /// Creates a parameter with a zeroed gradient and no mask.
    pub fn new(name: impl Into<String>, kind: ParamKind, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            name: name.into(),
            kind,
            value,
            grad,
            mask: None,
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Installs a 0/1 mask and immediately applies it to the value.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the value shape.
    pub fn set_mask(&mut self, mask: Tensor) {
        assert_eq!(
            mask.shape(),
            self.value.shape(),
            "mask shape {} does not match param {} shape {}",
            mask.shape(),
            self.name,
            self.value.shape()
        );
        self.value.zip_inplace(&mask, |v, m| v * m);
        self.mask = Some(mask);
    }

    /// Removes the mask (weights stay as they are).
    pub fn clear_mask(&mut self) {
        self.mask = None;
    }

    /// Re-applies the mask to value and gradient, if one is installed.
    pub fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            self.value.zip_inplace(mask, |v, m| v * m);
            self.grad.zip_inplace(mask, |g, m| g * m);
        }
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network component.
///
/// Layers own their parameters and activation caches. `forward` must be
/// called before `backward`; `backward` consumes the cached activations,
/// accumulates parameter gradients, and returns the gradient with respect
/// to the layer input.
///
/// `Send` is a supertrait so whole networks can move between (or be
/// replicated across) inference worker threads; layer state is plain
/// owned data, so every implementation satisfies it automatically.
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every parameter in a deterministic order.
    ///
    /// The default implementation visits nothing (parameter-free layers).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Exports non-parameter state needed to reproduce inference outside
    /// this stack (batch-norm running statistics). Keys must be unique
    /// across the network; the default exports nothing.
    fn export_state(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    /// Imports non-parameter state previously produced by
    /// [`Layer::export_state`]: each stateful layer asks `get` for its
    /// keys — passing the shape it expects, so the provider can refuse
    /// (and report, rather than panic on) a mismatched tensor — and
    /// installs whatever is returned. The default imports nothing.
    fn import_state(
        &mut self,
        _get: &mut dyn FnMut(&str, &p3d_tensor::Shape) -> Option<Tensor>,
    ) {
    }

    /// Evaluation-mode forward through a preallocated buffer arena: reads
    /// the activation in `input`, writes the layer output into an arena
    /// buffer, and returns its id. The input buffer is released (or
    /// reused in place) — callers must not read it afterwards.
    ///
    /// **Contract:** outputs must be bitwise identical to
    /// `forward(input, Mode::Eval)` — same expressions, same evaluation
    /// order — so the batched inference engine can guarantee equality
    /// with the per-clip sequential path.
    ///
    /// The default implementation falls back to the allocating
    /// [`Layer::forward`] (and records the fact via
    /// [`EvalArena::note_fallback`]), so external `Layer` impls keep
    /// working unchanged; the built-in layers override it with
    /// allocation-free kernels.
    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        arena.note_fallback();
        let x = Tensor::from_vec(arena.shape(input), arena.buf(input).to_vec());
        arena.release(input);
        let y = self.forward(&x, Mode::Eval);
        let out = arena.acquire(y.shape());
        arena.buf_mut(out).copy_from_slice(y.data());
        out
    }

    /// Installs (or clears) block-sparse execution patterns.
    ///
    /// Layers that can execute block-sparsely (currently [`crate::Conv3d`],
    /// whose weight is the *left* GEMM operand) call `get` with each
    /// weight parameter's name; a returned [`BlockPattern`] is compiled
    /// to block-CSR ([`p3d_tensor::BlockSparseWeights`]) and used by
    /// `forward`/`eval_into` from then on, `None` restores the dense
    /// path. Containers forward the call to their children; the default
    /// does nothing.
    ///
    /// **Precondition for bitwise-identical results:** the weights
    /// outside enabled blocks must be exactly zero (true after
    /// [`Param::set_mask`] with a block-derived mask, and kept true by
    /// [`Param::apply_mask`] during masked retraining). The sparse path
    /// then skips exactly the terms the dense kernel's zero-skip would
    /// have skipped, in the same order — the CPU mirror of the
    /// accelerator's lossless block skip.
    fn install_block_patterns(&mut self, _get: &mut dyn FnMut(&str) -> Option<BlockPattern>) {}

    /// A short human-readable description, e.g. `"conv3d(16->32, 1x3x3)"`.
    fn describe(&self) -> String;
}

/// Extension helpers available on every `Layer`.
pub trait LayerExt: Layer {
    /// Collects clones of all parameter values (for checkpointing and
    /// tests).
    fn snapshot_params(&mut self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push((p.name.clone(), p.value.clone())));
        out
    }

    /// Total number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zeroes every parameter gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

impl<L: Layer + ?Sized> LayerExt for L {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_has_zero_grad() {
        let p = Param::new("w", ParamKind::ConvWeight, Tensor::ones([2, 3]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 6);
        assert_eq!(p.name, "w");
    }

    #[test]
    fn set_mask_zeroes_weights() {
        let mut p = Param::new("w", ParamKind::ConvWeight, Tensor::ones([4]));
        p.set_mask(Tensor::from_vec([4], vec![1.0, 0.0, 1.0, 0.0]));
        assert_eq!(p.value.data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn apply_mask_zeroes_grads_too() {
        let mut p = Param::new("w", ParamKind::ConvWeight, Tensor::ones([2]));
        p.set_mask(Tensor::from_vec([2], vec![0.0, 1.0]));
        p.grad = Tensor::from_vec([2], vec![5.0, 5.0]);
        p.apply_mask();
        assert_eq!(p.grad.data(), &[0.0, 5.0]);
        assert_eq!(p.value.data(), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "mask shape")]
    fn mask_shape_checked() {
        let mut p = Param::new("w", ParamKind::ConvWeight, Tensor::ones([2]));
        p.set_mask(Tensor::ones([3]));
    }

    #[test]
    fn clear_mask_keeps_values() {
        let mut p = Param::new("w", ParamKind::ConvWeight, Tensor::ones([2]));
        p.set_mask(Tensor::from_vec([2], vec![0.0, 1.0]));
        p.clear_mask();
        assert!(p.mask.is_none());
        assert_eq!(p.value.data(), &[0.0, 1.0]);
    }
}
