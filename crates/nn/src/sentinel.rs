//! Numeric guardrails for the arena evaluation path.
//!
//! A NaN or Inf produced mid-network (overflowing weights, corrupted
//! input that slipped past admission validation, a future kernel bug)
//! silently propagates to the logits and corrupts the response. The
//! sentinel scans each layer's output buffer for non-finite values
//! during [`crate::Layer::eval_into`] and **panics with a recognisable
//! `"activation sentinel:"` message** the moment one appears — which the
//! serving layer's worker supervision converts into a typed fault (and,
//! after repeated trips, a quarantine) instead of a corrupt result.
//!
//! Cost model: one linear scan per layer per clip. That is cheap
//! relative to a debug-build forward, so the sentinel defaults **on
//! under `debug_assertions`** (every `cargo test` exercises it) and
//! **off in release**, where it is opt-in via
//! [`set_activation_sentinels`] or `P3D_SENTINELS=1` — the serving
//! operator's choice of safety margin, exactly like the accelerator-side
//! saturation guardbands.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state runtime override: 0 = unset (use default), 1 = off, 2 = on.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The prefix every sentinel panic message starts with; supervisors
/// match on it to classify a worker fault as numeric poison.
pub const SENTINEL_PREFIX: &str = "activation sentinel:";

/// Default when no programmatic override is set: `debug_assertions`,
/// or the `P3D_SENTINELS` environment variable (`1`/`true` forces on,
/// `0`/`false` forces off), read once per process.
fn default_enabled() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("P3D_SENTINELS") {
        Ok(v) => matches!(v.trim(), "1" | "true" | "on"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Forces activation sentinels on or off process-wide (`None` restores
/// the default: on under `debug_assertions` or `P3D_SENTINELS=1`).
pub fn set_activation_sentinels(enabled: Option<bool>) {
    OVERRIDE.store(
        match enabled {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::SeqCst,
    );
}

/// Whether the sentinel scan runs right now.
pub fn activation_sentinels_enabled() -> bool {
    match OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => default_enabled(),
    }
}

/// Scans `buf` for non-finite values when sentinels are enabled.
///
/// # Panics
///
/// Panics with a [`SENTINEL_PREFIX`]-tagged message naming the offending
/// layer (via `describe`, only invoked on failure) and the first bad
/// index. The scan itself allocates nothing.
#[inline]
pub fn check_finite(buf: &[f32], describe: impl FnOnce() -> String) {
    if !activation_sentinels_enabled() {
        return;
    }
    // Positional scan so the panic can name the first offending element.
    if let Some(pos) = buf.iter().position(|v| !v.is_finite()) {
        panic!(
            "{SENTINEL_PREFIX} non-finite activation {} at element {pos} after {}",
            buf[pos],
            describe()
        );
    }
}

/// `true` when a panic payload came from [`check_finite`] — lets a
/// supervisor distinguish numeric poison from other worker crashes.
pub fn is_sentinel_message(msg: &str) -> bool {
    msg.starts_with(SENTINEL_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the process-wide override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn override_controls_enablement() {
        let _guard = LOCK.lock().unwrap();
        set_activation_sentinels(Some(true));
        assert!(activation_sentinels_enabled());
        set_activation_sentinels(Some(false));
        assert!(!activation_sentinels_enabled());
        set_activation_sentinels(None);
        // Default: on in debug builds unless the env says otherwise.
        let _ = activation_sentinels_enabled();
    }

    #[test]
    fn finite_buffers_pass() {
        let _guard = LOCK.lock().unwrap();
        set_activation_sentinels(Some(true));
        check_finite(&[0.0, -1.5, f32::MAX], || unreachable!());
        set_activation_sentinels(None);
    }

    #[test]
    fn nan_trips_with_tagged_message() {
        let _guard = LOCK.lock().unwrap();
        set_activation_sentinels(Some(true));
        let r = std::panic::catch_unwind(|| {
            check_finite(&[1.0, f32::NAN], || "conv_x".into());
        });
        set_activation_sentinels(None);
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(is_sentinel_message(msg), "{msg}");
        assert!(msg.contains("conv_x"), "{msg}");
        assert!(msg.contains("element 1"), "{msg}");
    }

    #[test]
    fn inf_trips_and_disabled_does_not() {
        let _guard = LOCK.lock().unwrap();
        set_activation_sentinels(Some(true));
        assert!(std::panic::catch_unwind(|| {
            check_finite(&[f32::INFINITY], || "relu".into());
        })
        .is_err());
        set_activation_sentinels(Some(false));
        check_finite(&[f32::NAN, f32::INFINITY], || unreachable!());
        set_activation_sentinels(None);
    }
}
