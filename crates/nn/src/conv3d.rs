//! 3D convolution layer with im2col-based forward and backward passes.

use crate::arena::{BufId, EvalArena};
use crate::im2col::{col2im, im2col, im2col_into, ConvGeometry};
use crate::layer::{Layer, Mode, Param, ParamKind};
use p3d_tensor::parallel::{parallel_chunk_map, parallel_chunk_map_collect};
use p3d_tensor::{gemm_bs_into, gemm_into, BlockPattern, BlockSparseWeights, Shape, Tensor, TensorRng};

/// A 3D convolution: weights `[M, N, Kd, Kr, Kc]`, optional bias `[M]`.
///
/// This single layer type covers every convolution in the workspace:
/// standard 3D kernels (C3D, `3x3x3`), the spatial half of an R(2+1)D unit
/// (`1xKxK`), the temporal half (`Kx1x1`), and `1x1x1` shortcut
/// projections.
///
/// # Example
///
/// ```
/// use p3d_nn::{Conv3d, Layer, Mode};
/// use p3d_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed(0);
/// let mut conv = Conv3d::new("c", 4, 2, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng);
/// let x = rng.uniform_tensor([1, 2, 2, 8, 8], -1.0, 1.0);
/// let y = conv.forward(&x, Mode::Train);
/// assert_eq!(y.shape().dims(), &[1, 4, 2, 8, 8]);
/// ```
pub struct Conv3d {
    /// Convolution weights, `[M, N, Kd, Kr, Kc]`.
    pub weight: Param,
    /// Optional bias, `[M]`.
    pub bias: Option<Param>,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    pad: (usize, usize, usize),
    cached_input: Option<Tensor>,
    /// Block-CSR compiled weights, present only after
    /// [`Layer::install_block_patterns`] handed this layer a pattern.
    /// Refreshed from the (masked) dense weights at the top of every
    /// forward, so retraining updates are always reflected.
    sparse: Option<BlockSparseWeights>,
}

impl Conv3d {
    /// Creates a Kaiming-initialised convolution.
    ///
    /// `name` prefixes the parameter names (`{name}.weight`,
    /// `{name}.bias`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        out_channels: usize,
        in_channels: usize,
        kernel: (usize, usize, usize),
        stride: (usize, usize, usize),
        pad: (usize, usize, usize),
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        let fan_in = in_channels * kernel.0 * kernel.1 * kernel.2;
        let w = rng.kaiming_normal(
            Shape::d5(out_channels, in_channels, kernel.0, kernel.1, kernel.2),
            fan_in,
        );
        Conv3d {
            weight: Param::new(format!("{name}.weight"), ParamKind::ConvWeight, w),
            bias: bias.then(|| {
                Param::new(
                    format!("{name}.bias"),
                    ParamKind::Bias,
                    Tensor::zeros([out_channels]),
                )
            }),
            kernel,
            stride,
            pad,
            cached_input: None,
            sparse: None,
        }
    }

    /// The compiled block-sparse weights, if a pattern is installed.
    pub fn block_sparse(&self) -> Option<&BlockSparseWeights> {
        self.sparse.as_ref()
    }

    /// Repacks the block-CSR values from the current (masked) weights so
    /// the sparse kernel sees this step's weights. `O(m k)` against the
    /// `O(m k n)` product — negligible, so it runs every forward.
    fn refresh_sparse(&mut self) {
        if let Some(bs) = &mut self.sparse {
            bs.refresh(self.weight.value.data());
        }
    }

    /// Output channels `M`.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Input channels `N`.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Kernel extents `(Kd, Kr, Kc)`.
    pub fn kernel(&self) -> (usize, usize, usize) {
        self.kernel
    }

    /// Strides `(Sd, Sr, Sc)`.
    pub fn stride(&self) -> (usize, usize, usize) {
        self.stride
    }

    /// Padding `(Pd, Pr, Pc)`.
    pub fn pad(&self) -> (usize, usize, usize) {
        self.pad
    }

    fn geometry(&self, input_shape: Shape) -> ConvGeometry {
        assert_eq!(
            input_shape.rank(),
            5,
            "conv3d expects [B, N, D, H, W], got {input_shape}"
        );
        assert_eq!(
            input_shape.dim(1),
            self.in_channels(),
            "conv3d {} expects {} input channels, got {}",
            self.weight.name,
            self.in_channels(),
            input_shape.dim(1)
        );
        ConvGeometry {
            channels: self.in_channels(),
            input: (input_shape.dim(2), input_shape.dim(3), input_shape.dim(4)),
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.refresh_sparse();
        let geom = self.geometry(input.shape());
        let batch = input.shape().dim(0);
        let m = self.out_channels();
        let (od, oh, ow) = geom.output();
        let per_in = input.len() / batch;
        let rows = geom.col_rows();
        let cols_n = geom.col_cols();

        // The weight tensor is row-major [M, N, Kd, Kr, Kc], i.e. already
        // the [M, rows] matrix — used directly, no reshape clone.
        let w = self.weight.value.data();
        let sparse = self.sparse.as_ref();
        let mut out = Tensor::zeros(Shape::d5(batch, m, od, oh, ow));
        let per_out = m * cols_n;
        let bias_data = self.bias.as_ref().map(|b| b.value.data());
        // Batch-parallel: each worker owns one clip's output slice. The
        // inner GEMM detects the nesting and runs serially, so this
        // never oversubscribes (see `p3d_tensor::parallel`).
        parallel_chunk_map(out.data_mut(), per_out, |b, dst| {
            let cols = im2col(&input.data()[b * per_in..(b + 1) * per_in], &geom);
            match sparse {
                // Block-sparse: visit only enabled Tm x Tn blocks. Bitwise
                // identical to the dense kernel on the masked weights.
                Some(bs) => gemm_bs_into(bs, cols.data(), cols_n, dst),
                None => gemm_into(w, m, rows, cols.data(), cols_n, dst),
            }
            if let Some(bd) = bias_data {
                for (ch, &bv) in bd.iter().enumerate() {
                    for x in &mut dst[ch * cols_n..(ch + 1) * cols_n] {
                        *x += bv;
                    }
                }
            }
        });
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("conv3d backward called before forward(Train)");
        let geom = self.geometry(input.shape());
        let batch = input.shape().dim(0);
        let m = self.out_channels();
        let cols_n = geom.col_cols();
        let rows = geom.col_rows();
        assert_eq!(grad_out.len(), batch * m * cols_n, "grad_out shape mismatch");

        let per_in = input.len() / batch;
        let per_out = m * cols_n;
        // Transpose the weight matrix once, outside the per-clip loop —
        // `matmul_tn` would have re-materialised it per clip. Same
        // arithmetic, so per-clip results are unchanged bit for bit.
        let w_t = self
            .weight
            .value
            .reshape(Shape::d2(m, rows))
            .transpose2();
        let mut grad_in = Tensor::zeros(input.shape());
        let want_bias = self.bias.is_some();

        // Batch-parallel: each worker owns one clip's grad_in slice and
        // returns its *local* weight/bias gradient contribution. The
        // per-clip results come back in clip order and are reduced
        // serially below, so the accumulated gradients are bitwise
        // identical for any thread count.
        let locals: Vec<(Tensor, Vec<f32>)> =
            parallel_chunk_map_collect(grad_in.data_mut(), per_in, |b, gin| {
                let cols = im2col(&input.data()[b * per_in..(b + 1) * per_in], &geom);
                let g_mat = Tensor::from_vec(
                    Shape::d2(m, cols_n),
                    grad_out.data()[b * per_out..(b + 1) * per_out].to_vec(),
                );
                // dL/dW (this clip) = gOut x cols^T — the packed `nt`
                // kernel folds the transpose into its B-panel packing.
                let gw = g_mat.matmul_nt(&cols);
                // dL/dIn = W^T x gOut, scattered back through col2im.
                let grad_cols = w_t.matmul(&g_mat);
                col2im(&grad_cols, &geom, gin);
                let gb = if want_bias {
                    (0..m)
                        .map(|ch| g_mat.data()[ch * cols_n..(ch + 1) * cols_n].iter().sum())
                        .collect()
                } else {
                    Vec::new()
                };
                (gw, gb)
            });

        // Deterministic reduction: fixed clip order, independent of how
        // clips were distributed across workers.
        let mut grad_w = Tensor::zeros(Shape::d2(m, rows));
        for (gw, _) in &locals {
            grad_w += gw;
        }
        self.weight
            .grad
            .axpy(1.0, &grad_w.reshape(self.weight.value.shape()));

        if let Some(bias) = &mut self.bias {
            let bg = bias.grad.data_mut();
            for (_, gb) in &locals {
                for (ch, &g) in gb.iter().enumerate() {
                    bg[ch] += g;
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn install_block_patterns(&mut self, get: &mut dyn FnMut(&str) -> Option<BlockPattern>) {
        self.sparse = get(&self.weight.name).and_then(|pat| {
            let rows = self.in_channels() * self.kernel.0 * self.kernel.1 * self.kernel.2;
            assert_eq!(
                (pat.m, pat.k),
                (self.out_channels(), rows),
                "block pattern shape mismatch for {}: pattern {}x{}, weight {}x{}",
                self.weight.name,
                pat.m,
                pat.k,
                self.out_channels(),
                rows
            );
            // A (nearly) fully-enabled pattern skips too little work to
            // pay for block-CSR indirection — run the dense kernel on
            // the masked weights instead (bitwise identical; see
            // `BlockPattern::prefers_dense`).
            if pat.prefers_dense() {
                return None;
            }
            Some(BlockSparseWeights::compile(self.weight.value.data(), &pat))
        });
    }

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        self.refresh_sparse();
        let in_shape = arena.shape(input);
        let geom = self.geometry(in_shape);
        let batch = in_shape.dim(0);
        let m = self.out_channels();
        let (od, oh, ow) = geom.output();
        let per_in = in_shape.len() / batch;
        let rows = geom.col_rows();
        let cols_n = geom.col_cols();
        let per_out = m * cols_n;

        let out = arena.acquire(Shape::d5(batch, m, od, oh, ow));
        arena.ensure_scratch(rows * cols_n);
        // The weight tensor is row-major [M, N, Kd, Kr, Kc], i.e. already
        // the [M, rows] matrix — used directly, exactly as in `forward`.
        let w = self.weight.value.data();
        let sparse = self.sparse.as_ref();
        let bias_data = self.bias.as_ref().map(|b| b.value.data());
        let (src, scratch, dst) = arena.conv_views(input, out, rows * cols_n);
        // Serial over clips: the batched engine parallelises over clips
        // one level up (one worker per clip), and each clip's arithmetic
        // here is identical to `forward`'s per-clip kernel, so outputs
        // are bitwise equal to the allocating path.
        for b in 0..batch {
            im2col_into(&src[b * per_in..(b + 1) * per_in], &geom, scratch);
            let dst_b = &mut dst[b * per_out..(b + 1) * per_out];
            match sparse {
                Some(bs) => gemm_bs_into(bs, scratch, cols_n, dst_b),
                None => gemm_into(w, m, rows, scratch, cols_n, dst_b),
            }
            if let Some(bd) = bias_data {
                for (ch, &bv) in bd.iter().enumerate() {
                    for x in &mut dst_b[ch * cols_n..(ch + 1) * cols_n] {
                        *x += bv;
                    }
                }
            }
        }
        arena.release(input);
        out
    }

    fn describe(&self) -> String {
        format!(
            "conv3d({}->{}, {}x{}x{}, stride {:?}, pad {:?})",
            self.in_channels(),
            self.out_channels(),
            self.kernel.0,
            self.kernel.1,
            self.kernel.2,
            self.stride,
            self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rngseed: u64) -> (Conv3d, TensorRng) {
        let mut rng = TensorRng::seed(rngseed);
        let conv = Conv3d::new("t", 3, 2, (2, 2, 2), (1, 1, 1), (0, 0, 0), true, &mut rng);
        (conv, rng)
    }

    #[test]
    fn forward_shape() {
        let (mut conv, mut rng) = mk(1);
        let x = rng.uniform_tensor([2, 2, 3, 4, 4], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 3, 2, 3, 3]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = TensorRng::seed(2);
        let mut conv = Conv3d::new("id", 1, 1, (1, 1, 1), (1, 1, 1), (0, 0, 0), false, &mut rng);
        conv.weight.value.fill(1.0);
        let x = rng.uniform_tensor([1, 1, 2, 3, 3], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Eval);
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn known_sum_kernel() {
        // All-ones 2x2x2 kernel over an all-ones input sums 8 elements.
        let mut rng = TensorRng::seed(3);
        let mut conv = Conv3d::new("s", 1, 1, (2, 2, 2), (1, 1, 1), (0, 0, 0), false, &mut rng);
        conv.weight.value.fill(1.0);
        let x = Tensor::ones([1, 1, 2, 2, 2]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1, 1]);
        assert!((y.data()[0] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn bias_added_per_channel() {
        let (mut conv, mut rng) = mk(4);
        conv.weight.value.fill(0.0);
        conv.bias.as_mut().unwrap().value =
            Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let x = rng.uniform_tensor([1, 2, 3, 4, 4], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Eval);
        assert!((y.get(&[0, 0, 0, 0, 0]) - 1.0).abs() < 1e-6);
        assert!((y.get(&[0, 1, 1, 1, 1]) - 2.0).abs() < 1e-6);
        assert!((y.get(&[0, 2, 0, 2, 2]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn stride_and_padding_shapes() {
        let mut rng = TensorRng::seed(5);
        // R(2+1)D conv1 spatial: 1x7x7, stride (1,2,2), pad (0,3,3).
        let mut conv =
            Conv3d::new("c1", 4, 3, (1, 7, 7), (1, 2, 2), (0, 3, 3), false, &mut rng);
        let x = rng.uniform_tensor([1, 3, 4, 16, 16], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 4, 4, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let (mut conv, _) = mk(6);
        let _ = conv.backward(&Tensor::zeros([1, 3, 1, 1, 1]));
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        let (mut conv, mut rng) = mk(7);
        let x = rng.uniform_tensor([1, 5, 3, 4, 4], -1.0, 1.0);
        let _ = conv.forward(&x, Mode::Eval);
    }
}
