//! Learning-rate schedules.
//!
//! The paper uses a constant (reduced) learning rate during ADMM training
//! and *warmup + cosine annealing* during masked retraining, following
//! "Bag of Tricks" (He et al., CVPR 2019).

/// A learning-rate schedule mapping an epoch index to a learning rate.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// A fixed learning rate.
    Constant {
        /// The learning rate for every epoch.
        lr: f32,
    },
    /// Multiply the base rate by `gamma` every `step` epochs.
    Step {
        /// Initial rate.
        base_lr: f32,
        /// Epochs between decays.
        step: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Linear warmup for `warmup_epochs`, then cosine annealing to
    /// `min_lr` at `total_epochs`.
    WarmupCosine {
        /// Peak rate reached at the end of warmup.
        base_lr: f32,
        /// Number of warmup epochs (0 disables warmup).
        warmup_epochs: usize,
        /// Total schedule length.
        total_epochs: usize,
        /// Final rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Step {
                base_lr,
                step,
                gamma,
            } => base_lr * gamma.powi((epoch / step.max(1)) as i32),
            LrSchedule::WarmupCosine {
                base_lr,
                warmup_epochs,
                total_epochs,
                min_lr,
            } => {
                if epoch < warmup_epochs {
                    // Linear ramp: epoch 0 starts at base_lr / warmup_epochs
                    // and epoch warmup_epochs-1 reaches base_lr exactly.
                    base_lr * (epoch + 1) as f32 / warmup_epochs as f32
                } else {
                    let t = (epoch - warmup_epochs) as f32
                        / (total_epochs.saturating_sub(warmup_epochs)).max(1) as f32;
                    let t = t.min(1.0);
                    min_lr
                        + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
                }
            }
        }
    }
    /// Encodes the schedule as a 5-lane tensor `[kind, a, b, c, d]` for
    /// storage in a training-state checkpoint:
    ///
    /// * `Constant`     → `[0, lr, 0, 0, 0]`
    /// * `Step`         → `[1, base_lr, step, gamma, 0]`
    /// * `WarmupCosine` → `[2, base_lr, warmup_epochs, total_epochs, min_lr]`
    ///
    /// Epoch counts are exact for values below 2^24 (far beyond any
    /// schedule in this workspace).
    pub fn to_tensor(&self) -> p3d_tensor::Tensor {
        let lanes = match *self {
            LrSchedule::Constant { lr } => [0.0, lr, 0.0, 0.0, 0.0],
            LrSchedule::Step {
                base_lr,
                step,
                gamma,
            } => [1.0, base_lr, step as f32, gamma, 0.0],
            LrSchedule::WarmupCosine {
                base_lr,
                warmup_epochs,
                total_epochs,
                min_lr,
            } => [
                2.0,
                base_lr,
                warmup_epochs as f32,
                total_epochs as f32,
                min_lr,
            ],
        };
        p3d_tensor::Tensor::from_vec([5], lanes.to_vec())
    }

    /// Decodes a schedule stored by [`LrSchedule::to_tensor`]. Returns
    /// `None` for malformed tensors (wrong length, unknown kind, or
    /// non-integral epoch counts).
    pub fn from_tensor(t: &p3d_tensor::Tensor) -> Option<LrSchedule> {
        let d = t.data();
        if d.len() != 5 {
            return None;
        }
        let as_count = |x: f32| -> Option<usize> {
            (x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x < (1u32 << 24) as f32)
                .then_some(x as usize)
        };
        match as_count(d[0])? {
            0 => Some(LrSchedule::Constant { lr: d[1] }),
            1 => Some(LrSchedule::Step {
                base_lr: d[1],
                step: as_count(d[2])?,
                gamma: d[3],
            }),
            2 => Some(LrSchedule::WarmupCosine {
                base_lr: d[1],
                warmup_epochs: as_count(d[2])?,
                total_epochs: as_count(d[3])?,
                min_lr: d[4],
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip_all_variants() {
        for s in [
            LrSchedule::Constant { lr: 5e-4 },
            LrSchedule::Step {
                base_lr: 0.1,
                step: 10,
                gamma: 0.1,
            },
            LrSchedule::WarmupCosine {
                base_lr: 0.02,
                warmup_epochs: 2,
                total_epochs: 25,
                min_lr: 1e-5,
            },
        ] {
            assert_eq!(LrSchedule::from_tensor(&s.to_tensor()), Some(s));
        }
        // Malformed inputs decode to None, never panic.
        let bad = p3d_tensor::Tensor::from_vec([5], vec![9.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(LrSchedule::from_tensor(&bad), None);
        let nan = p3d_tensor::Tensor::from_vec([5], vec![1.0, 0.1, f32::NAN, 0.5, 0.0]);
        assert_eq!(LrSchedule::from_tensor(&nan), None);
    }

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 5e-4 };
        assert_eq!(s.lr_at(0), 5e-4);
        assert_eq!(s.lr_at(100), 5e-4);
    }

    #[test]
    fn step_decays() {
        let s = LrSchedule::Step {
            base_lr: 1.0,
            step: 10,
            gamma: 0.1,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::WarmupCosine {
            base_lr: 1.0,
            warmup_epochs: 4,
            total_epochs: 20,
            min_lr: 0.0,
        };
        assert!((s.lr_at(0) - 0.25).abs() < 1e-6);
        assert!((s.lr_at(1) - 0.5).abs() < 1e-6);
        assert!((s.lr_at(3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_lands_on_min() {
        let s = LrSchedule::WarmupCosine {
            base_lr: 1.0,
            warmup_epochs: 0,
            total_epochs: 10,
            min_lr: 0.01,
        };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(10) - 0.01).abs() < 1e-6);
        // Midpoint is halfway between base and min.
        assert!((s.lr_at(5) - 0.505).abs() < 1e-3);
        // Beyond the horizon it stays at min.
        assert!((s.lr_at(50) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn cosine_monotone_after_warmup() {
        let s = LrSchedule::WarmupCosine {
            base_lr: 0.1,
            warmup_epochs: 2,
            total_epochs: 30,
            min_lr: 0.0,
        };
        let mut prev = s.lr_at(2);
        for e in 3..30 {
            let cur = s.lr_at(e);
            assert!(cur <= prev + 1e-9, "not monotone at epoch {e}");
            prev = cur;
        }
    }
}
