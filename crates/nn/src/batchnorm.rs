//! Batch normalisation over 3D feature volumes.

use crate::arena::{BufId, EvalArena};
use crate::layer::{Layer, Mode, Param, ParamKind};
use p3d_tensor::parallel::{parallel_chunk_map, parallel_zip_chunk_map};
use p3d_tensor::Tensor;

/// Batch normalisation for `[B, C, D, H, W]` activations, normalising per
/// channel over the `(B, D, H, W)` axes.
///
/// Training mode uses batch statistics and updates exponential running
/// averages; evaluation mode uses the running averages — the statistics
/// the FPGA post-processing unit folds into a per-channel scale and shift.
pub struct BatchNorm3d {
    /// Per-channel scale `gamma`.
    pub gamma: Param,
    /// Per-channel shift `beta`.
    pub beta: Param,
    /// Running mean, updated in training mode.
    pub running_mean: Tensor,
    /// Running variance, updated in training mode.
    pub running_var: Tensor,
    name: String,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
    input_shape: p3d_tensor::Shape,
}

impl BatchNorm3d {
    /// Creates a batch-norm layer for `channels` feature channels with
    /// standard defaults (`momentum = 0.1`, `eps = 1e-5`).
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm3d {
            gamma: Param::new(
                format!("{name}.gamma"),
                ParamKind::BnGamma,
                Tensor::ones([channels]),
            ),
            beta: Param::new(
                format!("{name}.beta"),
                ParamKind::BnBeta,
                Tensor::zeros([channels]),
            ),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            name: name.to_string(),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// The per-channel `(scale, shift)` pair the FPGA post-processing unit
    /// applies at inference: `y = scale * x + shift`, where
    /// `scale = gamma / sqrt(var + eps)` and
    /// `shift = beta - scale * mean` (using running statistics).
    pub fn folded_scale_shift(&self) -> (Vec<f32>, Vec<f32>) {
        let c = self.channels();
        let mut scale = Vec::with_capacity(c);
        let mut shift = Vec::with_capacity(c);
        for ch in 0..c {
            let s = self.gamma.value.data()[ch]
                / (self.running_var.data()[ch] + self.eps).sqrt();
            scale.push(s);
            shift.push(self.beta.value.data()[ch] - s * self.running_mean.data()[ch]);
        }
        (scale, shift)
    }

    fn stats_shape(input: &Tensor) -> (usize, usize, usize) {
        Self::stats_shape_of(input.shape())
    }

    fn stats_shape_of(s: p3d_tensor::Shape) -> (usize, usize, usize) {
        assert_eq!(s.rank(), 5, "batchnorm expects [B, C, D, H, W], got {s}");
        let (b, c) = (s.dim(0), s.dim(1));
        let spatial = s.dim(2) * s.dim(3) * s.dim(4);
        (b, c, spatial)
    }
}

impl Layer for BatchNorm3d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (b, c, spatial) = Self::stats_shape(input);
        assert_eq!(c, self.channels(), "batchnorm channel mismatch");
        let count = (b * spatial) as f32;
        let data = input.data();

        let (mean, var) = match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for bi in 0..b {
                    for ch in 0..c {
                        let base = (bi * c + ch) * spatial;
                        let slice = &data[base..base + spatial];
                        mean[ch] += slice.iter().sum::<f32>();
                    }
                }
                for m in &mut mean {
                    *m /= count;
                }
                for bi in 0..b {
                    for ch in 0..c {
                        let base = (bi * c + ch) * spatial;
                        let m = mean[ch];
                        var[ch] += data[base..base + spatial]
                            .iter()
                            .map(|&x| (x - m) * (x - m))
                            .sum::<f32>();
                    }
                }
                for v in &mut var {
                    *v /= count;
                }
                for ch in 0..c {
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[ch];
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var[ch];
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            ),
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut normalized = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        {
            let gamma = self.gamma.value.data();
            let beta = self.beta.value.data();
            // Parallel over [batch x channel] planes; `normalized` and
            // `out` planes advance in lockstep under one worker each.
            parallel_zip_chunk_map(
                normalized.data_mut(),
                spatial.max(1),
                out.data_mut(),
                spatial.max(1),
                |plane, nd, od| {
                    let ch = plane % c;
                    let base = plane * spatial;
                    let (m, is) = (mean[ch], inv_std[ch]);
                    let (g, be) = (gamma[ch], beta[ch]);
                    for (i, (n_out, o_out)) in nd.iter_mut().zip(od.iter_mut()).enumerate() {
                        let n = (data[base + i] - m) * is;
                        *n_out = n;
                        *o_out = g * n + be;
                    }
                },
            );
        }
        if mode == Mode::Train {
            self.cache = Some(BnCache {
                normalized,
                inv_std,
                input_shape: input.shape(),
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("batchnorm backward called before forward(Train)");
        let s = cache.input_shape;
        assert_eq!(grad_out.shape(), s, "batchnorm grad shape mismatch");
        let (b, c) = (s.dim(0), s.dim(1));
        let spatial = s.dim(2) * s.dim(3) * s.dim(4);
        let count = (b * spatial) as f32;
        let g_out = grad_out.data();
        let norm = cache.normalized.data();

        // Per-channel reductions: sum(g) and sum(g * xhat).
        let mut sum_g = vec![0.0f32; c];
        let mut sum_gx = vec![0.0f32; c];
        for bi in 0..b {
            for ch in 0..c {
                let base = (bi * c + ch) * spatial;
                for i in base..base + spatial {
                    sum_g[ch] += g_out[i];
                    sum_gx[ch] += g_out[i] * norm[i];
                }
            }
        }
        for ch in 0..c {
            self.gamma.grad.data_mut()[ch] += sum_gx[ch];
            self.beta.grad.data_mut()[ch] += sum_g[ch];
        }

        // dL/dx = gamma * inv_std * (g - mean(g) - xhat * mean(g*xhat))
        let mut grad_in = Tensor::zeros(s);
        let gamma = self.gamma.value.data();
        parallel_chunk_map(grad_in.data_mut(), spatial.max(1), |plane, gi| {
            let ch = plane % c;
            let base = plane * spatial;
            let g = gamma[ch];
            let is = cache.inv_std[ch];
            let mg = sum_g[ch] / count;
            let mgx = sum_gx[ch] / count;
            for (i, x) in gi.iter_mut().enumerate() {
                *x = g * is * (g_out[base + i] - mg - norm[base + i] * mgx);
            }
        });
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        // In place, per channel, with running statistics — the same
        // scalar expressions as the Eval branch of `forward`
        // (`n = (x - mean) * inv_std; y = gamma * n + beta`), so outputs
        // are bitwise identical while touching no heap.
        let shape = arena.shape(input);
        let (b, c, spatial) = Self::stats_shape_of(shape);
        assert_eq!(c, self.channels(), "batchnorm channel mismatch");
        let rm = self.running_mean.data();
        let rv = self.running_var.data();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        let eps = self.eps;
        let data = arena.buf_mut(input);
        for plane in 0..b * c {
            let ch = plane % c;
            let m = rm[ch];
            let is = 1.0 / (rv[ch] + eps).sqrt();
            let (g, be) = (gamma[ch], beta[ch]);
            for x in &mut data[plane * spatial..(plane + 1) * spatial] {
                let n = (*x - m) * is;
                *x = g * n + be;
            }
        }
        input
    }

    fn export_state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f(&format!("{}.running_mean", self.name), &self.running_mean);
        f(&format!("{}.running_var", self.name), &self.running_var);
    }

    fn import_state(&mut self, get: &mut dyn FnMut(&str, &p3d_tensor::Shape) -> Option<Tensor>) {
        if let Some(rm) = get(&format!("{}.running_mean", self.name), &self.running_mean.shape()) {
            self.running_mean = rm;
        }
        if let Some(rv) = get(&format!("{}.running_var", self.name), &self.running_var.shape()) {
            self.running_var = rv;
        }
    }

    fn describe(&self) -> String {
        format!("batchnorm3d({})", self.channels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_tensor::TensorRng;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm3d::new("bn", 2);
        let mut rng = TensorRng::seed(1);
        let x = rng.normal_tensor([4, 2, 2, 3, 3], 3.0).map(|v| v + 5.0);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ~0 and var ~1 after normalisation (gamma=1, beta=0).
        let spatial = 2 * 3 * 3;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 2 + ch) * spatial;
                vals.extend_from_slice(&y.data()[base..base + spatial]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm3d::new("bn", 1);
        bn.running_mean = Tensor::from_vec([1], vec![2.0]);
        bn.running_var = Tensor::from_vec([1], vec![4.0]);
        let x = Tensor::full([1, 1, 1, 1, 2], 4.0);
        let y = bn.forward(&x, Mode::Eval);
        // (4 - 2) / sqrt(4) = 1.
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn running_stats_update_toward_batch() {
        let mut bn = BatchNorm3d::new("bn", 1);
        let x = Tensor::full([2, 1, 1, 1, 4], 10.0);
        let _ = bn.forward(&x, Mode::Train);
        // momentum 0.1: running mean moves from 0 toward 10 by 1.0.
        assert!((bn.running_mean.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn folded_scale_shift_matches_eval() {
        let mut bn = BatchNorm3d::new("bn", 2);
        bn.running_mean = Tensor::from_vec([2], vec![1.0, -1.0]);
        bn.running_var = Tensor::from_vec([2], vec![0.25, 4.0]);
        bn.gamma.value = Tensor::from_vec([2], vec![2.0, 0.5]);
        bn.beta.value = Tensor::from_vec([2], vec![0.1, -0.2]);
        let (scale, shift) = bn.folded_scale_shift();
        let mut x = Tensor::zeros([1, 2, 1, 1, 1]);
        x.set(&[0, 0, 0, 0, 0], 3.0);
        x.set(&[0, 1, 0, 0, 0], -2.0);
        let y = bn.forward(&x, Mode::Eval);
        assert!((y.get(&[0, 0, 0, 0, 0]) - (scale[0] * 3.0 + shift[0])).abs() < 1e-4);
        assert!((y.get(&[0, 1, 0, 0, 0]) - (scale[1] * -2.0 + shift[1])).abs() < 1e-4);
    }

    #[test]
    fn gamma_beta_visited() {
        let mut bn = BatchNorm3d::new("bn", 3);
        let mut names = Vec::new();
        bn.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["bn.gamma", "bn.beta"]);
    }
}
