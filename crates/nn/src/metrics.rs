//! Training and evaluation metrics.

use p3d_tensor::Tensor;

/// Top-1 accuracy of logits `[B, K]` against labels.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let s = logits.shape();
    assert_eq!(s.rank(), 2, "accuracy expects [B, K] logits");
    let (b, k) = (s.dim(0), s.dim(1));
    assert_eq!(labels.len(), b, "label count mismatch");
    let mut correct = 0usize;
    for bi in 0..b {
        let row = &logits.data()[bi * k..(bi + 1) * k];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == labels[bi] {
            correct += 1;
        }
    }
    correct as f32 / b as f32
}

/// A running average, used for per-epoch loss reporting.
#[derive(Clone, Debug, Default)]
pub struct AverageMeter {
    sum: f64,
    count: usize,
}

impl AverageMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        AverageMeter::default()
    }

    /// Adds `value` with weight `n` (e.g. batch size).
    pub fn update(&mut self, value: f32, n: usize) {
        self.sum += value as f64 * n as f64;
        self.count += n;
    }

    /// The running mean (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Total observations.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// A `K x K` confusion matrix: `rows = true class`, `cols = predicted`.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// A zeroed `K x K` matrix.
    pub fn new(num_classes: usize) -> Self {
        ConfusionMatrix {
            k: num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "class out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Records a batch of logits.
    pub fn record_logits(&mut self, logits: &Tensor, labels: &[usize]) {
        let (b, k) = (logits.shape().dim(0), logits.shape().dim(1));
        assert_eq!(k, self.k, "class count mismatch");
        for bi in 0..b {
            let row = &logits.data()[bi * k..(bi + 1) * k];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.record(labels[bi], pred);
        }
    }

    /// Count for `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.k + predicted]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.k).map(|i| self.get(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (`NaN`-free: classes with no samples report 0).
    pub fn per_class_recall(&self) -> Vec<f32> {
        (0..self.k)
            .map(|t| {
                let row: usize = (0..self.k).map(|p| self.get(t, p)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.get(t, t) as f32 / row as f32
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct() {
        let logits = Tensor::from_vec([3, 2], vec![1., 0., 0., 1., 2., 3.]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn meter_weighted_mean() {
        let mut m = AverageMeter::new();
        m.update(1.0, 1);
        m.update(4.0, 3);
        assert!((m.mean() - 3.25).abs() < 1e-6);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn empty_meter_is_zero() {
        assert_eq!(AverageMeter::new().mean(), 0.0);
    }

    #[test]
    fn confusion_matrix_diag() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(1, 1);
        cm.record(1, 2);
        cm.record(2, 2);
        assert_eq!(cm.get(1, 2), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-6);
        let recall = cm.per_class_recall();
        assert!((recall[1] - 0.5).abs() < 1e-6);
        assert_eq!(recall[0], 1.0);
    }
}
