//! Softmax cross-entropy loss with optional label smoothing.

use p3d_tensor::Tensor;

/// Softmax cross-entropy over logits `[B, num_classes]`.
///
/// Label smoothing (`epsilon > 0`) replaces the one-hot target with
/// `(1 - eps)` on the true class and `eps / K` elsewhere — the trick the
/// paper borrows from "Bag of Tricks" for ADMM training.
#[derive(Clone, Copy, Debug)]
pub struct CrossEntropyLoss {
    /// Label-smoothing factor in `[0, 1)`. Zero disables smoothing.
    pub label_smoothing: f32,
}

impl CrossEntropyLoss {
    /// Plain cross-entropy.
    pub fn new() -> Self {
        CrossEntropyLoss {
            label_smoothing: 0.0,
        }
    }

    /// Cross-entropy with label smoothing `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= epsilon < 1`.
    pub fn with_smoothing(epsilon: f32) -> Self {
        assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1)");
        CrossEntropyLoss {
            label_smoothing: epsilon,
        }
    }

    /// Computes the mean loss and the gradient w.r.t. the logits.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[B, K]` or any label is out of range.
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let s = logits.shape();
        assert_eq!(s.rank(), 2, "loss expects [B, K] logits, got {s}");
        let (b, k) = (s.dim(0), s.dim(1));
        assert_eq!(labels.len(), b, "label count mismatch");
        assert!(
            labels.iter().all(|&l| l < k),
            "label out of range for {k} classes"
        );

        let eps = self.label_smoothing;
        let off_target = eps / k as f32;
        let on_target = 1.0 - eps + off_target;

        let mut grad = Tensor::zeros(s);
        let mut total = 0.0f64;
        for bi in 0..b {
            let row = &logits.data()[bi * k..(bi + 1) * k];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            let log_z = z.ln() + max;
            // loss = -sum_c target_c * log p_c
            let mut loss = 0.0f32;
            for c in 0..k {
                let target = if c == labels[bi] { on_target } else { off_target };
                let log_p = row[c] - log_z;
                loss -= target * log_p;
                grad.data_mut()[bi * k + c] = (exps[c] / z - target) / b as f32;
            }
            total += loss as f64;
        }
        ((total / b as f64) as f32, grad)
    }

    /// Softmax probabilities (inference helper).
    pub fn softmax(logits: &Tensor) -> Tensor {
        let s = logits.shape();
        assert_eq!(s.rank(), 2, "softmax expects [B, K]");
        let (b, k) = (s.dim(0), s.dim(1));
        let mut out = Tensor::zeros(s);
        for bi in 0..b {
            let row = &logits.data()[bi * k..(bi + 1) * k];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            for c in 0..k {
                out.data_mut()[bi * k + c] = exps[c] / z;
            }
        }
        out
    }
}

impl Default for CrossEntropyLoss {
    fn default() -> Self {
        CrossEntropyLoss::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros([2, 4]);
        let (l, _) = loss.forward(&logits, &[0, 3]);
        assert!((l - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec([1, 3], vec![10.0, 0.0, 0.0]);
        let (l, _) = loss.forward(&logits, &[0]);
        assert!(l < 1e-3);
        let (l_wrong, _) = loss.forward(&logits, &[1]);
        assert!(l_wrong > 5.0);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        // softmax grad rows sum to zero (p sums to 1, target sums to 1).
        let loss = CrossEntropyLoss::with_smoothing(0.1);
        let logits = Tensor::from_vec([2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let (_, g) = loss.forward(&logits, &[2, 0]);
        for bi in 0..2 {
            let s: f32 = g.data()[bi * 3..(bi + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = CrossEntropyLoss::with_smoothing(0.05);
        let base = Tensor::from_vec([1, 4], vec![0.5, -0.2, 1.0, 0.1]);
        let (_, g) = loss.forward(&base, &[2]);
        let h = 1e-3;
        for i in 0..4 {
            let mut plus = base.clone();
            plus.data_mut()[i] += h;
            let mut minus = base.clone();
            minus.data_mut()[i] -= h;
            let (lp, _) = loss.forward(&plus, &[2]);
            let (lm, _) = loss.forward(&minus, &[2]);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - g.data()[i]).abs() < 1e-3,
                "logit {i}: fd {fd} vs analytic {}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn smoothing_raises_floor() {
        // With smoothing, even a perfect prediction keeps positive loss.
        let smooth = CrossEntropyLoss::with_smoothing(0.2);
        let logits = Tensor::from_vec([1, 2], vec![100.0, 0.0]);
        let (l, _) = smooth.forward(&logits, &[0]);
        assert!(l > 1.0); // eps/K * 100-ish contribution from the off term
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec([2, 3], vec![1., 2., 3., 0., 0., 0.]);
        let p = CrossEntropyLoss::softmax(&logits);
        for bi in 0..2 {
            let s: f32 = p.data()[bi * 3..(bi + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        let loss = CrossEntropyLoss::new();
        let _ = loss.forward(&Tensor::zeros([1, 3]), &[3]);
    }
}
