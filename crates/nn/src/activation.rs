//! Activation layers.

use crate::arena::{BufId, EvalArena};
use crate::layer::{Layer, Mode, Param};
use p3d_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        // Only Train refreshes the mask; Eval leaves any cached state
        // intact so an interleaved validation pass cannot clobber the
        // pending backward (see `tests/interleave.rs`).
        if mode == Mode::Train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("relu backward called before forward(Train)");
        assert_eq!(mask.len(), grad_out.len(), "relu grad length mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        // In place; `x.max(0.0)` matches `forward`'s map exactly.
        for x in arena.buf_mut(input) {
            *x = x.max(0.0);
        }
        input
    }

    fn describe(&self) -> String {
        "relu".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([4], vec![-2.0, -0.5, 0.0, 3.0]);
        let y = relu.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([4], vec![-1.0, 2.0, -3.0, 4.0]);
        let _ = relu.forward(&x, Mode::Train);
        let g = relu.backward(&Tensor::ones([4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // The subgradient at exactly 0 is taken as 0.
        let mut relu = Relu::new();
        let x = Tensor::zeros([2]);
        let _ = relu.forward(&x, Mode::Train);
        let g = relu.backward(&Tensor::ones([2]));
        assert_eq!(g.data(), &[0.0, 0.0]);
    }
}
