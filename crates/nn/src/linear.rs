//! Fully-connected layer and the flatten adapter.

use crate::arena::{BufId, EvalArena};
use crate::layer::{Layer, Mode, Param, ParamKind};
use p3d_tensor::{gemm_nt_into, Shape, Tensor, TensorRng};

/// A fully-connected layer: `y = x W^T + b`, weight `[out, in]`.
pub struct Linear {
    /// Weight matrix `[out, in]`.
    pub weight: Param,
    /// Optional bias `[out]`.
    pub bias: Option<Param>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialised linear layer.
    pub fn new(name: &str, out_features: usize, in_features: usize, bias: bool, rng: &mut TensorRng) -> Self {
        let w = rng.kaiming_normal(Shape::d2(out_features, in_features), in_features);
        Linear {
            weight: Param::new(format!("{name}.weight"), ParamKind::LinearWeight, w),
            bias: bias.then(|| {
                Param::new(
                    format!("{name}.bias"),
                    ParamKind::Bias,
                    Tensor::zeros([out_features]),
                )
            }),
            cached_input: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "linear expects [B, in]");
        assert_eq!(
            input.shape().dim(1),
            self.in_features(),
            "linear {} expects {} inputs, got {}",
            self.weight.name,
            self.in_features(),
            input.shape().dim(1)
        );
        // y[b, o] = sum_i x[b, i] * w[o, i]  ==  x * W^T
        let mut out = input.matmul_nt(&self.weight.value);
        if let Some(bias) = &self.bias {
            let o = self.out_features();
            for bi in 0..input.shape().dim(0) {
                for (j, &bv) in bias.value.data().iter().enumerate() {
                    out.data_mut()[bi * o + j] += bv;
                }
            }
        }
        // Eval must not clobber a Train-cached input (interleaved
        // validation between forward(Train) and backward is legal).
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("linear backward called before forward(Train)");
        let b = input.shape().dim(0);
        assert_eq!(
            grad_out.shape().dims(),
            &[b, self.out_features()],
            "linear grad shape mismatch"
        );
        // dW[o, i] = sum_b g[b, o] * x[b, i] = g^T x
        self.weight.grad += &grad_out.matmul_tn(input);
        let o = self.out_features();
        if let Some(bias) = &mut self.bias {
            for bi in 0..b {
                for j in 0..o {
                    bias.grad.data_mut()[j] += grad_out.data()[bi * o + j];
                }
            }
        }
        // dX = g W
        grad_out.matmul(&self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        let s = arena.shape(input);
        assert_eq!(s.rank(), 2, "linear expects [B, in]");
        let b = s.dim(0);
        let i = self.in_features();
        let o = self.out_features();
        assert_eq!(
            s.dim(1),
            i,
            "linear {} expects {} inputs, got {}",
            self.weight.name,
            i,
            s.dim(1)
        );
        let out = arena.acquire(Shape::d2(b, o));
        {
            let (src, dst) = arena.pair(input, out);
            // `gemm_nt_into` accumulates in the same order as `matmul_nt`,
            // so values match `forward` bitwise.
            gemm_nt_into(src, b, i, self.weight.value.data(), o, dst);
            if let Some(bias) = &self.bias {
                for bi in 0..b {
                    for (j, &bv) in bias.value.data().iter().enumerate() {
                        dst[bi * o + j] += bv;
                    }
                }
            }
        }
        arena.release(input);
        out
    }

    fn describe(&self) -> String {
        format!("linear({}->{})", self.in_features(), self.out_features())
    }
}

/// Flattens `[B, ...]` activations to `[B, features]`.
pub struct Flatten {
    input_shape: Option<Shape>,
}

impl Flatten {
    /// Creates the adapter.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Flatten::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape();
        let b = s.dim(0);
        if mode == Mode::Train {
            self.input_shape = Some(s);
        }
        input.reshape(Shape::d2(b, s.len() / b))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let s = self
            .input_shape
            .expect("flatten backward called before forward(Train)");
        grad_out.reshape(s)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        // Pure metadata change: relabel the buffer's shape in place.
        let s = arena.shape(input);
        let b = s.dim(0);
        arena.set_shape(input, Shape::d2(b, s.len() / b));
        input
    }

    fn describe(&self) -> String {
        "flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = TensorRng::seed(1);
        let mut lin = Linear::new("fc", 2, 3, true, &mut rng);
        lin.weight.value = Tensor::from_vec([2, 3], vec![1., 0., -1., 2., 1., 0.]);
        lin.bias.as_mut().unwrap().value = Tensor::from_vec([2], vec![0.5, -0.5]);
        let x = Tensor::from_vec([1, 3], vec![1., 2., 3.]);
        let y = lin.forward(&x, Mode::Eval);
        // [1*1 + 0*2 - 1*3 + 0.5, 2*1 + 1*2 + 0*3 - 0.5]
        assert_eq!(y.data(), &[-1.5, 3.5]);
    }

    #[test]
    fn backward_weight_grad() {
        let mut rng = TensorRng::seed(2);
        let mut lin = Linear::new("fc", 1, 2, false, &mut rng);
        lin.weight.value = Tensor::from_vec([1, 2], vec![1.0, 1.0]);
        let x = Tensor::from_vec([1, 2], vec![3.0, 4.0]);
        let _ = lin.forward(&x, Mode::Train);
        let gin = lin.backward(&Tensor::from_vec([1, 1], vec![2.0]));
        assert_eq!(lin.weight.grad.data(), &[6.0, 8.0]);
        assert_eq!(gin.data(), &[2.0, 2.0]);
    }

    #[test]
    fn batch_accumulates() {
        let mut rng = TensorRng::seed(3);
        let mut lin = Linear::new("fc", 1, 1, true, &mut rng);
        lin.weight.value = Tensor::from_vec([1, 1], vec![1.0]);
        let x = Tensor::from_vec([2, 1], vec![1.0, 10.0]);
        let _ = lin.forward(&x, Mode::Train);
        let _ = lin.backward(&Tensor::from_vec([2, 1], vec![1.0, 1.0]));
        assert_eq!(lin.weight.grad.data(), &[11.0]);
        assert_eq!(lin.bias.as_ref().unwrap().grad.data(), &[2.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec([2, 1, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 4]);
        let g = f.backward(&y);
        assert_eq!(g.shape().dims(), &[2, 1, 1, 2, 2]);
        assert_eq!(g.data(), x.data());
    }
}
