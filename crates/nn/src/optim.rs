//! Optimisers. The paper trains with SGD; this module provides SGD with
//! momentum and decoupled L2 weight decay.

use crate::layer::{Layer, Param};
use p3d_tensor::Tensor;
use std::collections::{BTreeMap, HashMap};
use std::io;

/// Stochastic gradient descent with momentum and L2 weight decay.
///
/// Velocity buffers are keyed by parameter name, so the optimiser survives
/// arbitrary visitation orders and freshly (re)built networks, as long as
/// parameter names are stable.
///
/// The update is the classic heavy-ball form:
///
/// ```text
/// v  <- momentum * v + grad + weight_decay * w
/// w  <- w - lr * v
/// ```
pub struct Sgd {
    /// Current learning rate; mutate via [`Sgd::set_lr`] each epoch when
    /// driven by a schedule.
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (called by schedules between epochs).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The decoupled L2 weight-decay coefficient.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// Read access to the velocity buffers (keyed by parameter name).
    pub fn velocity(&self) -> &HashMap<String, Tensor> {
        &self.velocity
    }

    /// Exports the optimiser's full state into a named-tensor map:
    /// `opt.hyper` (`[lr, momentum, weight_decay]`) plus one
    /// `opt.velocity.{param}` tensor per momentum buffer.
    ///
    /// Without the velocity buffers a resumed run takes a different first
    /// step than the uninterrupted run would have (heavy-ball momentum
    /// restarts from zero), so they are part of the training state.
    pub fn export_state(&self, out: &mut BTreeMap<String, Tensor>) {
        out.insert(
            "opt.hyper".to_string(),
            Tensor::from_vec([3], vec![self.lr, self.momentum, self.weight_decay]),
        );
        // BTreeMap keeps the file deterministic regardless of HashMap
        // iteration order.
        for (name, v) in &self.velocity {
            out.insert(format!("opt.velocity.{name}"), v.clone());
        }
    }

    /// Imports state exported by [`Sgd::export_state`], returning the
    /// number of tensors consumed.
    ///
    /// # Errors
    ///
    /// `InvalidData` when `opt.hyper` is present but malformed (wrong
    /// length, non-positive learning rate, momentum outside `[0, 1)`, or
    /// negative weight decay).
    pub fn import_state(&mut self, tensors: &BTreeMap<String, Tensor>) -> io::Result<usize> {
        let mut imported = 0usize;
        if let Some(h) = tensors.get("opt.hyper") {
            let d = h.data();
            let ok = d.len() == 3
                && d[0].is_finite()
                && d[0] > 0.0
                && (0.0..1.0).contains(&d[1])
                && d[2].is_finite()
                && d[2] >= 0.0;
            if !ok {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed opt.hyper tensor",
                ));
            }
            self.lr = d[0];
            self.momentum = d[1];
            self.weight_decay = d[2];
            imported += 1;
        }
        for (name, t) in tensors {
            if let Some(param) = name.strip_prefix("opt.velocity.") {
                self.velocity.insert(param.to_string(), t.clone());
                imported += 1;
            }
        }
        Ok(imported)
    }

    /// Applies one update step to a single parameter.
    pub fn step_param(&mut self, param: &mut Param) {
        // Never decay biases or batch-norm parameters; standard practice
        // and important at these small model scales.
        let decay = match param.kind {
            crate::layer::ParamKind::ConvWeight | crate::layer::ParamKind::LinearWeight => {
                self.weight_decay
            }
            _ => 0.0,
        };
        let v = self
            .velocity
            .entry(param.name.clone())
            .or_insert_with(|| Tensor::zeros(param.value.shape()));
        for ((v, &g), &w) in v
            .data_mut()
            .iter_mut()
            .zip(param.grad.data())
            .zip(param.value.data())
        {
            *v = self.momentum * *v + g + decay * w;
        }
        param.value.axpy(-self.lr, v);
        // Respect a pruning mask if one is installed.
        param.apply_mask();
    }

    /// Applies one update step to every parameter of `layer`, then zeroes
    /// the gradients.
    pub fn step(&mut self, layer: &mut dyn Layer) {
        let mut params: Vec<*mut Param> = Vec::new();
        layer.visit_params(&mut |p| params.push(p as *mut Param));
        // SAFETY: visit_params yields disjoint &mut Param references; we
        // only materialise them one at a time below.
        for p in params {
            let param = unsafe { &mut *p };
            self.step_param(param);
            param.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamKind;

    fn param(val: &[f32], grad: &[f32]) -> Param {
        let mut p = Param::new(
            "w",
            ParamKind::ConvWeight,
            Tensor::from_vec([val.len()], val.to_vec()),
        );
        p.grad = Tensor::from_vec([grad.len()], grad.to_vec());
        p
    }

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut p = param(&[1.0, 2.0], &[10.0, -10.0]);
        opt.step_param(&mut p);
        assert_eq!(p.value.data(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(1.0, 0.5, 0.0);
        let mut p = param(&[0.0], &[1.0]);
        opt.step_param(&mut p); // v=1, w=-1
        p.grad = Tensor::from_vec([1], vec![1.0]);
        opt.step_param(&mut p); // v=1.5, w=-2.5
        assert!((p.value.data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut p = param(&[2.0], &[0.0]);
        opt.step_param(&mut p);
        // w - lr * decay * w = 2 - 0.1*0.5*2 = 1.9
        assert!((p.value.data()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn bias_not_decayed() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut p = Param::new("b", ParamKind::Bias, Tensor::from_vec([1], vec![2.0]));
        opt.step_param(&mut p);
        assert_eq!(p.value.data(), &[2.0]);
    }

    #[test]
    fn masked_weights_stay_zero() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut p = param(&[1.0, 1.0], &[1.0, 1.0]);
        p.set_mask(Tensor::from_vec([2], vec![0.0, 1.0]));
        p.grad = Tensor::from_vec([2], vec![1.0, 1.0]);
        opt.step_param(&mut p);
        assert_eq!(p.value.data()[0], 0.0);
        assert!((p.value.data()[1] - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.9, 0.0);
    }

    #[test]
    fn state_roundtrip_preserves_velocity_and_lr() {
        let mut opt = Sgd::new(0.3, 0.9, 1e-4);
        let mut p = param(&[1.0, 2.0], &[0.5, -0.5]);
        opt.step_param(&mut p);
        opt.set_lr(0.07);

        let mut out = BTreeMap::new();
        opt.export_state(&mut out);
        assert!(out.contains_key("opt.hyper"));
        assert!(out.contains_key("opt.velocity.w"));

        let mut fresh = Sgd::new(1.0, 0.0, 0.0);
        let n = fresh.import_state(&out).unwrap();
        assert_eq!(n, 2);
        assert_eq!(fresh.lr(), 0.07);
        assert_eq!(fresh.momentum(), 0.9);
        assert_eq!(fresh.velocity()["w"], opt.velocity()["w"]);

        // Both take the same next step.
        let mut pa = param(&[1.0], &[1.0]);
        let mut pb = pa.clone();
        pa.grad = Tensor::from_vec([1], vec![1.0]);
        pb.grad = Tensor::from_vec([1], vec![1.0]);
        opt.velocity.remove("w");
        fresh.velocity.remove("w");
        opt.step_param(&mut pa);
        fresh.step_param(&mut pb);
        assert_eq!(pa.value.data()[0].to_bits(), pb.value.data()[0].to_bits());
    }

    #[test]
    fn import_rejects_malformed_hyper() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let mut bad = BTreeMap::new();
        bad.insert("opt.hyper".to_string(), Tensor::from_vec([2], vec![0.1, 0.9]));
        assert!(opt.import_state(&bad).is_err());
        bad.insert(
            "opt.hyper".to_string(),
            Tensor::from_vec([3], vec![-1.0, 0.9, 0.0]),
        );
        assert!(opt.import_state(&bad).is_err());
    }
}
