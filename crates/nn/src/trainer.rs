//! The training loop shared by baseline training, ADMM training and
//! masked retraining.

use crate::layer::{Layer, Mode, Param};
use crate::loss::CrossEntropyLoss;
use crate::metrics::{accuracy, AverageMeter};
use crate::optim::Sgd;
use p3d_tensor::{Shape, Tensor, TensorRng};

/// A supervised clip dataset: indexable `(clip, label)` pairs where each
/// clip is a `[C, D, H, W]` tensor.
pub trait Dataset {
    /// Number of samples.
    fn len(&self) -> usize;
    /// `true` when the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The `idx`-th sample.
    fn sample(&self, idx: usize) -> (Tensor, usize);
    /// Number of distinct labels.
    fn num_classes(&self) -> usize;
}

/// A tiny linearly separable dataset — class is the sign of the clip
/// mean — used by unit tests and checkpoint/resume smoke tests.
///
/// Deterministic: sample `idx` is always the same `[1, 1, 2, 2]` clip.
#[derive(Clone, Copy, Debug)]
pub struct ToyDataset {
    n: usize,
}

impl ToyDataset {
    /// A dataset with `n` samples (alternating labels).
    pub fn new(n: usize) -> Self {
        ToyDataset { n }
    }
}

impl Dataset for ToyDataset {
    fn len(&self) -> usize {
        self.n
    }
    fn sample(&self, idx: usize) -> (Tensor, usize) {
        let label = idx % 2;
        let value = if label == 0 { -1.0 } else { 1.0 };
        // Index-dependent, deterministic jitter.
        let jitter = (idx as f32 * 0.37).sin() * 0.1;
        (Tensor::full([1, 1, 2, 2], value + jitter), label)
    }
    fn num_classes(&self) -> usize {
        2
    }
}

/// Stacks `[C, D, H, W]` clips into a `[B, C, D, H, W]` batch.
///
/// # Panics
///
/// Panics if the clips disagree in shape or `clips` is empty.
pub fn stack_clips(clips: &[Tensor]) -> Tensor {
    assert!(!clips.is_empty(), "cannot stack an empty batch");
    let s = clips[0].shape();
    assert_eq!(s.rank(), 4, "clips must be [C, D, H, W], got {s}");
    let mut out = Tensor::zeros(Shape::d5(clips.len(), s.dim(0), s.dim(1), s.dim(2), s.dim(3)));
    let per = s.len();
    for (i, clip) in clips.iter().enumerate() {
        assert_eq!(clip.shape(), s, "clip shape mismatch in batch");
        out.data_mut()[i * per..(i + 1) * per].copy_from_slice(clip.data());
    }
    out
}

/// Summary statistics of one training epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Mean task loss (cross entropy, without any ADMM penalty).
    pub loss: f32,
    /// Mean training top-1 accuracy.
    pub accuracy: f32,
    /// Number of samples processed.
    pub samples: usize,
}

/// A gradient hook invoked on every parameter after backward and before
/// the optimiser step. The ADMM W-minimisation installs
/// `grad += rho * (W - Z + V)` through this hook.
pub type GradHook<'h> = &'h mut dyn FnMut(&mut Param);

/// Drives mini-batch SGD over a [`Dataset`].
pub struct Trainer {
    /// Loss function (with label smoothing where the paper uses it).
    pub loss: CrossEntropyLoss,
    /// The optimiser.
    pub optimizer: Sgd,
    /// Mini-batch size.
    pub batch_size: usize,
    rng: TensorRng,
}

impl Trainer {
    /// Creates a trainer with a deterministic shuffling seed.
    pub fn new(loss: CrossEntropyLoss, optimizer: Sgd, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Trainer {
            loss,
            optimizer,
            batch_size,
            rng: TensorRng::seed(seed),
        }
    }

    /// Exports the shuffle-RNG state for checkpoint/resume.
    ///
    /// Restoring this state with [`Trainer::set_rng_state`] makes a
    /// rebuilt trainer draw the exact same epoch permutations as the
    /// original would have, which is required for bitwise-identical
    /// resumed runs.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.export_state()
    }

    /// Installs a shuffle-RNG state captured by [`Trainer::rng_state`].
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = TensorRng::from_state(state);
    }

    /// Runs one epoch of training, optionally applying a gradient hook
    /// (the ADMM penalty) before each optimiser step.
    pub fn train_epoch(
        &mut self,
        network: &mut dyn Layer,
        data: &dyn Dataset,
        mut hook: Option<GradHook<'_>>,
    ) -> EpochStats {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let order = self.rng.permutation(data.len());
        let mut loss_meter = AverageMeter::new();
        let mut acc_meter = AverageMeter::new();

        for chunk in order.chunks(self.batch_size) {
            let mut clips = Vec::with_capacity(chunk.len());
            let mut labels = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                let (clip, label) = data.sample(idx);
                clips.push(clip);
                labels.push(label);
            }
            let batch = stack_clips(&clips);
            let logits = network.forward(&batch, Mode::Train);
            let (loss, grad) = self.loss.forward(&logits, &labels);
            loss_meter.update(loss, chunk.len());
            acc_meter.update(accuracy(&logits, &labels), chunk.len());
            network.backward(&grad);
            if let Some(h) = hook.as_deref_mut() {
                network.visit_params(h);
            }
            self.optimizer.step(network);
        }
        EpochStats {
            loss: loss_meter.mean(),
            accuracy: acc_meter.mean(),
            samples: data.len(),
        }
    }

    /// Evaluates top-1 accuracy in [`Mode::Eval`].
    pub fn evaluate(&mut self, network: &mut dyn Layer, data: &dyn Dataset) -> f32 {
        evaluate(network, data, self.batch_size)
    }
}

/// Evaluates top-1 accuracy of `network` on `data` in eval mode.
pub fn evaluate(network: &mut dyn Layer, data: &dyn Dataset, batch_size: usize) -> f32 {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut correct = 0usize;
    let indices: Vec<usize> = (0..data.len()).collect();
    for chunk in indices.chunks(batch_size.max(1)) {
        let mut clips = Vec::with_capacity(chunk.len());
        let mut labels = Vec::with_capacity(chunk.len());
        for &idx in chunk {
            let (clip, label) = data.sample(idx);
            clips.push(clip);
            labels.push(label);
        }
        let batch = stack_clips(&clips);
        let logits = network.forward(&batch, Mode::Eval);
        let (b, k) = (logits.shape().dim(0), logits.shape().dim(1));
        for bi in 0..b {
            let row = &logits.data()[bi * k..(bi + 1) * k];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == labels[bi] {
                correct += 1;
            }
        }
    }
    correct as f32 / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Sequential;
    use crate::linear::{Flatten, Linear};

    /// A linearly separable toy dataset: class = sign of the mean.
    type Toy = ToyDataset;

    fn toy_net(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        Sequential::new()
            .push(Flatten::new())
            .push(Linear::new("fc", 2, 4, true, &mut rng))
    }

    #[test]
    fn trainer_learns_separable_toy() {
        let mut net = toy_net(1);
        let data = Toy::new(32);
        let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.1, 0.9, 0.0), 8, 42);
        for _ in 0..20 {
            trainer.train_epoch(&mut net, &data, None);
        }
        let after = trainer.evaluate(&mut net, &data);
        assert_eq!(after, 1.0, "toy problem should be solved exactly");
    }

    #[test]
    fn loss_decreases() {
        let mut net = toy_net(2);
        let data = Toy::new(32);
        let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.05, 0.0, 0.0), 8, 7);
        let first = trainer.train_epoch(&mut net, &data, None).loss;
        for _ in 0..10 {
            trainer.train_epoch(&mut net, &data, None);
        }
        let last = trainer.train_epoch(&mut net, &data, None).loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn grad_hook_is_invoked() {
        let mut net = toy_net(3);
        let data = Toy::new(8);
        let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.01, 0.0, 0.0), 4, 1);
        let mut calls = 0usize;
        let mut hook = |_p: &mut Param| calls += 1;
        trainer.train_epoch(&mut net, &data, Some(&mut hook));
        // 8 samples / batch 4 = 2 steps, 2 params (weight + bias) each.
        assert_eq!(calls, 4);
    }

    #[test]
    fn stack_clips_layout() {
        let a = Tensor::full([1, 1, 1, 2], 1.0);
        let b = Tensor::full([1, 1, 1, 2], 2.0);
        let s = stack_clips(&[a, b]);
        assert_eq!(s.shape().dims(), &[2, 1, 1, 1, 2]);
        assert_eq!(s.data(), &[1., 1., 2., 2.]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn stack_empty_panics() {
        let _ = stack_clips(&[]);
    }
}
