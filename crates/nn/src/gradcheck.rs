//! Finite-difference gradient checking for layers.
//!
//! Used by the test suites of every parametric layer: the analytic
//! backward pass is compared against central finite differences of a
//! scalarised output. Exported (rather than test-only) so downstream
//! crates can gradient-check their composed networks too.

use crate::layer::{Layer, Mode};
use p3d_tensor::{Tensor, TensorRng};

/// Result of a gradient check: the worst relative error observed.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Maximum relative error over all checked parameter coordinates.
    pub max_param_err: f32,
    /// Maximum relative error over all checked input coordinates.
    pub max_input_err: f32,
}

fn rel_err(a: f32, b: f32) -> f32 {
    let denom = a.abs().max(b.abs()).max(1e-2);
    (a - b).abs() / denom
}

/// Checks analytic gradients of `layer` against central finite
/// differences.
///
/// The layer output is scalarised as `L = <output, P>` for a fixed random
/// projection `P`, whose gradient w.r.t. the output is exactly `P`. Up to
/// `samples` coordinates of every parameter and of the input are probed.
///
/// Returns the worst relative errors; callers assert on them.
///
/// # Panics
///
/// Panics if the layer mutates its parameter shapes between calls.
pub fn check_layer(
    layer: &mut dyn Layer,
    input: &Tensor,
    samples: usize,
    seed: u64,
) -> GradCheckReport {
    let mut rng = TensorRng::seed(seed);
    let out = layer.forward(input, Mode::Train);
    let projection = rng.uniform_tensor(out.shape(), -1.0, 1.0);

    layer.zero_grads_internal();
    let _ = layer.forward(input, Mode::Train);
    let grad_in = layer.backward(&projection);

    // Collect analytic parameter gradients.
    let mut analytic: Vec<(String, Tensor)> = Vec::new();
    layer.visit_params(&mut |p| analytic.push((p.name.clone(), p.grad.clone())));

    // ReLU and max-pool are piecewise linear; a finite-difference step
    // across a kink produces a bogus estimate that says nothing about the
    // analytic gradient. Two central differences at step h and h/2 agree
    // on smooth coordinates and disagree across kinks, so coordinates
    // where they disagree are skipped.
    let h = 2e-3f32;
    let consistent = |fd1: f32, fd2: f32| (fd1 - fd2).abs() <= 0.02 * fd1.abs().max(0.02);

    let mut max_param_err = 0.0f32;
    for (name, grads) in &analytic {
        let len = grads.len();
        let picks: Vec<usize> = if len <= samples {
            (0..len).collect()
        } else {
            (0..samples).map(|_| rng.below(len)).collect()
        };
        for &i in &picks {
            let loss_at = |layer: &mut dyn Layer, delta: f32| -> f32 {
                layer.visit_params(&mut |p| {
                    if &p.name == name {
                        p.value.data_mut()[i] += delta;
                    }
                });
                let out = layer.forward(input, Mode::Train);
                layer.visit_params(&mut |p| {
                    if &p.name == name {
                        p.value.data_mut()[i] -= delta;
                    }
                });
                out.dot(&projection)
            };
            let fd1 = (loss_at(layer, h) - loss_at(layer, -h)) / (2.0 * h);
            let fd2 = (loss_at(layer, h / 2.0) - loss_at(layer, -h / 2.0)) / h;
            if !consistent(fd1, fd2) {
                continue;
            }
            max_param_err = max_param_err.max(rel_err(fd2, grads.data()[i]));
        }
    }

    // Input gradient check.
    let mut max_input_err = 0.0f32;
    let len = input.len();
    let picks: Vec<usize> = if len <= samples {
        (0..len).collect()
    } else {
        (0..samples).map(|_| rng.below(len)).collect()
    };
    for &i in &picks {
        let loss_at = |layer: &mut dyn Layer, delta: f32| -> f32 {
            let mut x = input.clone();
            x.data_mut()[i] += delta;
            layer.forward(&x, Mode::Train).dot(&projection)
        };
        let fd1 = (loss_at(layer, h) - loss_at(layer, -h)) / (2.0 * h);
        let fd2 = (loss_at(layer, h / 2.0) - loss_at(layer, -h / 2.0)) / h;
        if !consistent(fd1, fd2) {
            continue;
        }
        max_input_err = max_input_err.max(rel_err(fd2, grad_in.data()[i]));
    }

    GradCheckReport {
        max_param_err,
        max_input_err,
    }
}

trait ZeroGrads {
    fn zero_grads_internal(&mut self);
}

impl ZeroGrads for dyn Layer + '_ {
    fn zero_grads_internal(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::batchnorm::BatchNorm3d;
    use crate::container::{ResidualBlock, Sequential};
    use crate::conv3d::Conv3d;
    use crate::linear::Linear;
    use crate::pool::{GlobalAvgPool, MaxPool3d};

    const TOL: f32 = 5e-2;

    #[test]
    fn conv3d_gradients() {
        let mut rng = TensorRng::seed(10);
        let mut conv =
            Conv3d::new("gc", 3, 2, (2, 3, 3), (1, 2, 2), (1, 1, 1), true, &mut rng);
        let x = rng.uniform_tensor([2, 2, 3, 5, 5], -1.0, 1.0);
        let rep = check_layer(&mut conv, &x, 40, 99);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn conv3d_temporal_kernel_gradients() {
        // R(2+1)D temporal convolution: 3x1x1.
        let mut rng = TensorRng::seed(11);
        let mut conv =
            Conv3d::new("gt", 2, 3, (3, 1, 1), (1, 1, 1), (1, 0, 0), false, &mut rng);
        let x = rng.uniform_tensor([1, 3, 4, 3, 3], -1.0, 1.0);
        let rep = check_layer(&mut conv, &x, 40, 98);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn linear_gradients() {
        let mut rng = TensorRng::seed(12);
        let mut lin = Linear::new("gl", 4, 6, true, &mut rng);
        let x = rng.uniform_tensor([3, 6], -1.0, 1.0);
        let rep = check_layer(&mut lin, &x, 40, 97);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn batchnorm_gradients() {
        let mut bn = BatchNorm3d::new("gb", 3);
        let mut rng = TensorRng::seed(13);
        // Scale/offset the input so statistics are non-trivial.
        let x = rng.normal_tensor([4, 3, 2, 3, 3], 2.0).map(|v| v + 1.0);
        let rep = check_layer(&mut bn, &x, 30, 96);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn maxpool_gradients() {
        let mut pool = MaxPool3d::new((1, 2, 2), (1, 2, 2));
        let mut rng = TensorRng::seed(14);
        let x = rng.uniform_tensor([2, 2, 2, 4, 4], -1.0, 1.0);
        let rep = check_layer(&mut pool, &x, 40, 95);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn global_pool_and_relu_gradients() {
        let mut seq = Sequential::new().push(Relu::new()).push(GlobalAvgPool::new());
        let mut rng = TensorRng::seed(15);
        let x = rng.uniform_tensor([2, 3, 2, 3, 3], -1.0, 1.0);
        let rep = check_layer(&mut seq, &x, 40, 94);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn residual_block_gradients() {
        let mut rng = TensorRng::seed(16);
        let main = Sequential::new()
            .push(Conv3d::new("rm", 2, 2, (1, 3, 3), (1, 1, 1), (0, 1, 1), false, &mut rng))
            .push(Relu::new())
            .push(Conv3d::new("rm2", 2, 2, (3, 1, 1), (1, 1, 1), (1, 0, 0), false, &mut rng));
        let mut block = ResidualBlock::identity(main);
        let x = rng.uniform_tensor([1, 2, 3, 4, 4], -1.0, 1.0);
        let rep = check_layer(&mut block, &x, 40, 93);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn projected_residual_gradients() {
        let mut rng = TensorRng::seed(17);
        let main = Sequential::new().push(Conv3d::new(
            "pm",
            3,
            2,
            (1, 3, 3),
            (1, 2, 2),
            (0, 1, 1),
            false,
            &mut rng,
        ));
        let shortcut = Sequential::new().push(Conv3d::new(
            "ps",
            3,
            2,
            (1, 1, 1),
            (1, 2, 2),
            (0, 0, 0),
            false,
            &mut rng,
        ));
        let mut block = ResidualBlock::projected(main, shortcut);
        let x = rng.uniform_tensor([1, 2, 2, 4, 4], -1.0, 1.0);
        let rep = check_layer(&mut block, &x, 40, 92);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }

    #[test]
    fn small_cnn_end_to_end_gradients() {
        let mut rng = TensorRng::seed(18);
        let mut net = Sequential::new()
            .push(Conv3d::new("e1", 2, 1, (1, 3, 3), (1, 1, 1), (0, 1, 1), true, &mut rng))
            .push(BatchNorm3d::new("e2", 2))
            .push(Relu::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new("e3", 2, 2, true, &mut rng));
        let x = rng.uniform_tensor([3, 1, 2, 4, 4], -1.0, 1.0);
        let rep = check_layer(&mut net, &x, 30, 91);
        assert!(rep.max_param_err < TOL, "param err {}", rep.max_param_err);
        assert!(rep.max_input_err < TOL, "input err {}", rep.max_input_err);
    }
}
