//! 3D pooling layers: max pooling, average pooling, and the global
//! spatio-temporal average pool that closes both R(2+1)D and C3D.

use crate::arena::{BufId, EvalArena};
use crate::layer::{Layer, Mode, Param};
use p3d_tensor::parallel::{parallel_chunk_map, parallel_zip_chunk_map};
use p3d_tensor::{Shape, Tensor};

fn pooled_extent(i: usize, k: usize, s: usize) -> usize {
    p3d_tensor::shape::conv_out(i, k, s, 0)
}

/// 3D max pooling with kernel `(Kd, Kr, Kc)` and stride `(Sd, Sr, Sc)`.
///
/// C3D uses `pool1 = (1,2,2)` and `(2,2,2)` elsewhere; both are expressed
/// with this layer.
pub struct MaxPool3d {
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
    /// For each output element, the flat input offset of its maximum.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Shape>,
}

impl MaxPool3d {
    /// Creates a max-pool layer; stride defaults to the kernel when equal
    /// pooling is wanted, pass it explicitly here.
    pub fn new(kernel: (usize, usize, usize), stride: (usize, usize, usize)) -> Self {
        MaxPool3d {
            kernel,
            stride,
            argmax: None,
            input_shape: None,
        }
    }

    fn out_shape(&self, s: Shape) -> (usize, usize, usize, usize, usize) {
        assert_eq!(s.rank(), 5, "pool expects [B, C, D, H, W], got {s}");
        (
            s.dim(0),
            s.dim(1),
            pooled_extent(s.dim(2), self.kernel.0, self.stride.0),
            pooled_extent(s.dim(3), self.kernel.1, self.stride.1),
            pooled_extent(s.dim(4), self.kernel.2, self.stride.2),
        )
    }
}

impl Layer for MaxPool3d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape();
        let (b, c, od, oh, ow) = self.out_shape(s);
        let (di, hi, wi) = (s.dim(2), s.dim(3), s.dim(4));
        let (kd, kr, kc) = self.kernel;
        let (sd, sr, sc) = self.stride;
        let data = input.data();

        let mut out = Tensor::zeros(Shape::d5(b, c, od, oh, ow));
        let mut argmax = vec![0usize; out.len()];
        let plane_out = od * oh * ow;
        let plane_in = di * hi * wi;
        // Parallel over [batch x channel] planes: value and argmax planes
        // advance in lockstep, each plane owned by exactly one worker.
        parallel_zip_chunk_map(
            out.data_mut(),
            plane_out.max(1),
            &mut argmax,
            plane_out.max(1),
            |plane, out_plane, arg_plane| {
                let base = plane * plane_in;
                let mut oi = 0usize;
                for odi in 0..od {
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_off = 0usize;
                            for kdi in 0..kd {
                                let d = odi * sd + kdi;
                                for kri in 0..kr {
                                    let h = ohi * sr + kri;
                                    let row = base + d * hi * wi + h * wi + owi * sc;
                                    for kci in 0..kc {
                                        let off = row + kci;
                                        if data[off] > best {
                                            best = data[off];
                                            best_off = off;
                                        }
                                    }
                                }
                            }
                            out_plane[oi] = best;
                            arg_plane[oi] = best_off;
                            oi += 1;
                        }
                    }
                }
            },
        );
        if mode == Mode::Train {
            self.argmax = Some(argmax);
            self.input_shape = Some(s);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .as_ref()
            .expect("maxpool backward called before forward(Train)");
        let shape = self.input_shape.expect("maxpool input shape missing");
        assert_eq!(argmax.len(), grad_out.len(), "maxpool grad length mismatch");
        let mut grad_in = Tensor::zeros(shape);
        for (i, &off) in argmax.iter().enumerate() {
            grad_in.data_mut()[off] += grad_out.data()[i];
        }
        grad_in
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        let s = arena.shape(input);
        let (b, c, od, oh, ow) = self.out_shape(s);
        let (di, hi, wi) = (s.dim(2), s.dim(3), s.dim(4));
        let (kd, kr, kc) = self.kernel;
        let (sd, sr, sc) = self.stride;
        let out = arena.acquire(Shape::d5(b, c, od, oh, ow));
        let (data, out_data) = arena.pair(input, out);
        let plane_out = od * oh * ow;
        let plane_in = di * hi * wi;
        // Same comparison loop as `forward` (argmax bookkeeping elided —
        // it does not affect values), serial over planes: per-element
        // arithmetic is plane-local, so values are bitwise identical.
        for plane in 0..b * c {
            let base = plane * plane_in;
            let out_plane = &mut out_data[plane * plane_out..(plane + 1) * plane_out];
            let mut oi = 0usize;
            for odi in 0..od {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for kdi in 0..kd {
                            let d = odi * sd + kdi;
                            for kri in 0..kr {
                                let h = ohi * sr + kri;
                                let row = base + d * hi * wi + h * wi + owi * sc;
                                for kci in 0..kc {
                                    let off = row + kci;
                                    if data[off] > best {
                                        best = data[off];
                                    }
                                }
                            }
                        }
                        out_plane[oi] = best;
                        oi += 1;
                    }
                }
            }
        }
        arena.release(input);
        out
    }

    fn describe(&self) -> String {
        format!("maxpool3d({:?}/{:?})", self.kernel, self.stride)
    }
}

/// Global spatio-temporal average pooling: `[B, C, D, H, W] -> [B, C]`.
///
/// This is the "spatio-temporal average pooling" layer of Table I that
/// feeds the final FC layer.
pub struct GlobalAvgPool {
    input_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_shape: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        GlobalAvgPool::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape();
        assert_eq!(s.rank(), 5, "global avg pool expects rank-5, got {s}");
        let (b, c) = (s.dim(0), s.dim(1));
        let spatial = s.dim(2) * s.dim(3) * s.dim(4);
        let mut out = Tensor::zeros(Shape::d2(b, c));
        let data = input.data();
        parallel_chunk_map(out.data_mut(), c.max(1), |bi, row| {
            for (ch, o) in row.iter_mut().enumerate() {
                let base = (bi * c + ch) * spatial;
                *o = data[base..base + spatial].iter().sum::<f32>() / spatial as f32;
            }
        });
        if mode == Mode::Train {
            self.input_shape = Some(s);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let s = self
            .input_shape
            .expect("global avg pool backward called before forward(Train)");
        let (b, c) = (s.dim(0), s.dim(1));
        let spatial = s.dim(2) * s.dim(3) * s.dim(4);
        assert_eq!(grad_out.shape().dims(), &[b, c], "grad shape mismatch");
        let mut grad_in = Tensor::zeros(s);
        let god = grad_out.data();
        parallel_chunk_map(grad_in.data_mut(), spatial.max(1), |plane, chunk| {
            let g = god[plane] / spatial as f32;
            for x in chunk.iter_mut() {
                *x = g;
            }
        });
        grad_in
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn eval_into(&mut self, arena: &mut EvalArena, input: BufId) -> BufId {
        let s = arena.shape(input);
        assert_eq!(s.rank(), 5, "global avg pool expects rank-5, got {s}");
        let (b, c) = (s.dim(0), s.dim(1));
        let spatial = s.dim(2) * s.dim(3) * s.dim(4);
        let out = arena.acquire(Shape::d2(b, c));
        let (data, out_data) = arena.pair(input, out);
        // Same reduction expression as `forward` (`sum::<f32>() /
        // spatial as f32`), serial over rows.
        for bi in 0..b {
            for ch in 0..c {
                let base = (bi * c + ch) * spatial;
                out_data[bi * c + ch] =
                    data[base..base + spatial].iter().sum::<f32>() / spatial as f32;
            }
        }
        arena.release(input);
        out
    }

    fn describe(&self) -> String {
        "global_avg_pool".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maximum() {
        let mut p = MaxPool3d::new((1, 2, 2), (1, 2, 2));
        let x = Tensor::from_vec(
            [1, 1, 1, 2, 4],
            vec![1., 5., 2., 3., 4., 0., -1., 7.],
        );
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1, 2]);
        assert_eq!(y.data(), &[5., 7.]);
    }

    #[test]
    fn maxpool_temporal() {
        let mut p = MaxPool3d::new((2, 1, 1), (2, 1, 1));
        let x = Tensor::from_vec([1, 1, 4, 1, 1], vec![1., 9., 3., 2.]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[9., 3.]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool3d::new((1, 2, 2), (1, 2, 2));
        let x = Tensor::from_vec([1, 1, 1, 2, 2], vec![1., 5., 2., 3.]);
        let _ = p.forward(&x, Mode::Train);
        let g = p.backward(&Tensor::from_vec([1, 1, 1, 1, 1], vec![2.0]));
        assert_eq!(g.data(), &[0., 2., 0., 0.]);
    }

    #[test]
    fn global_avg_pool_value_and_shape() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec([1, 2, 1, 1, 2], vec![1., 3., 10., 20.]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.data(), &[2., 15.]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_evenly() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones([1, 1, 1, 2, 2]);
        let _ = p.forward(&x, Mode::Train);
        let g = p.backward(&Tensor::from_vec([1, 1], vec![8.0]));
        assert_eq!(g.data(), &[2., 2., 2., 2.]);
    }

    #[test]
    fn c3d_pool1_shape() {
        // C3D pool1 (1,2,2): keeps temporal extent.
        let mut p = MaxPool3d::new((1, 2, 2), (1, 2, 2));
        let x = Tensor::zeros([2, 3, 16, 8, 8]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 3, 16, 4, 4]);
    }
}
