//! Preallocated activation/scratch buffers for allocation-free inference.
//!
//! The training stack allocates a fresh tensor per layer per forward —
//! fine for training, ruinous for a serving hot loop. [`EvalArena`] is a
//! small free-list of `f32` buffers plus one shared im2col scratch
//! buffer. Layers implementing [`crate::Layer::eval_into`] acquire output
//! buffers from the arena, compute in place or via the `*_into` kernels
//! (`p3d_tensor::gemm_into`, [`crate::im2col::im2col_into`]), and release
//! their inputs back for reuse.
//!
//! The first clip through a network grows every buffer to its high-water
//! mark (each growth recorded in [`ArenaStats::grow_events`]); because a
//! network's acquire/release sequence is identical for every same-shaped
//! clip, the steady state performs **zero heap allocations per clip** —
//! the property asserted by the `infer_alloc` integration test.

use p3d_tensor::Shape;

/// Handle to one buffer inside an [`EvalArena`].
///
/// Plain index, deliberately `Copy`; validity is only meaningful against
/// the arena that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufId(usize);

struct Buf {
    data: Vec<f32>,
    /// Logical length (`<= data.len()`); `data` only ever grows.
    len: usize,
    shape: Shape,
    in_use: bool,
}

/// Cumulative allocation statistics for one arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Times any buffer (or the scratch) had to grow — i.e. heap
    /// allocations attributable to the arena. Stable after warmup.
    pub grow_events: usize,
    /// Calls that fell back to the default allocating `eval_into` path
    /// (a layer without an arena-aware override).
    pub fallback_events: usize,
    /// Buffers currently held by the arena.
    pub buffers: usize,
    /// Total `f32` capacity across all buffers plus scratch.
    pub capacity: usize,
}

/// A reusable pool of activation buffers plus one im2col scratch buffer.
pub struct EvalArena {
    bufs: Vec<Buf>,
    scratch: Vec<f32>,
    grow_events: usize,
    fallback_events: usize,
}

impl EvalArena {
    /// An empty arena; buffers appear on first use.
    pub fn new() -> Self {
        EvalArena {
            bufs: Vec::new(),
            scratch: Vec::new(),
            grow_events: 0,
            fallback_events: 0,
        }
    }

    /// Marks every buffer free (capacity is retained). Call once per
    /// clip before [`EvalArena::load_clip`].
    pub fn reset(&mut self) {
        for b in &mut self.bufs {
            b.in_use = false;
        }
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            grow_events: self.grow_events,
            fallback_events: self.fallback_events,
            buffers: self.bufs.len(),
            capacity: self.bufs.iter().map(|b| b.data.len()).sum::<usize>()
                + self.scratch.len(),
        }
    }

    /// Records one allocating-fallback `eval_into` call (used by the
    /// default trait implementation).
    pub fn note_fallback(&mut self) {
        self.fallback_events += 1;
    }

    /// Acquires a buffer of `shape`, reusing a free one when possible.
    ///
    /// Contents are unspecified (possibly stale) — every `eval_into`
    /// kernel fully overwrites its output.
    pub fn acquire(&mut self, shape: Shape) -> BufId {
        let want = shape.len();
        // Best-fit among free buffers with enough capacity; otherwise
        // grow the largest free buffer; otherwise add a new one.
        let mut best: Option<(usize, usize)> = None; // (idx, capacity)
        let mut largest_free: Option<(usize, usize)> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            if b.in_use {
                continue;
            }
            let cap = b.data.len();
            let better_fit = match best {
                None => cap >= want,
                Some((_, c)) => cap >= want && cap < c,
            };
            if better_fit {
                best = Some((i, cap));
            }
            let larger = match largest_free {
                None => true,
                Some((_, c)) => cap > c,
            };
            if larger {
                largest_free = Some((i, cap));
            }
        }
        let idx = match best.or(largest_free) {
            Some((i, _)) => i,
            None => {
                self.grow_events += 1;
                self.bufs.push(Buf {
                    data: Vec::new(),
                    len: 0,
                    shape,
                    in_use: false,
                });
                self.bufs.len() - 1
            }
        };
        let b = &mut self.bufs[idx];
        if b.data.len() < want {
            self.grow_events += 1;
            b.data.resize(want, 0.0);
        }
        b.len = want;
        b.shape = shape;
        b.in_use = true;
        BufId(idx)
    }

    /// Returns a buffer to the free list.
    pub fn release(&mut self, id: BufId) {
        self.bufs[id.0].in_use = false;
    }

    /// Copies a clip into a freshly acquired buffer.
    pub fn load_clip(&mut self, clip: &p3d_tensor::Tensor) -> BufId {
        let id = self.acquire(clip.shape());
        self.bufs[id.0].data[..clip.len()].copy_from_slice(clip.data());
        id
    }

    /// The buffer's shape.
    pub fn shape(&self, id: BufId) -> Shape {
        self.bufs[id.0].shape
    }

    /// Reinterprets the buffer with an equal-length shape (Flatten's
    /// zero-cost path).
    ///
    /// # Panics
    ///
    /// Panics if the element count differs.
    pub fn set_shape(&mut self, id: BufId, shape: Shape) {
        let b = &mut self.bufs[id.0];
        assert_eq!(shape.len(), b.len, "set_shape length mismatch");
        b.shape = shape;
    }

    /// Read access to a buffer.
    pub fn buf(&self, id: BufId) -> &[f32] {
        let b = &self.bufs[id.0];
        &b.data[..b.len]
    }

    /// Write access to a buffer.
    pub fn buf_mut(&mut self, id: BufId) -> &mut [f32] {
        let b = &mut self.bufs[id.0];
        &mut b.data[..b.len]
    }

    /// Simultaneous read access to `src` and write access to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn pair(&mut self, src: BufId, dst: BufId) -> (&[f32], &mut [f32]) {
        assert_ne!(src.0, dst.0, "pair requires distinct buffers");
        if src.0 < dst.0 {
            let (head, tail) = self.bufs.split_at_mut(dst.0);
            let s = &head[src.0];
            let d = &mut tail[0];
            (&s.data[..s.len], &mut d.data[..d.len])
        } else {
            let (head, tail) = self.bufs.split_at_mut(src.0);
            let s = &tail[0];
            let d = &mut head[dst.0];
            (&s.data[..s.len], &mut d.data[..d.len])
        }
    }

    /// Grows the shared scratch buffer to at least `len` elements.
    /// Contents are unspecified; kernels must overwrite what they read.
    pub fn ensure_scratch(&mut self, len: usize) {
        if self.scratch.len() < len {
            self.grow_events += 1;
            self.scratch.resize(len, 0.0);
        }
    }

    /// `(src, scratch, dst)` views for the Conv3d hot path: read the
    /// input buffer, unfold into scratch, GEMM into the output buffer.
    ///
    /// Call [`EvalArena::ensure_scratch`] first; `scratch_len` selects
    /// the prefix handed out.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or the scratch is too short.
    pub fn conv_views(
        &mut self,
        src: BufId,
        dst: BufId,
        scratch_len: usize,
    ) -> (&[f32], &mut [f32], &mut [f32]) {
        assert_ne!(src.0, dst.0, "conv_views requires distinct buffers");
        assert!(
            self.scratch.len() >= scratch_len,
            "conv_views: call ensure_scratch first"
        );
        let EvalArena { bufs, scratch, .. } = self;
        let (s, d) = if src.0 < dst.0 {
            let (head, tail) = bufs.split_at_mut(dst.0);
            let s = &head[src.0];
            let d = &mut tail[0];
            (&s.data[..s.len], &mut d.data[..d.len])
        } else {
            let (head, tail) = bufs.split_at_mut(src.0);
            let s = &tail[0];
            let d = &mut head[dst.0];
            (&s.data[..s.len], &mut d.data[..d.len])
        };
        (s, &mut scratch[..scratch_len], d)
    }

    /// Copies `src` into a newly acquired buffer of the same shape
    /// (used by residual blocks to save the block input for the
    /// shortcut path).
    pub fn duplicate(&mut self, src: BufId) -> BufId {
        let shape = self.shape(src);
        let copy = self.acquire(shape);
        let (s, d) = self.pair(src, copy);
        d.copy_from_slice(s);
        copy
    }
}

impl Default for EvalArena {
    fn default() -> Self {
        EvalArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_tensor::Tensor;

    #[test]
    fn acquire_reuses_released_buffers() {
        let mut a = EvalArena::new();
        let b1 = a.acquire(Shape::d2(4, 4));
        a.release(b1);
        let before = a.stats().grow_events;
        let b2 = a.acquire(Shape::d2(2, 8));
        assert_eq!(b1, b2, "same capacity buffer must be reused");
        assert_eq!(a.stats().grow_events, before, "reuse must not grow");
    }

    #[test]
    fn steady_state_does_not_grow() {
        let mut a = EvalArena::new();
        // Simulate two layers' acquire/release pattern over 3 "clips".
        let mut grows = Vec::new();
        for _ in 0..3 {
            a.reset();
            let x = a.acquire(Shape::d1(100));
            let y = a.acquire(Shape::d1(60));
            a.release(x);
            let z = a.acquire(Shape::d1(100));
            a.release(y);
            a.release(z);
            grows.push(a.stats().grow_events);
        }
        assert_eq!(grows[1], grows[0], "second clip must not allocate");
        assert_eq!(grows[2], grows[0], "third clip must not allocate");
    }

    #[test]
    fn load_clip_roundtrip() {
        let mut a = EvalArena::new();
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let id = a.load_clip(&t);
        assert_eq!(a.buf(id), t.data());
        assert_eq!(a.shape(id), t.shape());
    }

    #[test]
    fn pair_splits_borrows_both_orders() {
        let mut a = EvalArena::new();
        let x = a.acquire(Shape::d1(3));
        let y = a.acquire(Shape::d1(3));
        a.buf_mut(x).copy_from_slice(&[1., 2., 3.]);
        {
            let (s, d) = a.pair(x, y);
            d.copy_from_slice(s);
        }
        {
            let (s, d) = a.pair(y, x);
            assert_eq!(s, &[1., 2., 3.]);
            d[0] = 9.0;
        }
        assert_eq!(a.buf(x)[0], 9.0);
    }

    #[test]
    fn set_shape_is_length_checked() {
        let mut a = EvalArena::new();
        let x = a.acquire(Shape::d2(2, 3));
        a.set_shape(x, Shape::d1(6));
        assert_eq!(a.shape(x).dims(), &[6]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_shape_rejects_bad_length() {
        let mut a = EvalArena::new();
        let x = a.acquire(Shape::d2(2, 3));
        a.set_shape(x, Shape::d1(7));
    }

    #[test]
    fn duplicate_copies_contents() {
        let mut a = EvalArena::new();
        let t = Tensor::from_vec([4], vec![1., -2., 3., -4.]);
        let x = a.load_clip(&t);
        let c = a.duplicate(x);
        assert_ne!(x, c);
        assert_eq!(a.buf(c), t.data());
    }
}
