//! im2col / col2im lowering for 3D convolution.
//!
//! A 3D convolution over a `[N, Di, Hi, Wi]` volume with kernel
//! `(Kd, Kr, Kc)` is lowered to a matrix multiply: the input is unfolded
//! into a `[N*Kd*Kr*Kc, Do*Ho*Wo]` column matrix, the weights are viewed
//! as `[M, N*Kd*Kr*Kc]`, and the product is the `[M, Do*Ho*Wo]` output.
//! `col2im` is the adjoint (scatter-add) used by the backward pass.

use p3d_tensor::{Shape, Tensor};

/// Geometry of one 3D convolution, shared by forward and backward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub channels: usize,
    /// Input extents (depth, height, width).
    pub input: (usize, usize, usize),
    /// Kernel extents.
    pub kernel: (usize, usize, usize),
    /// Strides.
    pub stride: (usize, usize, usize),
    /// Symmetric zero padding per side.
    pub pad: (usize, usize, usize),
}

impl ConvGeometry {
    /// Output extents (depth, height, width).
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel in any axis.
    pub fn output(&self) -> (usize, usize, usize) {
        let o = |i: usize, k: usize, s: usize, p: usize| {
            p3d_tensor::shape::conv_out(i, k, s, p)
        };
        (
            o(self.input.0, self.kernel.0, self.stride.0, self.pad.0),
            o(self.input.1, self.kernel.1, self.stride.1, self.pad.1),
            o(self.input.2, self.kernel.2, self.stride.2, self.pad.2),
        )
    }

    /// Rows of the column matrix: `N * Kd * Kr * Kc`.
    pub fn col_rows(&self) -> usize {
        self.channels * self.kernel.0 * self.kernel.1 * self.kernel.2
    }

    /// Columns of the column matrix: `Do * Ho * Wo`.
    pub fn col_cols(&self) -> usize {
        let (d, h, w) = self.output();
        d * h * w
    }
}

/// Unfolds one `[N, Di, Hi, Wi]` volume (flat slice) into a column matrix
/// `[N*Kd*Kr*Kc, Do*Ho*Wo]`. Out-of-bounds (padding) positions read zero.
pub fn im2col(input: &[f32], geom: &ConvGeometry) -> Tensor {
    let rows = geom.col_rows();
    let cols = geom.col_cols();
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(input, geom, &mut out);
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Allocation-free [`im2col`] into a caller-provided buffer of length
/// `col_rows() * col_cols()`.
///
/// Every position is written — padding positions get an **explicit**
/// zero rather than relying on a pre-zeroed buffer — so a scratch buffer
/// reused across forwards (the inference arena's steady state) needs no
/// clearing between calls.
///
/// # Panics
///
/// Panics if `out` has the wrong length.
pub fn im2col_into(input: &[f32], geom: &ConvGeometry, out: &mut [f32]) {
    let (n, (di, hi, wi)) = (geom.channels, geom.input);
    let (kd, kr, kc) = geom.kernel;
    let (sd, sr, sc) = geom.stride;
    let (pd, pr, pc) = geom.pad;
    let (od, oh, ow) = geom.output();
    debug_assert_eq!(input.len(), n * di * hi * wi);

    let cols = geom.col_cols();
    assert_eq!(
        out.len(),
        geom.col_rows() * cols,
        "im2col_into: out buffer length mismatch"
    );

    let mut row = 0usize;
    for ch in 0..n {
        let ch_base = ch * di * hi * wi;
        for kd_i in 0..kd {
            for kr_i in 0..kr {
                for kc_i in 0..kc {
                    let row_base = row * cols;
                    let mut col = 0usize;
                    for od_i in 0..od {
                        let d = (od_i * sd + kd_i) as isize - pd as isize;
                        let d_ok = d >= 0 && (d as usize) < di;
                        for oh_i in 0..oh {
                            let h = (oh_i * sr + kr_i) as isize - pr as isize;
                            let h_ok = h >= 0 && (h as usize) < hi;
                            if !(d_ok && h_ok) {
                                out[row_base + col..row_base + col + ow].fill(0.0);
                                col += ow;
                                continue;
                            }
                            let plane = ch_base + d as usize * hi * wi + h as usize * wi;
                            for ow_i in 0..ow {
                                let w = (ow_i * sc + kc_i) as isize - pc as isize;
                                out[row_base + col] = if w >= 0 && (w as usize) < wi {
                                    input[plane + w as usize]
                                } else {
                                    0.0
                                };
                                col += 1;
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a column-matrix gradient back into
/// an input-shaped gradient buffer (flat `[N, Di, Hi, Wi]`).
pub fn col2im(cols_grad: &Tensor, geom: &ConvGeometry, input_grad: &mut [f32]) {
    let (n, (di, hi, wi)) = (geom.channels, geom.input);
    let (kd, kr, kc) = geom.kernel;
    let (sd, sr, sc) = geom.stride;
    let (pd, pr, pc) = geom.pad;
    let (od, oh, ow) = geom.output();
    let cols = geom.col_cols();
    debug_assert_eq!(cols_grad.shape().dims(), &[geom.col_rows(), cols]);
    debug_assert_eq!(input_grad.len(), n * di * hi * wi);
    let data = cols_grad.data();

    let mut row = 0usize;
    for ch in 0..n {
        let ch_base = ch * di * hi * wi;
        for kd_i in 0..kd {
            for kr_i in 0..kr {
                for kc_i in 0..kc {
                    let row_base = row * cols;
                    let mut col = 0usize;
                    for od_i in 0..od {
                        let d = (od_i * sd + kd_i) as isize - pd as isize;
                        let d_ok = d >= 0 && (d as usize) < di;
                        for oh_i in 0..oh {
                            let h = (oh_i * sr + kr_i) as isize - pr as isize;
                            let h_ok = h >= 0 && (h as usize) < hi;
                            if !(d_ok && h_ok) {
                                col += ow;
                                continue;
                            }
                            let plane = ch_base + d as usize * hi * wi + h as usize * wi;
                            for ow_i in 0..ow {
                                let w = (ow_i * sc + kc_i) as isize - pc as isize;
                                if w >= 0 && (w as usize) < wi {
                                    input_grad[plane + w as usize] += data[row_base + col];
                                }
                                col += 1;
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_1ch() -> ConvGeometry {
        ConvGeometry {
            channels: 1,
            input: (1, 3, 3),
            kernel: (1, 2, 2),
            stride: (1, 1, 1),
            pad: (0, 0, 0),
        }
    }

    #[test]
    fn output_shape() {
        let g = ConvGeometry {
            channels: 3,
            input: (16, 112, 112),
            kernel: (1, 7, 7),
            stride: (1, 2, 2),
            pad: (0, 3, 3),
        };
        assert_eq!(g.output(), (16, 56, 56));
        assert_eq!(g.col_rows(), 3 * 49);
        assert_eq!(g.col_cols(), 16 * 56 * 56);
    }

    #[test]
    fn im2col_2x2_window() {
        // 3x3 single-channel image, 2x2 kernel, no pad: 4 output positions.
        let input: Vec<f32> = (1..=9).map(|x| x as f32).collect();
        let cols = im2col(&input, &geom_1ch());
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // Row 0 is kernel offset (0,0,0): top-left of each window.
        assert_eq!(&cols.data()[0..4], &[1., 2., 4., 5.]);
        // Row 3 is offset (0,1,1): bottom-right of each window.
        assert_eq!(&cols.data()[12..16], &[5., 6., 8., 9.]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let g = ConvGeometry {
            channels: 1,
            input: (1, 2, 2),
            kernel: (1, 3, 3),
            stride: (1, 1, 1),
            pad: (0, 1, 1),
        };
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&input, &g);
        assert_eq!(cols.shape().dims(), &[9, 4]);
        // Kernel offset (0,0,0) with pad 1: only the bottom-right output
        // position (1,1) maps inside, to input (0,0).
        assert_eq!(&cols.data()[0..4], &[0., 0., 0., 1.]);
        // Centre tap (0,1,1) is the identity.
        let centre = 4 * 4;
        assert_eq!(&cols.data()[centre..centre + 4], &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_temporal_axis() {
        // Two frames, 1x1 spatial, temporal kernel 2.
        let g = ConvGeometry {
            channels: 1,
            input: (3, 1, 1),
            kernel: (2, 1, 1),
            stride: (1, 1, 1),
            pad: (0, 0, 0),
        };
        let input = vec![10.0, 20.0, 30.0];
        let cols = im2col(&input, &g);
        assert_eq!(cols.shape().dims(), &[2, 2]);
        assert_eq!(cols.data(), &[10., 20., 20., 30.]);
    }

    #[test]
    fn im2col_into_overwrites_stale_buffer() {
        // A reused (dirty) buffer must produce exactly the same matrix as
        // a fresh allocation — padding positions are written explicitly.
        let g = ConvGeometry {
            channels: 2,
            input: (2, 3, 3),
            kernel: (2, 2, 2),
            stride: (1, 1, 1),
            pad: (1, 1, 1),
        };
        let input: Vec<f32> = (0..2 * 2 * 3 * 3).map(|x| x as f32 - 7.0).collect();
        let fresh = im2col(&input, &g);
        let mut dirty = vec![f32::NAN; g.col_rows() * g.col_cols()];
        im2col_into(&input, &g, &mut dirty);
        assert_eq!(dirty.as_slice(), fresh.data());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property of the adjoint, checked on a small random case.
        use p3d_tensor::TensorRng;
        let g = ConvGeometry {
            channels: 2,
            input: (3, 4, 4),
            kernel: (2, 2, 2),
            stride: (1, 2, 2),
            pad: (1, 0, 1),
        };
        let mut rng = TensorRng::seed(11);
        let x = rng.uniform_tensor([2 * 3 * 4 * 4], -1.0, 1.0);
        let y = rng.uniform_tensor([g.col_rows() * g.col_cols()], -1.0, 1.0);
        let cols = im2col(x.data(), &g);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let y_mat = y.reshape([g.col_rows(), g.col_cols()]);
        let mut back = vec![0.0f32; x.len()];
        col2im(&y_mat, &g, &mut back);
        let rhs: f32 = back.iter().zip(x.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
