//! Full-training-state checkpointing.
//!
//! A [`Checkpoint`] captures the *model* (parameters, masks, batch-norm
//! statistics); resuming an interrupted training run additionally needs
//! the *trainer* — SGD velocity buffers, the current learning rate, the
//! shuffling RNG, the LR-schedule position, and (for ADMM runs) the
//! per-layer dual state. [`TrainState`] routes all of those through the
//! same named-tensor container and the same crash-safe `P3DCKPT2` file
//! format, so one atomic file holds everything needed to reproduce the
//! uninterrupted trajectory bitwise.
//!
//! # Key namespace
//!
//! Model tensors keep their natural names (`conv2_1a.spatial.weight`,
//! `bn1.running_mean`, `{param}.mask`). Non-model state lives under
//! reserved prefixes:
//!
//! | prefix       | contents                                              |
//! |--------------|-------------------------------------------------------|
//! | `opt.`       | optimiser: `opt.hyper` (lr/momentum/wd), `opt.velocity.{param}` |
//! | `trainer.`   | `trainer.rng` (shuffle RNG), `trainer.batch`          |
//! | `sched.`     | `sched.params` (LR schedule), `sched.epoch`           |
//! | `admm.`      | per-layer ADMM state (`z`, `v`, `meta`, `keep`) and progress |
//! | `progress.`  | free-form phase counters                              |
//!
//! Exact integers and `f64`s are stored losslessly by bit-packing into
//! `f32` lanes ([`pack_u64s`] / [`unpack_u64s`]); the file format only
//! moves raw bytes, so the packing round-trips exactly.

use crate::checkpoint::{Checkpoint, RestoreReport};
use crate::layer::Layer;
use crate::schedule::LrSchedule;
use crate::trainer::Trainer;
use p3d_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

/// Key prefixes reserved for non-model training state.
pub const RESERVED_PREFIXES: &[&str] = &["opt.", "trainer.", "sched.", "admm.", "progress."];

/// `true` when `name` belongs to the reserved (non-model) namespace.
pub fn is_reserved_key(name: &str) -> bool {
    RESERVED_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Packs `u64` values losslessly into an `f32` tensor (two 32-bit lanes
/// per value, low half first) for storage in a [`Checkpoint`].
///
/// # Panics
///
/// Panics on an empty slice (zero-length tensors are not representable).
pub fn pack_u64s(vals: &[u64]) -> Tensor {
    assert!(!vals.is_empty(), "cannot pack an empty u64 slice");
    let mut data = Vec::with_capacity(vals.len() * 2);
    for &v in vals {
        data.push(f32::from_bits((v & 0xFFFF_FFFF) as u32));
        data.push(f32::from_bits((v >> 32) as u32));
    }
    Tensor::from_vec([data.len()], data)
}

/// Reverses [`pack_u64s`]. Returns `None` when the tensor does not have
/// an even number of lanes.
pub fn unpack_u64s(t: &Tensor) -> Option<Vec<u64>> {
    let d = t.data();
    if d.is_empty() || !d.len().is_multiple_of(2) {
        return None;
    }
    Some(
        d.chunks_exact(2)
            .map(|c| (c[0].to_bits() as u64) | ((c[1].to_bits() as u64) << 32))
            .collect(),
    )
}

/// The complete state of an interrupted training run.
///
/// Thin wrapper over [`Checkpoint`] that adds the reserved-key
/// conventions and typed accessors for trainer/optimiser/schedule state.
/// Serialisation (atomic save, checksummed hardened load, v1 fallback)
/// is inherited from [`Checkpoint`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainState {
    /// The underlying named-tensor container.
    pub ckpt: Checkpoint,
}

impl TrainState {
    /// An empty training state.
    pub fn new() -> Self {
        TrainState::default()
    }

    /// Wraps an already-loaded checkpoint.
    pub fn from_checkpoint(ckpt: Checkpoint) -> Self {
        TrainState { ckpt }
    }

    /// Inserts (or replaces) a named tensor.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.ckpt.tensors.insert(name.into(), t);
    }

    /// Looks up a named tensor.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.ckpt.tensors.get(name)
    }

    /// Stores exact `u64` counters under `name`.
    pub fn set_u64s(&mut self, name: impl Into<String>, vals: &[u64]) {
        self.insert(name, pack_u64s(vals));
    }

    /// Reads exact `u64` counters stored by [`TrainState::set_u64s`].
    pub fn u64s(&self, name: &str) -> Option<Vec<u64>> {
        self.get(name).and_then(unpack_u64s)
    }

    // -- capture ------------------------------------------------------

    /// Captures the model: parameters, pruning masks, exported state.
    pub fn capture_model(&mut self, network: &mut dyn Layer) {
        let model = Checkpoint::capture(network);
        self.ckpt.tensors.extend(model.tensors);
    }

    /// Captures the trainer: shuffle-RNG state, batch size, and the
    /// optimiser (velocity buffers + hyper-parameters).
    pub fn capture_trainer(&mut self, trainer: &Trainer) {
        self.set_u64s("trainer.rng", &trainer.rng_state());
        self.set_u64s("trainer.batch", &[trainer.batch_size as u64]);
        trainer.optimizer.export_state(&mut self.ckpt.tensors);
    }

    /// Captures an LR schedule and the current 0-based epoch position.
    pub fn capture_schedule(&mut self, schedule: &LrSchedule, epoch: usize) {
        self.insert("sched.params", schedule.to_tensor());
        self.set_u64s("sched.epoch", &[epoch as u64]);
    }

    // -- restore ------------------------------------------------------

    /// Restores the model tensors, ignoring the reserved non-model keys.
    ///
    /// Shape mismatches are reported in
    /// [`RestoreReport::mismatched`], not panicked on.
    pub fn restore_model(&self, network: &mut dyn Layer) -> RestoreReport {
        let mut report = self.ckpt.try_restore(network);
        report.unused.retain(|n| !is_reserved_key(n));
        report
    }

    /// Restores the trainer: RNG stream, batch size check, optimiser
    /// velocity and learning rate.
    ///
    /// # Errors
    ///
    /// `InvalidData` when trainer state is absent or malformed, or when
    /// the stored batch size disagrees with the live trainer (resuming
    /// with a different batch size silently changes the trajectory).
    pub fn restore_trainer(&self, trainer: &mut Trainer) -> io::Result<()> {
        let rng = self
            .u64s("trainer.rng")
            .filter(|v| v.len() == 4)
            .ok_or_else(|| bad_state("trainer.rng missing or malformed"))?;
        let batch = self
            .u64s("trainer.batch")
            .and_then(|v| v.first().copied())
            .ok_or_else(|| bad_state("trainer.batch missing or malformed"))?;
        if batch as usize != trainer.batch_size {
            return Err(bad_state(format!(
                "batch size mismatch: checkpoint {batch}, trainer {}",
                trainer.batch_size
            )));
        }
        trainer.optimizer.import_state(&self.ckpt.tensors)?;
        trainer.set_rng_state([rng[0], rng[1], rng[2], rng[3]]);
        Ok(())
    }

    /// Reads back the schedule and epoch stored by
    /// [`TrainState::capture_schedule`].
    pub fn schedule(&self) -> Option<(LrSchedule, usize)> {
        let sched = LrSchedule::from_tensor(self.get("sched.params")?)?;
        let epoch = self.u64s("sched.epoch")?.first().copied()? as usize;
        Some((sched, epoch))
    }

    // -- serialisation (delegated to Checkpoint) ----------------------

    /// Serialises to any writer (`P3DCKPT2`).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        self.ckpt.write_to(w)
    }

    /// Deserialises from any reader (hardened; accepts v1 and v2).
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        Ok(TrainState {
            ckpt: Checkpoint::read_from(r)?,
        })
    }

    /// Atomically saves to a file (write `*.tmp`, fsync, rename).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.ckpt.save(path)
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(TrainState {
            ckpt: Checkpoint::load(path)?,
        })
    }
}

fn bad_state(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Sequential;
    use crate::linear::{Flatten, Linear};
    use crate::loss::CrossEntropyLoss;
    use crate::optim::Sgd;
    use p3d_tensor::TensorRng;

    #[test]
    fn u64_packing_is_lossless() {
        let vals = [0u64, 1, 42, u64::MAX, 0x8000_0000_0000_0001, 7_777_777];
        let t = pack_u64s(&vals);
        // Round-trip through serialisation too: the lanes may be NaN or
        // denormal bit patterns and must survive the file format.
        let mut ck = Checkpoint::default();
        ck.tensors.insert("x".into(), t);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut &buf[..]).unwrap();
        assert_eq!(unpack_u64s(&back.tensors["x"]).unwrap(), vals);
    }

    #[test]
    fn f64_bits_roundtrip_through_packing() {
        for x in [0.9f64, 0.8, 1.0 / 3.0, f64::MIN_POSITIVE] {
            let t = pack_u64s(&[x.to_bits()]);
            let back = f64::from_bits(unpack_u64s(&t).unwrap()[0]);
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn trainer_roundtrip_resumes_rng_and_velocity() {
        let mut rng = TensorRng::seed(1);
        let mut net = Sequential::new()
            .push(Flatten::new())
            .push(Linear::new("fc", 2, 4, true, &mut rng));
        let mut trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.05, 0.9, 1e-4), 4, 3);
        // A few steps so velocity and RNG are warm.
        let data = crate::trainer::ToyDataset::new(16);
        for _ in 0..3 {
            trainer.train_epoch(&mut net, &data, None);
        }

        let mut state = TrainState::new();
        state.capture_model(&mut net);
        state.capture_trainer(&trainer);
        state.set_u64s("progress.epoch", &[3]);

        // Serialise through bytes.
        let mut buf = Vec::new();
        state.write_to(&mut buf).unwrap();
        let state = TrainState::read_from(&mut &buf[..]).unwrap();

        // Rebuild everything from scratch with *different* seeds.
        let mut rng2 = TensorRng::seed(99);
        let mut net2 = Sequential::new()
            .push(Flatten::new())
            .push(Linear::new("fc", 2, 4, true, &mut rng2));
        let mut trainer2 =
            Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.05, 0.9, 1e-4), 4, 777);
        let report = state.restore_model(&mut net2);
        assert!(report.mismatched.is_empty());
        state.restore_trainer(&mut trainer2).unwrap();
        assert_eq!(state.u64s("progress.epoch"), Some(vec![3]));

        // Both trainers now produce bitwise-identical epochs.
        let a = trainer.train_epoch(&mut net, &data, None);
        let b = trainer2.train_epoch(&mut net2, &data, None);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss diverged");
        let wa = Checkpoint::capture(&mut net);
        let wb = Checkpoint::capture(&mut net2);
        assert_eq!(wa, wb, "weights diverged after resume");
    }

    #[test]
    fn restore_trainer_rejects_batch_mismatch() {
        let trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.05, 0.9, 0.0), 4, 3);
        let mut state = TrainState::new();
        state.capture_trainer(&trainer);
        let mut other = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.05, 0.9, 0.0), 8, 3);
        assert!(state.restore_trainer(&mut other).is_err());
    }

    #[test]
    fn schedule_roundtrip() {
        let s = LrSchedule::WarmupCosine {
            base_lr: 0.1,
            warmup_epochs: 3,
            total_epochs: 30,
            min_lr: 1e-5,
        };
        let mut state = TrainState::new();
        state.capture_schedule(&s, 17);
        let mut buf = Vec::new();
        state.write_to(&mut buf).unwrap();
        let back = TrainState::read_from(&mut &buf[..]).unwrap();
        let (s2, epoch) = back.schedule().unwrap();
        assert_eq!(s2, s);
        assert_eq!(epoch, 17);
    }

    #[test]
    fn reserved_keys_do_not_pollute_unused() {
        let mut rng = TensorRng::seed(5);
        let mut net = Sequential::new()
            .push(Flatten::new())
            .push(Linear::new("fc", 2, 4, true, &mut rng));
        let trainer = Trainer::new(CrossEntropyLoss::new(), Sgd::new(0.05, 0.9, 0.0), 4, 3);
        let mut state = TrainState::new();
        state.capture_model(&mut net);
        state.capture_trainer(&trainer);
        let report = state.restore_model(&mut net);
        assert!(report.unused.is_empty(), "unused: {:?}", report.unused);
        assert!(report.missing.is_empty());
    }
}
