//! Counts heap allocations in the steady-state streaming-ingest path.
//!
//! Once the [`Prefetcher`]'s decode workers are running and the
//! [`ClipArena`] has grown to its working set, streaming further clips
//! — frame reads off the file, CRC verification, the fused
//! resize/crop/normalize into an arena buffer, the hand-off through
//! the bounded reorder ring, and the buffer's return on release — must
//! perform **zero** heap allocations on any thread. The counting
//! allocator is process-global, so decode-worker allocations count
//! exactly like consumer-side ones.
//!
//! This file intentionally holds a single `#[test]`: a concurrent test
//! allocating on another thread would produce false positives.

use p3d_tensor::TensorRng;
use p3d_video_data::io::{
    save_video, ClipArena, PrefetchConfig, Prefetcher, PreprocessConfig, VidHeader,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Forwards to the system allocator, counting allocations while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_streaming_ingest_is_allocation_free() {
    const SRC_W: u32 = 24;
    const SRC_H: u32 = 20;
    const FRAMES: u32 = 128; // 32 clips of 4 frames
    const CLIP_DEPTH: usize = 4;

    let path = std::env::temp_dir().join(format!(
        "p3d-zero-alloc-ingest-{}.p3dvid",
        std::process::id()
    ));
    let header = VidHeader::gray8(SRC_W, SRC_H, FRAMES, 30_000);
    let mut rng = TensorRng::seed(9);
    let frames: Vec<Vec<u8>> = (0..FRAMES)
        .map(|_| {
            (0..header.frame_bytes())
                .map(|_| rng.below(256) as u8)
                .collect()
        })
        .collect();
    save_video(&path, header, frames.iter().map(|f| f.as_slice())).unwrap();

    let preprocess = PreprocessConfig {
        resize_h: 12,
        resize_w: 14,
        crop_h: 8,
        crop_w: 8,
    };
    let cfg = PrefetchConfig {
        depth: 3,
        workers: 2,
        clip_depth: CLIP_DEPTH,
        preprocess,
        fault_clip: None,
    };
    let arena = ClipArena::new(cfg.clip_shape(), cfg.depth + 1);
    let mut pipe = Prefetcher::open(&path, cfg, arena).unwrap();
    let total = pipe.total_clips() as usize;
    assert_eq!(total, 32);

    // Warm-up: the first clips spawn nothing new (workers started at
    // `open`) but let every worker size its frame buffer and let the
    // arena settle at its working set.
    let mut consumed = 0usize;
    let mut checksum = 0.0f64;
    while consumed < 8 {
        let clip = pipe.next_clip().unwrap().expect("warm-up clip");
        checksum += clip.data()[0] as f64;
        consumed += 1;
    }
    let grow_before = pipe.arena().stats().grow_events;

    // Armed window: a long mid-stream stretch must not allocate, on
    // the consumer thread or inside the decode workers.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    while consumed < 28 {
        let clip = pipe.next_clip().unwrap().expect("steady-state clip");
        checksum += clip.data()[0] as f64;
        consumed += 1;
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    // Drain the tail and the end-of-stream marker unarmed.
    while pipe.next_clip().unwrap().is_some() {
        consumed += 1;
    }
    assert_eq!(consumed, total);
    assert!(checksum.is_finite());

    assert_eq!(
        allocs, 0,
        "steady-state streaming ingest performed {allocs} heap allocations"
    );
    assert_eq!(
        pipe.arena().stats().grow_events,
        grow_before,
        "the arena grew mid-stream"
    );

    drop(pipe);
    let _ = std::fs::remove_file(&path);
}
