//! End-to-end pipeline proofs for the streaming ingest data plane:
//!
//! * clips coming out of the N-deep prefetch pipeline are bitwise
//!   identical to the serial reference decode at every worker count
//!   and ring depth,
//! * a warm shared arena never grows again (the zero-steady-state-
//!   alloc contract, also proven by counting allocator in `p3d-infer`),
//! * a decode worker that fails or panics mid-clip poisons the ring
//!   (consumer errors instead of deadlocking) and returns its buffer —
//!   the ingest mirror of the EvalArena reuse-after-crash proof.

use std::path::PathBuf;

use p3d_tensor::TensorRng;
use p3d_video_data::io::{
    read_video_clips, save_video, ClipArena, PrefetchConfig, Prefetcher, PreprocessConfig,
    VidHeader,
};

const SRC_W: u32 = 24;
const SRC_H: u32 = 20;
const FRAMES: u32 = 24;
const CLIP_DEPTH: usize = 4;
const TOTAL_CLIPS: u64 = FRAMES as u64 / CLIP_DEPTH as u64;

fn preprocess() -> PreprocessConfig {
    PreprocessConfig {
        resize_h: 10,
        resize_w: 12,
        crop_h: 8,
        crop_w: 8,
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("p3d-ingest-test-{}-{tag}.p3dvid", std::process::id()))
}

/// Writes a deterministic test container and returns its path.
fn write_container(tag: &str, seed: u64) -> PathBuf {
    let mut rng = TensorRng::seed(seed);
    let header = VidHeader::gray8(SRC_W, SRC_H, FRAMES, 30_000);
    let frames: Vec<Vec<u8>> = (0..FRAMES)
        .map(|_| {
            (0..header.frame_bytes())
                .map(|_| rng.below(256) as u8)
                .collect()
        })
        .collect();
    let path = temp_path(tag);
    save_video(&path, header, frames.iter().map(|f| f.as_slice())).unwrap();
    path
}

struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn pipeline_matches_serial_reference_at_any_geometry() {
    let path = write_container("identity", 101);
    let _guard = TempFile(path.clone());
    let reference = read_video_clips(&path, CLIP_DEPTH, &preprocess()).unwrap();
    assert_eq!(reference.len() as u64, TOTAL_CLIPS);

    let mut cfg = PrefetchConfig::new(CLIP_DEPTH, preprocess());
    let arena = ClipArena::new(cfg.clip_shape(), 8);
    for workers in [1usize, 2, 3] {
        for depth in [1usize, 2, 4] {
            cfg.workers = workers;
            cfg.depth = depth;
            let mut p = Prefetcher::open(&path, cfg, arena.clone()).unwrap();
            assert_eq!(p.total_clips(), TOTAL_CLIPS);
            let mut n = 0usize;
            while let Some(clip) = p.next_clip().unwrap() {
                let t = clip.into_tensor();
                let expect = &reference[n];
                assert_eq!(t.shape(), expect.shape());
                assert!(
                    t.data()
                        .iter()
                        .zip(expect.data().iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "clip {n} differs at workers={workers} depth={depth}"
                );
                arena.release_tensor(t);
                n += 1;
            }
            assert_eq!(n as u64, TOTAL_CLIPS);
            let stats = p.stats();
            assert_eq!(stats.clips, TOTAL_CLIPS);
            assert_eq!(stats.frames, FRAMES as u64);
            assert!(stats.decode_busy_s >= 0.0);
        }
    }
    // 8 preallocated buffers cover every geometry above (max in-flight
    // = depth + workers + 1 held by the consumer): the arena never grew.
    assert_eq!(arena.stats().grow_events, 0, "warm arena grew");
    assert_eq!(arena.stats().free, 8, "buffers leaked");
}

#[test]
fn worker_panic_poisons_ring_and_returns_buffers() {
    let path = write_container("fault", 202);
    let _guard = TempFile(path.clone());
    let mut cfg = PrefetchConfig::new(CLIP_DEPTH, preprocess());
    cfg.workers = 2;
    cfg.depth = 2;
    cfg.fault_clip = Some(2);
    let arena = ClipArena::new(cfg.clip_shape(), 6);

    let mut p = Prefetcher::open(&path, cfg, arena.clone()).unwrap();
    let mut delivered = 0u64;
    let err = loop {
        match p.next_clip() {
            Ok(Some(clip)) => {
                drop(clip);
                delivered += 1;
            }
            Ok(None) => panic!("stream completed despite injected fault"),
            Err(e) => break e,
        }
    };
    assert!(
        err.to_string().contains("panicked"),
        "unexpected error: {err}"
    );
    assert!(delivered <= 2, "clips past the fault were delivered");
    drop(p); // joins workers

    // Every buffer came home — including the one in the panicking
    // worker's hands — and the arena never grew.
    let s = arena.stats();
    assert_eq!((s.buffers, s.free, s.grow_events), (6, 6, 0));

    // The same arena serves a clean run with bitwise-correct output.
    let reference = read_video_clips(&path, CLIP_DEPTH, &preprocess()).unwrap();
    cfg.fault_clip = None;
    let mut p = Prefetcher::open(&path, cfg, arena.clone()).unwrap();
    let mut n = 0usize;
    while let Some(clip) = p.next_clip().unwrap() {
        assert!(
            clip.data()
                .iter()
                .zip(reference[n].data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "clip {n} corrupted after crash-reuse"
        );
        drop(clip);
        n += 1;
    }
    assert_eq!(n as u64, TOTAL_CLIPS);
    assert_eq!(arena.stats().grow_events, 0);
}

#[test]
fn corrupt_record_mid_stream_surfaces_as_error() {
    let path = write_container("corrupt", 303);
    let _guard = TempFile(path.clone());
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a payload byte deep in the stream (frame 10 of 24).
    let header = VidHeader::gray8(SRC_W, SRC_H, FRAMES, 30_000);
    let off = header.frame_offset(10) as usize + 4 + 17;
    bytes[off] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    let cfg = PrefetchConfig::new(CLIP_DEPTH, preprocess());
    let arena = ClipArena::new(cfg.clip_shape(), 4);
    let mut p = Prefetcher::open(&path, cfg, arena.clone()).unwrap();
    let mut saw_error = false;
    for _ in 0..TOTAL_CLIPS + 1 {
        match p.next_clip() {
            Ok(Some(clip)) => drop(clip),
            Ok(None) => break,
            Err(e) => {
                assert!(e.to_string().contains("checksum"), "unexpected error: {e}");
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "corruption was not reported");
    drop(p);
    let s = arena.stats();
    assert_eq!(s.free, s.buffers, "buffers leaked after corruption");
}

#[test]
fn dropping_a_partially_consumed_pipeline_does_not_hang() {
    let path = write_container("early-drop", 404);
    let _guard = TempFile(path.clone());
    let mut cfg = PrefetchConfig::new(CLIP_DEPTH, preprocess());
    cfg.workers = 2;
    cfg.depth = 1; // tiny ring: producers are parked waiting right now
    let arena = ClipArena::new(cfg.clip_shape(), 4);
    let mut p = Prefetcher::open(&path, cfg, arena.clone()).unwrap();
    let first = p.next_clip().unwrap().expect("first clip");
    drop(first);
    drop(p); // must join parked workers without deadlock
    let s = arena.stats();
    assert_eq!(s.free, s.buffers, "buffers leaked on early drop");
}

#[test]
fn geometry_mismatches_are_rejected_up_front() {
    let path = write_container("geometry", 505);
    let _guard = TempFile(path.clone());
    let cfg = PrefetchConfig::new(CLIP_DEPTH, preprocess());
    // Arena of the wrong shape.
    let wrong = ClipArena::new([1, CLIP_DEPTH, 3, 3], 1);
    assert!(Prefetcher::open(&path, cfg, wrong).is_err());
    // Clip depth longer than the whole container.
    let mut long = cfg;
    long.clip_depth = FRAMES as usize + 1;
    let arena = ClipArena::new(long.clip_shape(), 1);
    assert!(Prefetcher::open(&path, long, arena).is_err());
    // Missing file.
    let arena = ClipArena::new(cfg.clip_shape(), 1);
    assert!(Prefetcher::open(&temp_path("missing"), cfg, arena).is_err());
}
