//! Format-fuzz smoke for the P3DVID1 hardened reader: every truncation
//! point, every single-byte corruption, and random garbage must resolve
//! to a clean `io::Error` — never a panic, never an unbounded
//! allocation. The ingest mirror of `checkpoint_fuzz`.

use std::io::Cursor;

use p3d_tensor::TensorRng;
use p3d_video_data::io::{VidHeader, VidReader, VidWriter};

fn sample_container(rng: &mut TensorRng, w: u32, h: u32, frames: u32) -> Vec<u8> {
    let header = VidHeader::gray8(w, h, frames, 30_000);
    let mut wtr = VidWriter::new(Vec::new(), header).unwrap();
    let mut frame = vec![0u8; header.frame_bytes()];
    for _ in 0..frames {
        for px in frame.iter_mut() {
            *px = rng.below(256) as u8;
        }
        wtr.write_frame(&frame).unwrap();
    }
    wtr.finish().unwrap()
}

/// Fully drains a reader over `bytes`; Ok(frames read) or the error.
fn drain(bytes: &[u8]) -> Result<usize, std::io::Error> {
    let mut r = VidReader::open(Cursor::new(bytes))?;
    let mut buf = Vec::new();
    let mut n = 0;
    while r.read_frame_into(&mut buf)? {
        n += 1;
    }
    Ok(n)
}

#[test]
fn every_truncation_point_errors_cleanly() {
    let mut rng = TensorRng::seed(41);
    let bytes = sample_container(&mut rng, 6, 5, 3);
    for len in 0..bytes.len() {
        let err = match drain(&bytes[..len]) {
            Ok(n) => panic!("truncated stream of {len} bytes read {n} frames"),
            Err(e) => e,
        };
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "truncation at {len} surfaced as {err}"
        );
    }
    assert_eq!(drain(&bytes).unwrap(), 3, "intact stream reads fully");
}

#[test]
fn every_single_bit_flip_is_detected() {
    let mut rng = TensorRng::seed(42);
    let bytes = sample_container(&mut rng, 4, 4, 2);
    for pos in 0..bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            // Every flip must either fail (header CRC, frame CRC,
            // index, magic) — there is no payload byte a flip can
            // silently pass through, because every byte is covered by
            // a checksum.
            assert!(
                drain(&bad).is_err(),
                "flip of bit {bit} at byte {pos} went undetected"
            );
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = TensorRng::seed(43);
    for round in 0..200 {
        let len = rng.below(200);
        let mut garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        // Half the rounds get a valid magic so parsing goes deeper.
        if round % 2 == 0 && garbage.len() >= 8 {
            garbage[..8].copy_from_slice(b"P3DVID1\0");
        }
        let _ = drain(&garbage);
    }
}

#[test]
fn oversized_declared_dims_are_rejected_before_allocation() {
    // Hand-build a header declaring absurd geometry with a valid CRC;
    // the reader must reject it from the caps, not attempt the
    // multi-gigabyte frame buffer.
    let header = VidHeader::gray8(4, 4, 1, 0);
    let mut wtr = VidWriter::new(Vec::new(), header).unwrap();
    wtr.write_frame(&[0u8; 16]).unwrap();
    let good = wtr.finish().unwrap();
    for (field_off, value) in [(8usize, 1u32 << 30), (12, 1 << 30), (16, u32::MAX)] {
        let mut bad = good.clone();
        bad[field_off..field_off + 4].copy_from_slice(&value.to_le_bytes());
        let crc = p3d_video_data::io::crc32_fast(&bad[8..28]);
        bad[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(drain(&bad).is_err(), "field at {field_off} = {value}");
    }
}
