//! Property-based tests for the synthetic video generator.

use p3d_nn::Dataset;
use p3d_video_data::{GeneratorConfig, Motion, SyntheticVideo};
use p3d_tensor::TensorRng;
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..10,   // frames
        12usize..33,  // height
        12usize..33,  // width
        1usize..=10,  // classes
        0usize..3,    // distractors
        0u8..2,       // noise on/off
    )
        .prop_map(|(frames, height, width, num_classes, distractors, noise)| GeneratorConfig {
            frames,
            height,
            width,
            num_classes,
            noise_std: if noise == 1 { 0.02 } else { 0.0 },
            speed: (1.0, 2.0),
            radius: (2.0, 3.5),
            distractors,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clips_always_well_formed(cfg in any_config(), n in 1usize..12, seed in 0u64..1000) {
        let data = SyntheticVideo::generate(&cfg, n, seed);
        prop_assert_eq!(data.len(), n);
        prop_assert_eq!(Dataset::num_classes(&data), cfg.num_classes);
        for i in 0..n {
            let (clip, label) = data.sample(i);
            prop_assert!(label < cfg.num_classes);
            let shape = clip.shape();
            prop_assert_eq!(shape.dims(), &[1, cfg.frames, cfg.height, cfg.width]);
            prop_assert!(clip.min() >= 0.0 && clip.max() <= 1.0);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_seed(cfg in any_config(), seed in 0u64..1000) {
        let a = SyntheticVideo::generate(&cfg, 4, seed);
        let b = SyntheticVideo::generate(&cfg, 4, seed);
        for i in 0..4 {
            prop_assert_eq!(a.sample(i).0, b.sample(i).0);
        }
    }

    #[test]
    fn labels_cycle_through_classes(cfg in any_config(), n in 1usize..24, seed in 0u64..100) {
        let data = SyntheticVideo::generate(&cfg, n, seed);
        for i in 0..n {
            prop_assert_eq!(data.sample(i).1, i % cfg.num_classes);
        }
    }

    #[test]
    fn every_motion_state_is_finite(
        label in 0usize..10,
        t in 0usize..32,
        sy in 4.0f32..28.0,
        sx in 4.0f32..28.0,
        speed in 0.5f32..3.0,
    ) {
        let m = Motion::ALL[label];
        let s = m.state_at(t, (sy, sx), speed, 3.0, (32, 32));
        prop_assert!(s.centre.0.is_finite() && s.centre.1.is_finite());
        prop_assert!(s.radius.is_finite() && s.radius > 0.0);
        prop_assert!((0.0..=1.0).contains(&s.visibility));
    }

    #[test]
    fn distractors_only_add_mass(seed in 0u64..300) {
        let mut base = GeneratorConfig::small();
        base.noise_std = 0.0;
        let mut cluttered = base.clone();
        cluttered.distractors = 2;
        // Same seed => identical actor; distractors can only raise pixels
        // (max blending).
        let mut r1 = TensorRng::seed(seed);
        let mut r2 = TensorRng::seed(seed);
        let plain = p3d_video_data::generator::render_clip(&base, Motion::TranslateRight, &mut r1);
        let rich = p3d_video_data::generator::render_clip(&cluttered, Motion::TranslateRight, &mut r2);
        for (a, b) in plain.data().iter().zip(rich.data()) {
            prop_assert!(b + 1e-6 >= *a, "distractor erased actor pixel");
        }
    }
}
