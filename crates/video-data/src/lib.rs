#![warn(missing_docs)]
//! Synthetic spatio-temporal action-recognition data.
//!
//! The paper trains and evaluates on UCF101 (transferred from Kinetics) —
//! datasets of real video that are far outside what a self-contained
//! reproduction can ship. This crate provides the substitution documented
//! in `DESIGN.md`: procedurally generated clips whose **class identity is
//! carried by motion, not appearance**. Every class draws the same shapes
//! at the same random starting positions; only the motion pattern
//! (translation direction, orbit handedness, scaling, blinking) differs.
//! A single frame is therefore uninformative and a classifier must use
//! temporal kernels — exactly the property that makes 3D CNNs (and the
//! preservation of their temporal kernels under pruning) testable.
//!
//! # Example
//!
//! ```
//! use p3d_video_data::{GeneratorConfig, SyntheticVideo};
//! use p3d_nn::Dataset;
//!
//! let config = GeneratorConfig::small(); // 8 frames of 24x24
//! let data = SyntheticVideo::generate(&config, 40, 7);
//! assert_eq!(data.len(), 40);
//! let (clip, label) = data.sample(0);
//! assert_eq!(clip.shape().dims(), &[1, 8, 24, 24]);
//! assert!(label < config.num_classes);
//! ```

pub mod augment;
pub mod generator;
pub mod io;
pub mod motion;

pub use generator::{GeneratorConfig, SyntheticVideo};
pub use motion::{Motion, ShapeKind};
