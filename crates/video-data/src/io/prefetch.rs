//! N-deep prefetch pipeline: decode workers ahead of an inference
//! consumer, connected by a bounded in-order ready ring.
//!
//! This is the paper's double-buffering trick lifted to the system
//! level: while the engine infers clip `k`, dedicated decode threads
//! are already reading, CRC-checking, resizing, and normalizing clips
//! `k+1 .. k+N` into arena-owned buffers, so on multi-core hosts the
//! engine never starves on input. The pool in `p3d_tensor::parallel`
//! is fork-join (callers block until their region completes), so the
//! decode side runs on its own long-lived named threads — the same
//! pattern as the HTTP accept/engine threads in `p3d-infer`.
//!
//! Ordering and determinism: worker `w` of `W` decodes clips
//! `w, w+W, w+2W, ...` from its own file handle (frame records are
//! fixed-size, so [`IndexedVidReader`] seeks freely); finished clips
//! land in ring slot `clip % N`, and the consumer takes clips strictly
//! in clip order. Output order and content are therefore independent
//! of worker count and scheduling — pinned by the pipeline-vs-serial
//! bitwise tests.
//!
//! Failure containment: a worker that hits a corrupt record or panics
//! poisons the ring; the consumer's next call returns the error
//! instead of deadlocking, and the in-flight [`ArenaClip`] returns its
//! buffer to the arena during unwind.

use std::fs::File;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use p3d_tensor::Tensor;

use super::arena::{ArenaClip, ClipArena};
use super::format::{IndexedVidReader, VidHeader, VidReader, FRAME_OVERHEAD};
use super::preprocess::{decode_frame_reference, FrameResizer, PreprocessConfig};

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Prefetch pipeline geometry.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Ready-ring depth N: how many decoded clips may sit ahead of the
    /// consumer. Bounds memory to `depth + workers` arena clips.
    pub depth: usize,
    /// Number of dedicated decode threads.
    pub workers: usize,
    /// Frames per clip (the model's temporal extent D).
    pub clip_depth: usize,
    /// Resize/crop geometry applied to every frame.
    pub preprocess: PreprocessConfig,
    /// Test-only fault injection: the worker decoding this clip index
    /// panics mid-decode, exercising poison + buffer-return paths.
    pub fault_clip: Option<u64>,
}

impl PrefetchConfig {
    /// A pipeline decoding `clip_depth`-frame clips under `preprocess`
    /// with one worker and a 4-deep ring.
    pub fn new(clip_depth: usize, preprocess: PreprocessConfig) -> PrefetchConfig {
        PrefetchConfig {
            depth: 4,
            workers: 1,
            clip_depth,
            preprocess,
            fault_clip: None,
        }
    }

    /// Checks the geometry is usable.
    pub fn validate(&self) -> io::Result<()> {
        if self.depth == 0 {
            return Err(invalid("prefetch depth must be >= 1"));
        }
        if self.workers == 0 {
            return Err(invalid("prefetch needs >= 1 decode worker"));
        }
        if self.clip_depth == 0 {
            return Err(invalid("clip depth must be >= 1"));
        }
        self.preprocess.validate()
    }

    /// The clip tensor shape `[1, D, H, W]` this pipeline produces.
    pub fn clip_shape(&self) -> [usize; 4] {
        [
            1,
            self.clip_depth,
            self.preprocess.crop_h,
            self.preprocess.crop_w,
        ]
    }
}

/// Counters describing one ingestion run.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestStats {
    /// Clips delivered to the consumer.
    pub clips: u64,
    /// Source frames decoded into those clips.
    pub frames: u64,
    /// Container bytes (payload + framing) behind those frames.
    pub src_bytes: u64,
    /// Total decode-thread busy time, summed across workers.
    pub decode_busy_s: f64,
    /// Time the consumer spent blocked waiting for the next clip.
    pub consumer_wait_s: f64,
    /// Arena grow events observed — 0 once the working set is warm.
    pub arena_grow_events: usize,
}

impl IngestStats {
    /// Fraction of decode work hidden behind the consumer's own
    /// compute, in `[0, 1]`: 1.0 means the consumer never waited, 0
    /// means every decoded second was also a second the consumer stood
    /// still. On a single-core host this is honestly ~0 — decode and
    /// inference time-slice the same CPU.
    pub fn overlap_efficiency(&self) -> f64 {
        if self.decode_busy_s <= 0.0 {
            return 0.0;
        }
        ((self.decode_busy_s - self.consumer_wait_s) / self.decode_busy_s).clamp(0.0, 1.0)
    }
}

struct RingState {
    slots: Vec<Option<ArenaClip>>,
    /// Next clip index the consumer will take.
    next_out: u64,
    decode_busy: Duration,
    failed: Option<String>,
}

struct Ring {
    state: Mutex<RingState>,
    /// Producers wait here for their slot to open.
    slot_free: Condvar,
    /// The consumer waits here for the next clip.
    slot_ready: Condvar,
    stop: AtomicBool,
}

impl Ring {
    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn poison(&self, msg: String) {
        let mut st = self.lock();
        if st.failed.is_none() {
            st.failed = Some(msg);
        }
        drop(st);
        self.slot_free.notify_all();
        self.slot_ready.notify_all();
    }
}

/// Streaming clip source over a P3DVID1 file: decode workers ahead of
/// the caller, bounded ready ring, strict clip order out.
pub struct Prefetcher {
    ring: Arc<Ring>,
    arena: ClipArena,
    workers: Vec<JoinHandle<()>>,
    header: VidHeader,
    cfg: PrefetchConfig,
    total_clips: u64,
    /// Next clip index this consumer handle will return.
    next_out: u64,
    delivered: u64,
    consumer_wait: Duration,
}

impl Prefetcher {
    /// Opens `path`, validates header/geometry against `cfg` and
    /// `arena`, and starts the decode workers.
    ///
    /// The arena is shared, not owned: callers keep it across runs so
    /// buffers warmed by one file are reused for the next.
    pub fn open(path: &Path, cfg: PrefetchConfig, arena: ClipArena) -> io::Result<Prefetcher> {
        cfg.validate()?;
        if arena.shape() != cfg.clip_shape() {
            return Err(invalid(format!(
                "arena shape {:?} does not match pipeline clip shape {:?}",
                arena.shape(),
                cfg.clip_shape()
            )));
        }
        let probe = IndexedVidReader::open(File::open(path)?)?;
        let header = *probe.header();
        drop(probe);
        // Validate resize geometry against the source dims up front so
        // workers cannot hit a construction error mid-stream.
        FrameResizer::new(header.width as usize, header.height as usize, cfg.preprocess)?;
        let total_clips = header.frames as u64 / cfg.clip_depth as u64;
        if total_clips == 0 {
            return Err(invalid(format!(
                "container holds {} frames, fewer than one {}-frame clip",
                header.frames, cfg.clip_depth
            )));
        }

        let ring = Arc::new(Ring {
            state: Mutex::new(RingState {
                slots: (0..cfg.depth).map(|_| None).collect(),
                next_out: 0,
                decode_busy: Duration::ZERO,
                failed: None,
            }),
            slot_free: Condvar::new(),
            slot_ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });

        let n_workers = cfg.workers.min(total_clips as usize);
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            // Each worker gets its own handle; open here so I/O errors
            // surface to the caller, not as a poisoned ring.
            let file = File::open(path)?;
            let ring = Arc::clone(&ring);
            let arena = arena.clone();
            let handle = std::thread::Builder::new()
                .name(format!("p3d-ingest-{w}"))
                .spawn(move || {
                    worker_loop(ring, arena, file, cfg, w as u64, n_workers as u64, total_clips)
                })
                .map_err(|e| io::Error::other(e.to_string()))?;
            workers.push(handle);
        }

        Ok(Prefetcher {
            ring,
            arena,
            workers,
            header,
            cfg,
            total_clips,
            next_out: 0,
            delivered: 0,
            consumer_wait: Duration::ZERO,
        })
    }

    /// The source container's validated header.
    pub fn header(&self) -> &VidHeader {
        &self.header
    }

    /// Clips this run will deliver (`frames / clip_depth`; trailing
    /// frames short of a full clip are ignored).
    pub fn total_clips(&self) -> u64 {
        self.total_clips
    }

    /// The shared arena feeding this pipeline.
    pub fn arena(&self) -> &ClipArena {
        &self.arena
    }

    /// Blocks for the next clip in order; `Ok(None)` once the stream
    /// is exhausted, `Err` if a worker failed or panicked.
    pub fn next_clip(&mut self) -> io::Result<Option<ArenaClip>> {
        if self.next_out == self.total_clips {
            return Ok(None);
        }
        let t0 = Instant::now();
        let slot = (self.next_out % self.cfg.depth as u64) as usize;
        let mut st = self.ring.lock();
        loop {
            if let Some(msg) = &st.failed {
                return Err(invalid(msg.clone()));
            }
            if let Some(clip) = st.slots[slot].take() {
                st.next_out += 1;
                drop(st);
                self.ring.slot_free.notify_all();
                self.next_out += 1;
                self.delivered += 1;
                self.consumer_wait += t0.elapsed();
                return Ok(Some(clip));
            }
            st = self
                .ring
                .slot_ready
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Counters for the run so far (arena grow events reflect the
    /// shared arena, i.e. warm reuse across runs shows up as zero).
    pub fn stats(&self) -> IngestStats {
        let frames = self.delivered * self.cfg.clip_depth as u64;
        let decode_busy = self.ring.lock().decode_busy;
        IngestStats {
            clips: self.delivered,
            frames,
            src_bytes: frames * (self.header.frame_bytes() as u64 + FRAME_OVERHEAD as u64),
            decode_busy_s: decode_busy.as_secs_f64(),
            consumer_wait_s: self.consumer_wait.as_secs_f64(),
            arena_grow_events: self.arena.stats().grow_events,
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.ring.stop.store(true, Ordering::SeqCst);
        self.ring.slot_free.notify_all();
        self.ring.slot_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    ring: Arc<Ring>,
    arena: ClipArena,
    file: File,
    cfg: PrefetchConfig,
    first_clip: u64,
    stride: u64,
    total_clips: u64,
) {
    let mut reader = match IndexedVidReader::open(file) {
        Ok(r) => r,
        Err(e) => return ring.poison(format!("ingest worker failed to open source: {e}")),
    };
    let header = *reader.header();
    let resizer = match FrameResizer::new(header.width as usize, header.height as usize, cfg.preprocess)
    {
        Ok(r) => r,
        Err(e) => return ring.poison(format!("ingest worker preprocess setup failed: {e}")),
    };
    let out_len = cfg.preprocess.output_len();
    let mut frame_buf: Vec<u8> = Vec::new();

    let mut clip_idx = first_clip;
    while clip_idx < total_clips {
        if ring.stop.load(Ordering::SeqCst) {
            return;
        }
        let t0 = Instant::now();
        // catch_unwind so a panic mid-decode (bug or injected fault)
        // poisons the ring instead of hanging the consumer; the
        // half-filled ArenaClip drops during unwind, returning its
        // buffer to the arena.
        let decoded = panic::catch_unwind(AssertUnwindSafe(|| {
            decode_clip(
                &mut reader,
                &resizer,
                &arena,
                &mut frame_buf,
                &cfg,
                clip_idx,
                out_len,
            )
        }));
        let busy = t0.elapsed();
        let clip = match decoded {
            Ok(Ok(clip)) => clip,
            Ok(Err(e)) => {
                return ring.poison(format!("ingest worker failed on clip {clip_idx}: {e}"))
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return ring.poison(format!("ingest worker panicked on clip {clip_idx}: {msg}"));
            }
        };
        if !place(&ring, clip_idx, clip, busy, cfg.depth as u64) {
            return;
        }
        clip_idx += stride;
    }
}

fn decode_clip(
    reader: &mut IndexedVidReader<File>,
    resizer: &FrameResizer,
    arena: &ClipArena,
    frame_buf: &mut Vec<u8>,
    cfg: &PrefetchConfig,
    clip_idx: u64,
    out_len: usize,
) -> io::Result<ArenaClip> {
    let mut clip = arena.acquire();
    if cfg.fault_clip == Some(clip_idx) {
        panic!("injected decode fault at clip {clip_idx}");
    }
    for f in 0..cfg.clip_depth {
        let frame = clip_idx * cfg.clip_depth as u64 + f as u64;
        reader.read_frame(frame as u32, frame_buf)?;
        resizer.run(frame_buf, &mut clip.data_mut()[f * out_len..(f + 1) * out_len]);
    }
    Ok(clip)
}

/// Parks until ring slot `clip_idx % depth` is free for this clip,
/// then publishes it. Returns `false` on stop/poison.
fn place(ring: &Ring, clip_idx: u64, clip: ArenaClip, busy: Duration, depth: u64) -> bool {
    let slot = (clip_idx % depth) as usize;
    let mut st = ring.lock();
    loop {
        if ring.stop.load(Ordering::SeqCst) || st.failed.is_some() {
            // Dropping `clip` here returns its buffer to the arena.
            return false;
        }
        // The slot must be empty AND within the consumer's window —
        // slot identity alone is not enough, or clip k could land
        // before clip k-depth has even been produced by another worker.
        if st.slots[slot].is_none() && clip_idx < st.next_out + depth {
            st.slots[slot] = Some(clip);
            st.decode_busy += busy;
            drop(st);
            ring.slot_ready.notify_all();
            return true;
        }
        st = ring.slot_free.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// The deliberately simple serial baseline: sequentially reads the
/// whole container with the byte-at-a-time reference CRC, decodes
/// every frame with the allocating reference preprocessor, and builds
/// one `[1, D, H, W]` tensor per clip.
///
/// This is what "decode, then infer" looks like without the streaming
/// data plane — the benchmarks measure the pipeline against it, and
/// the identity tests pin the pipeline's output bitwise to it.
pub fn read_video_clips(
    path: &Path,
    clip_depth: usize,
    cfg: &PreprocessConfig,
) -> io::Result<Vec<Tensor>> {
    cfg.validate()?;
    if clip_depth == 0 {
        return Err(invalid("clip depth must be >= 1"));
    }
    let mut r = VidReader::open_reference(io::BufReader::new(File::open(path)?))?;
    let header = *r.header();
    let (src_w, src_h) = (header.width as usize, header.height as usize);
    let total_clips = header.frames as usize / clip_depth;
    if total_clips == 0 {
        return Err(invalid(format!(
            "container holds {} frames, fewer than one {clip_depth}-frame clip",
            header.frames
        )));
    }
    let mut clips = Vec::with_capacity(total_clips);
    let mut frame_buf = Vec::new();
    for _ in 0..total_clips {
        let mut clip = Vec::with_capacity(clip_depth * cfg.output_len());
        for _ in 0..clip_depth {
            if !r.read_frame_into(&mut frame_buf)? {
                return Err(invalid("container ended mid-clip"));
            }
            clip.extend_from_slice(&decode_frame_reference(&frame_buf, src_w, src_h, cfg));
        }
        clips.push(Tensor::from_vec(
            [1, clip_depth, cfg.crop_h, cfg.crop_w],
            clip,
        ));
    }
    Ok(clips)
}
