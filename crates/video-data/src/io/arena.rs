//! Arena-owned clip buffers: a free-list of fixed-shape `Vec<f32>`
//! buffers so steady-state ingestion performs zero heap allocations.
//!
//! The ingestion twin of the inference-side `EvalArena`: decode
//! workers [`acquire`](ClipArena::acquire) a buffer, fill it, and hand
//! it downstream as an [`ArenaClip`]; when the clip (or the [`Tensor`]
//! built from its buffer) is done, the buffer returns to the free
//! list. Return happens in [`ArenaClip`]'s `Drop`, so a worker that
//! panics mid-decode still gives its buffer back — unwinding cannot
//! leak arena capacity (pinned by the reuse-under-panic test, the
//! ingest mirror of the EvalArena reuse-after-crash proof).
//!
//! `Tensor::from_vec` / `Tensor::into_vec` move the backing `Vec`
//! without copying, so the arena round-trip through a `Tensor` is
//! allocation-free too: acquire → fill → [`ArenaClip::into_tensor`] →
//! infer → [`ClipArena::release_tensor`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use p3d_tensor::Tensor;

/// Snapshot of arena occupancy, for telemetry and the zero-alloc gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClipArenaStats {
    /// Total buffers the arena has ever created.
    pub buffers: usize,
    /// Buffers currently sitting in the free list.
    pub free: usize,
    /// Times `acquire` found the free list empty and had to allocate —
    /// zero in steady state once the working set is warm.
    pub grow_events: usize,
}

struct ArenaShared {
    shape: [usize; 4],
    clip_len: usize,
    free: Mutex<Vec<Vec<f32>>>,
    buffers: AtomicUsize,
    grow_events: AtomicUsize,
}

/// A shareable free-list of clip buffers of one fixed shape
/// `[C, D, H, W]`. Cloning shares the underlying pool.
#[derive(Clone)]
pub struct ClipArena {
    shared: Arc<ArenaShared>,
}

impl ClipArena {
    /// An arena for clips of `shape`, with `prealloc` buffers created
    /// up front (so a correctly sized arena never grows afterwards).
    pub fn new(shape: [usize; 4], prealloc: usize) -> ClipArena {
        let clip_len: usize = shape.iter().product();
        assert!(clip_len > 0, "clip shape must be non-degenerate");
        let mut free = Vec::new();
        // Keep free-list capacity >= total buffers so a release never
        // reallocates the list itself.
        free.reserve_exact(prealloc.max(1));
        for _ in 0..prealloc {
            free.push(vec![0.0f32; clip_len]);
        }
        ClipArena {
            shared: Arc::new(ArenaShared {
                shape,
                clip_len,
                free: Mutex::new(free),
                buffers: AtomicUsize::new(prealloc),
                grow_events: AtomicUsize::new(0),
            }),
        }
    }

    /// The clip shape `[C, D, H, W]` this arena serves.
    pub fn shape(&self) -> [usize; 4] {
        self.shared.shape
    }

    /// Elements per clip buffer.
    pub fn clip_len(&self) -> usize {
        self.shared.clip_len
    }

    /// Pops a free buffer, or grows the pool by one (counted in
    /// [`ClipArenaStats::grow_events`]) if none is available.
    pub fn acquire(&self) -> ArenaClip {
        let popped = {
            let mut free = lock_free(&self.shared.free);
            free.pop()
        };
        let buf = match popped {
            Some(buf) => buf,
            None => {
                self.shared.grow_events.fetch_add(1, Ordering::Relaxed);
                self.shared.buffers.fetch_add(1, Ordering::Relaxed);
                let mut free = lock_free(&self.shared.free);
                free.reserve_exact(1);
                drop(free);
                vec![0.0f32; self.shared.clip_len]
            }
        };
        debug_assert_eq!(buf.len(), self.shared.clip_len);
        ArenaClip {
            buf: Some(buf),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Returns the buffer behind `t` to the free list. The tensor must
    /// hold exactly one arena clip's worth of elements (shape may have
    /// been reinterpreted along the way, e.g. `[1,C,D,H,W]`).
    pub fn release_tensor(&self, t: Tensor) {
        let buf = t.into_vec();
        assert_eq!(
            buf.len(),
            self.shared.clip_len,
            "released tensor does not match arena clip length"
        );
        lock_free(&self.shared.free).push(buf);
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> ClipArenaStats {
        let free = lock_free(&self.shared.free).len();
        ClipArenaStats {
            buffers: self.shared.buffers.load(Ordering::Relaxed),
            free,
            grow_events: self.shared.grow_events.load(Ordering::Relaxed),
        }
    }
}

/// Poison-tolerant lock on the free list: a panicking holder leaves a
/// consistent Vec (push/pop are atomic wrt panics), so the list stays
/// usable.
fn lock_free(m: &Mutex<Vec<Vec<f32>>>) -> std::sync::MutexGuard<'_, Vec<Vec<f32>>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One checked-out clip buffer. Dropping it — normally or during a
/// panic unwind — returns the buffer to its arena.
pub struct ArenaClip {
    buf: Option<Vec<f32>>,
    shared: Arc<ArenaShared>,
}

impl ArenaClip {
    /// Mutable view of the full clip buffer (`clip_len` floats).
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.buf.as_mut().expect("arena clip already consumed")
    }

    /// Read-only view of the clip buffer.
    pub fn data(&self) -> &[f32] {
        self.buf.as_ref().expect("arena clip already consumed")
    }

    /// Converts the buffer into a `Tensor` of the arena's clip shape
    /// without copying. The caller owns the buffer from here; hand it
    /// back with [`ClipArena::release_tensor`] to keep reuse alloc-free.
    pub fn into_tensor(mut self) -> Tensor {
        let buf = self.buf.take().expect("arena clip already consumed");
        let [c, d, h, w] = self.shared.shape;
        Tensor::from_vec([c, d, h, w], buf)
    }
}

impl Drop for ArenaClip {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            lock_free(&self.shared.free).push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycles_do_not_grow_a_warm_arena() {
        let arena = ClipArena::new([1, 2, 3, 4], 2);
        assert_eq!(
            arena.stats(),
            ClipArenaStats {
                buffers: 2,
                free: 2,
                grow_events: 0
            }
        );
        for i in 0..10 {
            let mut a = arena.acquire();
            let mut b = arena.acquire();
            a.data_mut()[0] = i as f32;
            b.data_mut()[0] = -(i as f32);
            drop(a);
            drop(b);
        }
        assert_eq!(
            arena.stats(),
            ClipArenaStats {
                buffers: 2,
                free: 2,
                grow_events: 0
            }
        );
    }

    #[test]
    fn empty_arena_grows_and_counts_it() {
        let arena = ClipArena::new([1, 1, 2, 2], 0);
        let clip = arena.acquire();
        assert_eq!(clip.data().len(), 4);
        let s = arena.stats();
        assert_eq!((s.buffers, s.grow_events, s.free), (1, 1, 0));
        drop(clip);
        assert_eq!(arena.stats().free, 1);
    }

    #[test]
    fn tensor_round_trip_preserves_data_and_capacity() {
        let arena = ClipArena::new([1, 2, 2, 2], 1);
        let mut clip = arena.acquire();
        for (i, v) in clip.data_mut().iter_mut().enumerate() {
            *v = i as f32 * 0.5;
        }
        let t = clip.into_tensor();
        assert_eq!(t.shape().dims(), &[1, 2, 2, 2]);
        assert_eq!(t.data()[3], 1.5);
        assert_eq!(arena.stats().free, 0);
        // Reshape (as the engines do) and hand it back.
        let t = t.reshape([1, 1, 2, 2, 2]);
        arena.release_tensor(t);
        let s = arena.stats();
        assert_eq!((s.buffers, s.free, s.grow_events), (1, 1, 0));
    }

    #[test]
    fn panic_while_holding_a_clip_returns_the_buffer() {
        let arena = ClipArena::new([1, 1, 1, 2], 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut clip = arena.acquire();
            clip.data_mut()[0] = 42.0;
            panic!("injected");
        }));
        assert!(result.is_err());
        let s = arena.stats();
        assert_eq!((s.buffers, s.free, s.grow_events), (1, 1, 0));
        // The recycled buffer is still fully usable.
        let mut clip = arena.acquire();
        clip.data_mut().fill(7.0);
        assert_eq!(clip.data(), &[7.0, 7.0]);
    }
}
