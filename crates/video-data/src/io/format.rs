//! The P3DVID1 planar raw-frame container format.
//!
//! A deliberately simple on-disk/on-wire format for raw video: a fixed
//! 32-byte header followed by one CRC-checked record per frame. It is
//! the ingestion twin of the P3DCKPT2 checkpoint format and follows the
//! same hardening rules:
//!
//! * every length field is validated against a cap **before** any
//!   buffer grows to hold it,
//! * truncation and corruption resolve to `io::ErrorKind::InvalidData`,
//!   never a panic or an oversized allocation,
//! * records carry CRC-32 (IEEE) checksums so bit flips are detected at
//!   read time.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! header (32 bytes):
//!   0..8    magic  b"P3DVID1\0"
//!   8..12   u32    width   (1..=4096)
//!   12..16  u32    height  (1..=4096)
//!   16..20  u32    frames  (1..=1<<20)
//!   20..24  u32    fps_milli (frames/second * 1000; informational)
//!   24      u8     pixel format (0 = GRAY8, row-major luma bytes)
//!   25..28  u8*3   reserved, must be zero
//!   28..32  u32    CRC-32 of bytes 8..28
//! frame record i (for i in 0..frames):
//!   u32     frame index, must equal i
//!   bytes   width*height payload (GRAY8, row-major)
//!   u32     CRC-32 of the 4 index bytes followed by the payload
//! ```
//!
//! Frame records have a fixed size, so frame `k` lives at byte offset
//! `32 + k * (8 + width*height)` — which is what lets
//! [`IndexedVidReader`] decode stripes of a file from several workers
//! without coordinating reads.
//!
//! Two CRC implementations live here on purpose. [`crc32`] is the
//! byte-at-a-time table reference — the exact algorithm P3DCKPT2 uses —
//! and [`crc32_fast`] is a slicing-by-8 implementation that processes
//! eight input bytes per step (~4-5x faster on long payloads, which
//! dominates decode cost for large frames). The hardened streaming
//! reader validates with the fast one; [`VidReader::open_reference`]
//! keeps a reader on the reference path so differential tests (and the
//! deliberately naive serial-ingest baseline in the benchmarks) can pin
//! the two bitwise against each other.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every P3DVID1 stream.
pub const VID_MAGIC: &[u8; 8] = b"P3DVID1\0";
/// Fixed header length in bytes.
pub const VID_HEADER_LEN: usize = 32;
/// Per-frame framing overhead: 4 index bytes + 4 CRC bytes.
pub const FRAME_OVERHEAD: usize = 8;
/// Largest accepted frame width or height.
pub const MAX_FRAME_DIM: u32 = 4096;
/// Largest accepted frame count in one container.
pub const MAX_FRAMES: u32 = 1 << 20;
/// Largest accepted frame payload (4096 * 4096 GRAY8).
pub const MAX_FRAME_BYTES: usize = 1 << 24;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3): byte-wise reference + slicing-by-8 fast path.
// ---------------------------------------------------------------------

/// Eight derived lookup tables; `CRC_TABLES[0]` is the classic
/// byte-at-a-time table, `CRC_TABLES[k]` advances a byte `k` extra
/// positions so eight bytes fold in one step.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
};

/// CRC-32 (IEEE) of `bytes`, byte-at-a-time — the reference
/// implementation, identical in algorithm to the P3DCKPT2 one.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental slicing-by-8 CRC-32 (IEEE) state.
///
/// Bitwise identical to [`crc32`] for every input (pinned by unit and
/// property tests); processes eight bytes per table step instead of
/// one, which matters when checksumming multi-kilobyte frame payloads
/// on the ingest hot path.
#[derive(Clone, Copy, Debug)]
pub struct Crc32Fast(u32);

impl Default for Crc32Fast {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32Fast {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32Fast(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            c ^= u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
            c = CRC_TABLES[7][(c & 0xFF) as usize]
                ^ CRC_TABLES[6][((c >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((c >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(c >> 24) as usize]
                ^ CRC_TABLES[3][w[4] as usize]
                ^ CRC_TABLES[2][w[5] as usize]
                ^ CRC_TABLES[1][w[6] as usize]
                ^ CRC_TABLES[0][w[7] as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Finalises and returns the checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot [`Crc32Fast`] over a byte slice.
pub fn crc32_fast(bytes: &[u8]) -> u32 {
    let mut c = Crc32Fast::new();
    c.update(bytes);
    c.finish()
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` that reports truncation as `InvalidData`, so every
/// malformed-container failure surfaces under one error kind.
fn read_exact_vid(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("truncated P3DVID1 stream")
        } else {
            e
        }
    })
}

/// Supported pixel formats. Only planar 8-bit luma exists today; the
/// header byte keeps room for more without a magic bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PixelFormat {
    /// One byte per pixel, row-major luma.
    Gray8,
}

impl PixelFormat {
    fn to_byte(self) -> u8 {
        match self {
            PixelFormat::Gray8 => 0,
        }
    }

    fn from_byte(b: u8) -> io::Result<PixelFormat> {
        match b {
            0 => Ok(PixelFormat::Gray8),
            other => Err(invalid(format!("unknown pixel format {other}"))),
        }
    }
}

/// The parsed, validated P3DVID1 header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VidHeader {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Number of frame records in the container.
    pub frames: u32,
    /// Nominal frame rate, millihertz (informational only).
    pub fps_milli: u32,
    /// Payload pixel format.
    pub format: PixelFormat,
}

impl VidHeader {
    /// A GRAY8 header; `validate` still applies on write/read.
    pub fn gray8(width: u32, height: u32, frames: u32, fps_milli: u32) -> VidHeader {
        VidHeader {
            width,
            height,
            frames,
            fps_milli,
            format: PixelFormat::Gray8,
        }
    }

    /// Checks every field against the format caps.
    pub fn validate(&self) -> io::Result<()> {
        if self.width == 0 || self.width > MAX_FRAME_DIM {
            return Err(invalid(format!(
                "width {} outside 1..={MAX_FRAME_DIM}",
                self.width
            )));
        }
        if self.height == 0 || self.height > MAX_FRAME_DIM {
            return Err(invalid(format!(
                "height {} outside 1..={MAX_FRAME_DIM}",
                self.height
            )));
        }
        if self.frames == 0 || self.frames > MAX_FRAMES {
            return Err(invalid(format!(
                "frame count {} outside 1..={MAX_FRAMES}",
                self.frames
            )));
        }
        let bytes = (self.width as usize)
            .checked_mul(self.height as usize)
            .ok_or_else(|| invalid("frame byte count overflows"))?;
        if bytes > MAX_FRAME_BYTES {
            return Err(invalid(format!(
                "frame payload of {bytes} bytes exceeds cap {MAX_FRAME_BYTES}"
            )));
        }
        Ok(())
    }

    /// Payload bytes per frame (GRAY8: one per pixel). Valid headers
    /// cannot overflow — `validate` runs before this is used.
    pub fn frame_bytes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total encoded stream length in bytes.
    pub fn stream_len(&self) -> u64 {
        VID_HEADER_LEN as u64
            + self.frames as u64 * (FRAME_OVERHEAD as u64 + self.frame_bytes() as u64)
    }

    /// Byte offset of frame record `index` within the stream.
    pub fn frame_offset(&self, index: u32) -> u64 {
        VID_HEADER_LEN as u64
            + index as u64 * (FRAME_OVERHEAD as u64 + self.frame_bytes() as u64)
    }

    fn encode(&self) -> [u8; VID_HEADER_LEN] {
        let mut out = [0u8; VID_HEADER_LEN];
        out[0..8].copy_from_slice(VID_MAGIC);
        out[8..12].copy_from_slice(&self.width.to_le_bytes());
        out[12..16].copy_from_slice(&self.height.to_le_bytes());
        out[16..20].copy_from_slice(&self.frames.to_le_bytes());
        out[20..24].copy_from_slice(&self.fps_milli.to_le_bytes());
        out[24] = self.format.to_byte();
        let crc = crc32_fast(&out[8..28]);
        out[28..32].copy_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(buf: &[u8; VID_HEADER_LEN]) -> io::Result<VidHeader> {
        if &buf[0..8] != VID_MAGIC {
            return Err(invalid("bad magic: not a P3DVID1 stream"));
        }
        let word = |i: usize| u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
        let declared = word(28);
        if crc32_fast(&buf[8..28]) != declared {
            return Err(invalid("header checksum mismatch"));
        }
        if buf[25] != 0 || buf[26] != 0 || buf[27] != 0 {
            return Err(invalid("nonzero reserved header bytes"));
        }
        let header = VidHeader {
            width: word(8),
            height: word(12),
            frames: word(16),
            fps_milli: word(20),
            format: PixelFormat::from_byte(buf[24])?,
        };
        header.validate()?;
        Ok(header)
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streams a P3DVID1 container to any [`Write`] sink.
pub struct VidWriter<W: Write> {
    w: W,
    header: VidHeader,
    written: u32,
}

impl<W: Write> VidWriter<W> {
    /// Validates `header` and writes it to `w`.
    pub fn new(mut w: W, header: VidHeader) -> io::Result<VidWriter<W>> {
        header.validate()?;
        w.write_all(&header.encode())?;
        Ok(VidWriter {
            w,
            header,
            written: 0,
        })
    }

    /// Appends one frame record. `frame` must hold exactly
    /// [`VidHeader::frame_bytes`] bytes.
    pub fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        if frame.len() != self.header.frame_bytes() {
            return Err(invalid(format!(
                "frame of {} bytes, header declares {}",
                frame.len(),
                self.header.frame_bytes()
            )));
        }
        if self.written >= self.header.frames {
            return Err(invalid(format!(
                "container already holds the declared {} frames",
                self.header.frames
            )));
        }
        let idx = self.written.to_le_bytes();
        let mut crc = Crc32Fast::new();
        crc.update(&idx);
        crc.update(frame);
        self.w.write_all(&idx)?;
        self.w.write_all(frame)?;
        self.w.write_all(&crc.finish().to_le_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Checks the frame count matches the header, flushes, and returns
    /// the sink.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.header.frames {
            return Err(invalid(format!(
                "wrote {} of the declared {} frames",
                self.written, self.header.frames
            )));
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Atomically writes a container file: header + every frame yielded by
/// `frames`, to a temporary sibling first, fsynced, then renamed over
/// `path` — a crash mid-save can never leave a half-written file under
/// the final name (the P3DCKPT2 save discipline).
pub fn save_video<'a>(
    path: &Path,
    header: VidHeader,
    frames: impl IntoIterator<Item = &'a [u8]>,
) -> io::Result<()> {
    let tmp = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        path.with_file_name(name)
    };
    let file = std::fs::File::create(&tmp)?;
    let mut w = VidWriter::new(io::BufWriter::new(file), header)?;
    for frame in frames {
        w.write_frame(frame)?;
    }
    let file = w
        .finish()?
        .into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrcMode {
    Sliced,
    Reference,
}

fn record_crc(mode: CrcMode, idx: &[u8; 4], payload: &[u8]) -> u32 {
    match mode {
        CrcMode::Sliced => {
            let mut c = Crc32Fast::new();
            c.update(idx);
            c.update(payload);
            c.finish()
        }
        CrcMode::Reference => {
            // Byte-at-a-time over the concatenation, without building it.
            let mut c = 0xFFFF_FFFFu32;
            for &b in idx.iter().chain(payload) {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        }
    }
}

/// Reads one frame record from `r` into `buf`, validating the index
/// and checksum. `buf` is resized to the frame payload length — an
/// allocation only the first time (or when the caller reuses one buffer
/// across streams of different dimensions).
fn read_record(
    r: &mut impl Read,
    expect_index: u32,
    frame_bytes: usize,
    mode: CrcMode,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    let mut idx = [0u8; 4];
    read_exact_vid(r, &mut idx)?;
    let got = u32::from_le_bytes(idx);
    if got != expect_index {
        return Err(invalid(format!(
            "frame index {got} where {expect_index} was expected"
        )));
    }
    // `frame_bytes` passed header validation (<= MAX_FRAME_BYTES), so
    // this resize is bounded.
    if buf.len() != frame_bytes {
        buf.clear();
        buf.resize(frame_bytes, 0);
    }
    read_exact_vid(r, buf)?;
    let mut declared = [0u8; 4];
    read_exact_vid(r, &mut declared)?;
    if record_crc(mode, &idx, buf) != u32::from_le_bytes(declared) {
        return Err(invalid(format!("frame {expect_index} checksum mismatch")));
    }
    Ok(())
}

/// Sequential hardened reader over any [`Read`] source — a file, or an
/// HTTP request body arriving frame by frame.
///
/// The header is validated (caps and checksum) before any frame buffer
/// exists; each [`read_frame_into`](Self::read_frame_into) then reuses
/// the caller's buffer, so steady-state streaming allocates nothing.
pub struct VidReader<R: Read> {
    r: R,
    header: VidHeader,
    next: u32,
    crc: CrcMode,
}

impl<R: Read> VidReader<R> {
    /// Parses and validates the header; frame payloads will be checked
    /// with the slicing-by-8 CRC.
    pub fn open(r: R) -> io::Result<VidReader<R>> {
        Self::open_mode(r, CrcMode::Sliced)
    }

    /// Like [`open`](Self::open) but validating with the byte-at-a-time
    /// reference CRC — the differential twin used by tests and by the
    /// deliberately simple serial-ingest baseline.
    pub fn open_reference(r: R) -> io::Result<VidReader<R>> {
        Self::open_mode(r, CrcMode::Reference)
    }

    fn open_mode(mut r: R, crc: CrcMode) -> io::Result<VidReader<R>> {
        let mut buf = [0u8; VID_HEADER_LEN];
        read_exact_vid(&mut r, &mut buf)?;
        let header = VidHeader::decode(&buf)?;
        Ok(VidReader {
            r,
            header,
            next: 0,
            crc,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &VidHeader {
        &self.header
    }

    /// Frames not yet read.
    pub fn remaining(&self) -> u32 {
        self.header.frames - self.next
    }

    /// Reads the next frame into `buf` (resized to the payload length).
    /// Returns `false` once every declared frame has been read.
    pub fn read_frame_into(&mut self, buf: &mut Vec<u8>) -> io::Result<bool> {
        if self.next == self.header.frames {
            return Ok(false);
        }
        read_record(
            &mut self.r,
            self.next,
            self.header.frame_bytes(),
            self.crc,
            buf,
        )?;
        self.next += 1;
        Ok(true)
    }

    /// Consumes the reader, returning the underlying source.
    pub fn into_inner(self) -> R {
        self.r
    }
}

/// Random-access hardened reader for seekable sources.
///
/// Frame records have a fixed size, so any frame decodes independently;
/// this is what lets prefetch workers decode interleaved clip stripes
/// of one file from separate file handles without coordination.
pub struct IndexedVidReader<R: Read + Seek> {
    r: R,
    header: VidHeader,
}

impl<R: Read + Seek> IndexedVidReader<R> {
    /// Parses and validates the header at the start of `r`.
    pub fn open(mut r: R) -> io::Result<IndexedVidReader<R>> {
        r.seek(SeekFrom::Start(0))?;
        let mut buf = [0u8; VID_HEADER_LEN];
        read_exact_vid(&mut r, &mut buf)?;
        let header = VidHeader::decode(&buf)?;
        Ok(IndexedVidReader { r, header })
    }

    /// The validated header.
    pub fn header(&self) -> &VidHeader {
        &self.header
    }

    /// Reads frame `index` into `buf`, validating index and checksum.
    pub fn read_frame(&mut self, index: u32, buf: &mut Vec<u8>) -> io::Result<()> {
        if index >= self.header.frames {
            return Err(invalid(format!(
                "frame {index} out of range (container holds {})",
                self.header.frames
            )));
        }
        self.r.seek(SeekFrom::Start(self.header.frame_offset(index)))?;
        read_record(
            &mut self.r,
            index,
            self.header.frame_bytes(),
            CrcMode::Sliced,
            buf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_frames(header: &VidHeader, seed: u8) -> Vec<Vec<u8>> {
        (0..header.frames)
            .map(|f| {
                (0..header.frame_bytes())
                    .map(|i| (i as u32 * 31 + f * 7 + seed as u32) as u8)
                    .collect()
            })
            .collect()
    }

    fn encode(header: VidHeader, frames: &[Vec<u8>]) -> Vec<u8> {
        let mut w = VidWriter::new(Vec::new(), header).unwrap();
        for f in frames {
            w.write_frame(f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn fast_crc_matches_reference_on_varied_lengths() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| i.wrapping_mul(2654435761) as u8)
            .collect();
        for len in [0, 1, 3, 7, 8, 9, 15, 16, 63, 64, 65, 255, 1024] {
            assert_eq!(crc32(&data[..len]), crc32_fast(&data[..len]), "len {len}");
        }
        // Split updates agree with one-shot.
        let mut inc = Crc32Fast::new();
        inc.update(&data[..100]);
        inc.update(&data[100..617]);
        inc.update(&data[617..]);
        assert_eq!(inc.finish(), crc32(&data));
        // Known vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32_fast(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_both_crc_modes() {
        let header = VidHeader::gray8(5, 4, 3, 24_000);
        let frames = sample_frames(&header, 1);
        let bytes = encode(header, &frames);
        assert_eq!(bytes.len() as u64, header.stream_len());
        for open in [VidReader::open, VidReader::open_reference] {
            let mut r = open(Cursor::new(bytes.clone())).unwrap();
            assert_eq!(r.header(), &header);
            let mut buf = Vec::new();
            let mut seen = Vec::new();
            while r.read_frame_into(&mut buf).unwrap() {
                seen.push(buf.clone());
            }
            assert_eq!(seen, frames);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn indexed_reader_reads_out_of_order() {
        let header = VidHeader::gray8(3, 3, 4, 1000);
        let frames = sample_frames(&header, 9);
        let bytes = encode(header, &frames);
        let mut r = IndexedVidReader::open(Cursor::new(bytes)).unwrap();
        let mut buf = Vec::new();
        for &i in &[2u32, 0, 3, 1, 2] {
            r.read_frame(i, &mut buf).unwrap();
            assert_eq!(buf, frames[i as usize], "frame {i}");
        }
        assert!(r.read_frame(4, &mut buf).is_err());
    }

    #[test]
    fn writer_enforces_declared_geometry() {
        let header = VidHeader::gray8(2, 2, 2, 1000);
        let mut w = VidWriter::new(Vec::new(), header).unwrap();
        assert!(w.write_frame(&[0u8; 3]).is_err(), "wrong payload size");
        w.write_frame(&[0u8; 4]).unwrap();
        // Finishing short of the declared count fails.
        let w2 = VidWriter::new(Vec::new(), header).unwrap();
        assert!(w2.finish().is_err());
        // Writing past the declared count fails.
        w.write_frame(&[1u8; 4]).unwrap();
        assert!(w.write_frame(&[2u8; 4]).is_err());
        w.finish().unwrap();
    }

    #[test]
    fn header_caps_are_enforced() {
        for header in [
            VidHeader::gray8(0, 4, 1, 0),
            VidHeader::gray8(4, 0, 1, 0),
            VidHeader::gray8(MAX_FRAME_DIM + 1, 4, 1, 0),
            VidHeader::gray8(4, 4, 0, 0),
            VidHeader::gray8(4, 4, MAX_FRAMES + 1, 0),
        ] {
            assert!(header.validate().is_err(), "{header:?}");
            assert!(VidWriter::new(Vec::new(), header).is_err());
        }
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let header = VidHeader::gray8(4, 4, 2, 1000);
        let bytes = encode(header, &sample_frames(&header, 3));
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(VidReader::open(Cursor::new(bad)).is_err());
        // Header field flip breaks the header CRC.
        let mut bad = bytes.clone();
        bad[9] ^= 0x10;
        assert!(VidReader::open(Cursor::new(bad)).is_err());
        // Payload flip breaks that frame's CRC (in both reader modes).
        for open in [VidReader::open, VidReader::open_reference] {
            let mut bad = bytes.clone();
            bad[VID_HEADER_LEN + 6] ^= 0x01;
            let mut r = open(Cursor::new(bad)).unwrap();
            let mut buf = Vec::new();
            assert!(r.read_frame_into(&mut buf).is_err());
        }
        // Truncation inside a record.
        let mut r = VidReader::open(Cursor::new(bytes[..bytes.len() - 1].to_vec())).unwrap();
        let mut buf = Vec::new();
        assert!(r.read_frame_into(&mut buf).unwrap());
        let err = r.read_frame_into(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
