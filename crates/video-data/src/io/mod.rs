//! Streaming video ingestion: the raw-bytes data plane feeding the
//! serving stack.
//!
//! Pipeline, end to end:
//!
//! ```text
//! P3DVID1 file/socket ──► hardened reader ──► resize/crop/normalize
//!   (CRC-checked          ([`format`])         ([`preprocess`], fused,
//!    frame records)                             integer arithmetic)
//!                                                      │
//!                                              arena-owned clip
//!                                              buffers ([`arena`],
//!                                              zero steady-state
//!                                              allocs)
//!                                                      │
//!                          bounded N-deep ready ring ◄─┘
//!                          ([`prefetch`], decode workers
//!                           overlap the inference engine)
//! ```
//!
//! Every stage is deterministic: clip tensors coming out of the
//! pipeline are bitwise identical to the serial reference decode
//! ([`read_video_clips`]) at any worker count, ring depth, or
//! scheduling, so streamed inference results are bitwise identical to
//! the pre-built-tensor path.

pub mod arena;
pub mod format;
pub mod prefetch;
pub mod preprocess;

pub use arena::{ArenaClip, ClipArena, ClipArenaStats};
pub use format::{
    crc32, crc32_fast, save_video, Crc32Fast, IndexedVidReader, PixelFormat, VidHeader, VidReader,
    VidWriter, FRAME_OVERHEAD, MAX_FRAMES, MAX_FRAME_BYTES, MAX_FRAME_DIM, VID_HEADER_LEN,
    VID_MAGIC,
};
pub use prefetch::{read_video_clips, IngestStats, PrefetchConfig, Prefetcher};
pub use preprocess::{decode_frame_reference, luma_to_f32, FrameResizer, PreprocessConfig};
