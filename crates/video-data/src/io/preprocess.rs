//! Fixed-point-friendly frame preprocessing: integer bilinear resize,
//! center crop, and `u8 -> f32` normalization.
//!
//! Everything before the final normalize runs in integer arithmetic
//! with explicit rounding — the same discipline as the Q7.8 datapath —
//! so the output is a pure function of the input bytes: bitwise
//! identical at any thread count, any batching, any decode order.
//!
//! Two implementations of the same math live here:
//!
//! * [`decode_frame_reference`] — the obvious transliteration. It
//!   recomputes sample taps for every output pixel and allocates a
//!   fresh buffer per frame. This is the correctness reference and the
//!   deliberately naive serial-ingest baseline in the benchmarks.
//! * [`FrameResizer`] — the hot path. Taps are precomputed once per
//!   stream geometry, resize and crop are fused (only pixels inside
//!   the crop window are ever computed), and output lands in a
//!   caller-owned buffer, so steady-state decode allocates nothing.
//!
//! The two are bitwise identical by construction (they share
//! [`tap_at`] and the accumulate/round expressions) and pinned so by
//! property tests.

use std::io;

use super::format::MAX_FRAME_DIM;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Resize-then-center-crop geometry for one ingest stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreprocessConfig {
    /// Bilinear resize target height.
    pub resize_h: usize,
    /// Bilinear resize target width.
    pub resize_w: usize,
    /// Center-crop height (`<= resize_h`).
    pub crop_h: usize,
    /// Center-crop width (`<= resize_w`).
    pub crop_w: usize,
}

impl PreprocessConfig {
    /// Resize straight to the model input size, no crop margin.
    pub fn to_size(h: usize, w: usize) -> PreprocessConfig {
        PreprocessConfig {
            resize_h: h,
            resize_w: w,
            crop_h: h,
            crop_w: w,
        }
    }

    /// Checks dimensions are nonzero, capped, and crop fits resize.
    pub fn validate(&self) -> io::Result<()> {
        for (name, v) in [
            ("resize_h", self.resize_h),
            ("resize_w", self.resize_w),
            ("crop_h", self.crop_h),
            ("crop_w", self.crop_w),
        ] {
            if v == 0 || v > MAX_FRAME_DIM as usize {
                return Err(invalid(format!("{name} = {v} outside 1..={MAX_FRAME_DIM}")));
            }
        }
        if self.crop_h > self.resize_h || self.crop_w > self.resize_w {
            return Err(invalid(format!(
                "crop {}x{} exceeds resize {}x{}",
                self.crop_h, self.crop_w, self.resize_h, self.resize_w
            )));
        }
        Ok(())
    }

    /// Output pixels per frame after crop.
    pub fn output_len(&self) -> usize {
        self.crop_h * self.crop_w
    }

    /// Top offset of the centered crop window in resized coordinates.
    pub fn crop_top(&self) -> usize {
        (self.resize_h - self.crop_h) / 2
    }

    /// Left offset of the centered crop window in resized coordinates.
    pub fn crop_left(&self) -> usize {
        (self.resize_w - self.crop_w) / 2
    }
}

/// One bilinear sample along one axis: two source indices and a Q8
/// weight for the second (`w0 = 256 - w1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Tap {
    i0: usize,
    i1: usize,
    w1: u32,
}

/// The tap for output coordinate `out_i` of `out_n` sampling a source
/// axis of `src_n`. Pixel-center convention in Q16 fixed point:
/// `pos = (out_i + 0.5) * src_n / out_n - 0.5`, clamped to the source
/// range, with the fractional part rounded to a Q8 blend weight.
fn tap_at(out_i: usize, out_n: usize, src_n: usize) -> Tap {
    debug_assert!(out_i < out_n && out_n > 0 && src_n > 0);
    let num = (((2 * out_i as i64 + 1) * src_n as i64) << 15) / out_n as i64 - (1 << 15);
    let pos = num.max(0) as u64; // Q16, >= 0
    let mut i0 = (pos >> 16) as usize;
    let mut frac = (pos & 0xFFFF) as u32;
    if i0 >= src_n - 1 {
        i0 = src_n - 1;
        frac = 0;
    }
    let i1 = (i0 + 1).min(src_n - 1);
    // Round the Q16 fraction to Q8. 65535 rounds to 256, i.e. full
    // weight on i1 — w0 becomes 0, still exact.
    let w1 = (frac + 128) >> 8;
    Tap { i0, i1, w1 }
}

/// Blends a 2x2 neighborhood with Q8 row/column weights and rounds to
/// the nearest u8. Max accumulator value is 256*256*255 < 2^31.
#[inline]
fn blend(p00: u32, p01: u32, p10: u32, p11: u32, wx1: u32, wy1: u32) -> u8 {
    let wx0 = 256 - wx1;
    let wy0 = 256 - wy1;
    let top = wx0 * p00 + wx1 * p01;
    let bot = wx0 * p10 + wx1 * p11;
    ((wy0 * top + wy1 * bot + (1 << 15)) >> 16) as u8
}

/// Normalizes one luma byte to `[0, 1]` f32 — the single definition
/// shared by every ingest path, so streamed clips are bitwise
/// identical to any other construction of the same pixels.
#[inline]
pub fn luma_to_f32(v: u8) -> f32 {
    v as f32 / 255.0
}

/// Reference decode of one GRAY8 frame: bilinear resize to
/// `cfg.resize_*`, center crop to `cfg.crop_*`, normalize to f32.
///
/// Allocates the output (and recomputes taps per pixel) by design —
/// this is the naive baseline the fused [`FrameResizer`] is measured
/// and differentially tested against.
pub fn decode_frame_reference(
    src: &[u8],
    src_w: usize,
    src_h: usize,
    cfg: &PreprocessConfig,
) -> Vec<f32> {
    assert_eq!(src.len(), src_w * src_h, "source frame size mismatch");
    cfg.validate().expect("invalid preprocess config");
    let (top, left) = (cfg.crop_top(), cfg.crop_left());
    let mut out = Vec::with_capacity(cfg.output_len());
    for oy in 0..cfg.crop_h {
        let ty = tap_at(oy + top, cfg.resize_h, src_h);
        for ox in 0..cfg.crop_w {
            let tx = tap_at(ox + left, cfg.resize_w, src_w);
            let row0 = ty.i0 * src_w;
            let row1 = ty.i1 * src_w;
            let v = blend(
                src[row0 + tx.i0] as u32,
                src[row0 + tx.i1] as u32,
                src[row1 + tx.i0] as u32,
                src[row1 + tx.i1] as u32,
                tx.w1,
                ty.w1,
            );
            out.push(luma_to_f32(v));
        }
    }
    out
}

/// Fused resize+crop+normalize with taps precomputed per geometry.
///
/// Construct once per stream; [`run`](Self::run) then decodes frames
/// into caller-owned buffers with zero allocations.
pub struct FrameResizer {
    src_w: usize,
    src_h: usize,
    cfg: PreprocessConfig,
    /// Row taps for the crop window only: `crop_h` entries.
    row_taps: Vec<Tap>,
    /// Column taps for the crop window only: `crop_w` entries.
    col_taps: Vec<Tap>,
}

impl FrameResizer {
    /// Precomputes taps for frames of `src_w` x `src_h` under `cfg`.
    pub fn new(src_w: usize, src_h: usize, cfg: PreprocessConfig) -> io::Result<FrameResizer> {
        cfg.validate()?;
        if src_w == 0 || src_h == 0 {
            return Err(invalid("source frame dimensions must be nonzero"));
        }
        let (top, left) = (cfg.crop_top(), cfg.crop_left());
        let row_taps = (0..cfg.crop_h)
            .map(|oy| tap_at(oy + top, cfg.resize_h, src_h))
            .collect();
        let col_taps = (0..cfg.crop_w)
            .map(|ox| tap_at(ox + left, cfg.resize_w, src_w))
            .collect();
        Ok(FrameResizer {
            src_w,
            src_h,
            cfg,
            row_taps,
            col_taps,
        })
    }

    /// The geometry this resizer was built for.
    pub fn config(&self) -> &PreprocessConfig {
        &self.cfg
    }

    /// Decodes one frame into `out` (`cfg.output_len()` floats).
    /// Bitwise identical to [`decode_frame_reference`]; allocates
    /// nothing.
    pub fn run(&self, src: &[u8], out: &mut [f32]) {
        assert_eq!(src.len(), self.src_w * self.src_h, "source frame size mismatch");
        assert_eq!(out.len(), self.cfg.output_len(), "output buffer size mismatch");
        let w = self.src_w;
        for (oy, ty) in self.row_taps.iter().enumerate() {
            let row0 = &src[ty.i0 * w..ty.i0 * w + w];
            let row1 = &src[ty.i1 * w..ty.i1 * w + w];
            let dst = &mut out[oy * self.cfg.crop_w..(oy + 1) * self.cfg.crop_w];
            for (d, tx) in dst.iter_mut().zip(self.col_taps.iter()) {
                let v = blend(
                    row0[tx.i0] as u32,
                    row0[tx.i1] as u32,
                    row1[tx.i0] as u32,
                    row1[tx.i1] as u32,
                    tx.w1,
                    ty.w1,
                );
                *d = luma_to_f32(v);
            }
        }
    }

    #[cfg(test)]
    fn src_dims(&self) -> (usize, usize) {
        (self.src_w, self.src_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_tensor::TensorRng;

    fn random_frame(rng: &mut TensorRng, w: usize, h: usize) -> Vec<u8> {
        (0..w * h).map(|_| rng.below(256) as u8).collect()
    }

    #[test]
    fn identity_geometry_is_lossless() {
        let mut rng = TensorRng::seed(11);
        let (w, h) = (13, 9);
        let src = random_frame(&mut rng, w, h);
        let cfg = PreprocessConfig::to_size(h, w);
        let out = decode_frame_reference(&src, w, h, &cfg);
        let expect: Vec<f32> = src.iter().map(|&b| luma_to_f32(b)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fast_matches_reference_across_geometries() {
        let mut rng = TensorRng::seed(2020);
        let cases = [
            // (src_w, src_h, resize_h, resize_w, crop_h, crop_w)
            (32, 24, 16, 16, 16, 16),
            (17, 31, 16, 16, 12, 10),
            (8, 8, 16, 16, 16, 16), // upscale
            (64, 48, 20, 24, 16, 16),
            (5, 3, 7, 9, 4, 6),
            (1, 1, 4, 4, 2, 2), // degenerate single-pixel source
            (256, 256, 18, 18, 16, 16),
        ];
        for &(sw, sh, rh, rw, ch, cw) in &cases {
            let cfg = PreprocessConfig {
                resize_h: rh,
                resize_w: rw,
                crop_h: ch,
                crop_w: cw,
            };
            let resizer = FrameResizer::new(sw, sh, cfg).unwrap();
            assert_eq!(resizer.src_dims(), (sw, sh));
            for _ in 0..4 {
                let src = random_frame(&mut rng, sw, sh);
                let reference = decode_frame_reference(&src, sw, sh, &cfg);
                let mut fast = vec![0.0f32; cfg.output_len()];
                resizer.run(&src, &mut fast);
                assert!(
                    fast.iter()
                        .zip(reference.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "fast/reference mismatch at {sw}x{sh} -> {rh}x{rw} crop {ch}x{cw}"
                );
            }
        }
    }

    #[test]
    fn outputs_stay_in_unit_interval() {
        let mut rng = TensorRng::seed(7);
        let cfg = PreprocessConfig {
            resize_h: 10,
            resize_w: 14,
            crop_h: 8,
            crop_w: 12,
        };
        let resizer = FrameResizer::new(21, 15, cfg).unwrap();
        let src = random_frame(&mut rng, 21, 15);
        let mut out = vec![0.0f32; cfg.output_len()];
        resizer.run(&src, &mut out);
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(PreprocessConfig {
            resize_h: 4,
            resize_w: 4,
            crop_h: 5,
            crop_w: 4,
        }
        .validate()
        .is_err());
        assert!(PreprocessConfig::to_size(0, 4).validate().is_err());
        assert!(FrameResizer::new(0, 4, PreprocessConfig::to_size(4, 4)).is_err());
    }
}
