//! Label-preserving augmentations.
//!
//! Horizontal flips — a staple for natural video — are deliberately
//! **absent**: they would swap `TranslateLeft`/`TranslateRight` and the
//! orbit handedness classes. Only augmentations that commute with every
//! motion class are provided.

use p3d_tensor::{Tensor, TensorRng};

/// Adds iid Gaussian noise, clamped back to `[0, 1]`.
pub fn jitter_noise(clip: &Tensor, std: f32, rng: &mut TensorRng) -> Tensor {
    assert!(std >= 0.0, "noise std must be non-negative");
    clip.map(|x| x) // clone via map to keep shape
        .zip(&{
            let mut noise = Tensor::zeros(clip.shape());
            for v in noise.data_mut() {
                *v = rng.normal_with(0.0, std);
            }
            noise
        }, |a, b| (a + b).clamp(0.0, 1.0))
}

/// Scales intensity by a random factor in `[lo, hi]` (brightness jitter).
pub fn jitter_brightness(clip: &Tensor, lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
    assert!(0.0 < lo && lo <= hi, "bad brightness range");
    let k = rng.uniform(lo, hi);
    clip.map(|x| (x * k).clamp(0.0, 1.0))
}

/// Circularly shifts a `[C, D, H, W]` clip by an integer spatial offset.
/// All frames shift together, so relative motion — the class signal — is
/// untouched.
pub fn shift_spatial(clip: &Tensor, dy: isize, dx: isize) -> Tensor {
    let s = clip.shape();
    assert_eq!(s.rank(), 4, "expected [C, D, H, W]");
    let (c, d, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    let mut out = Tensor::zeros(s);
    for ci in 0..c {
        for t in 0..d {
            let base = (ci * d + t) * h * w;
            for y in 0..h {
                let sy = (y as isize - dy).rem_euclid(h as isize) as usize;
                for x in 0..w {
                    let sx = (x as isize - dx).rem_euclid(w as isize) as usize;
                    out.data_mut()[base + y * w + x] = clip.data()[base + sy * w + sx];
                }
            }
        }
    }
    out
}

/// Reverses the temporal axis. **Not label-preserving** for most classes
/// (left becomes right); exposed for ablation experiments that need
/// "wrong" augmentations, and documented as such.
pub fn reverse_time(clip: &Tensor) -> Tensor {
    let s = clip.shape();
    assert_eq!(s.rank(), 4, "expected [C, D, H, W]");
    let (c, d, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    let mut out = Tensor::zeros(s);
    let hw = h * w;
    for ci in 0..c {
        for t in 0..d {
            let src = (ci * d + t) * hw;
            let dst = (ci * d + (d - 1 - t)) * hw;
            out.data_mut()[dst..dst + hw].copy_from_slice(&clip.data()[src..src + hw]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_clip() -> Tensor {
        let mut t = Tensor::zeros([1, 2, 4, 4]);
        t.set(&[0, 0, 1, 2], 1.0);
        t.set(&[0, 1, 3, 0], 0.5);
        t
    }

    #[test]
    fn noise_stays_in_range() {
        let mut rng = TensorRng::seed(1);
        let clip = demo_clip();
        let out = jitter_noise(&clip, 0.5, &mut rng);
        assert!(out.min() >= 0.0 && out.max() <= 1.0);
        assert_eq!(out.shape(), clip.shape());
    }

    #[test]
    fn zero_noise_identity() {
        let mut rng = TensorRng::seed(2);
        let clip = demo_clip();
        assert!(jitter_noise(&clip, 0.0, &mut rng).allclose(&clip, 1e-7));
    }

    #[test]
    fn brightness_scales() {
        let mut rng = TensorRng::seed(3);
        let clip = demo_clip();
        let out = jitter_brightness(&clip, 0.5, 0.5, &mut rng);
        assert!((out.get(&[0, 0, 1, 2]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn shift_moves_content() {
        let clip = demo_clip();
        let out = shift_spatial(&clip, 1, 0);
        assert!((out.get(&[0, 0, 2, 2]) - 1.0).abs() < 1e-6);
        assert_eq!(out.get(&[0, 0, 1, 2]), 0.0);
    }

    #[test]
    fn shift_wraps_around() {
        let clip = demo_clip();
        let out = shift_spatial(&clip, 0, -3);
        // x=2 shifted left by 3 wraps to x=3.
        assert!((out.get(&[0, 0, 1, 3]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shift_zero_is_identity() {
        let clip = demo_clip();
        assert_eq!(shift_spatial(&clip, 0, 0), clip);
    }

    #[test]
    fn reverse_time_swaps_frames() {
        let clip = demo_clip();
        let out = reverse_time(&clip);
        assert!((out.get(&[0, 1, 1, 2]) - 1.0).abs() < 1e-6);
        assert!((out.get(&[0, 0, 3, 0]) - 0.5).abs() < 1e-6);
        assert_eq!(reverse_time(&out), clip);
    }
}
