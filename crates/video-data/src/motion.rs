//! Motion patterns (the action classes) and drawable shapes.

/// The shape drawn in a clip. Shapes are sampled independently of the
/// class so appearance carries no label information.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// A filled disc.
    Disc,
    /// A filled axis-aligned square.
    Square,
    /// A plus-shaped cross.
    Cross,
}

impl ShapeKind {
    /// All shapes, for uniform sampling.
    pub const ALL: [ShapeKind; 3] = [ShapeKind::Disc, ShapeKind::Square, ShapeKind::Cross];

    /// Signed coverage of the shape at offset `(dy, dx)` from its centre,
    /// in `[0, 1]`, with a half-pixel soft edge for antialiasing.
    pub fn coverage(&self, dy: f32, dx: f32, radius: f32) -> f32 {
        let soft = |d: f32| (0.5 - d).clamp(0.0, 1.0);
        match self {
            ShapeKind::Disc => {
                let d = (dy * dy + dx * dx).sqrt() - radius;
                soft(d)
            }
            ShapeKind::Square => {
                let d = dy.abs().max(dx.abs()) - radius;
                soft(d)
            }
            ShapeKind::Cross => {
                let arm = (radius * 0.4).max(1.0);
                let dv = dy.abs().max(dx.abs() / arm * radius) - radius;
                let dh = dx.abs().max(dy.abs() / arm * radius) - radius;
                soft(dv.min(dh))
            }
        }
    }
}

/// The ten motion classes. The discriminative signal of every class is
/// purely temporal: a static frame from any class is statistically
/// identical to one from any other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Motion {
    /// Constant velocity to the right.
    TranslateRight,
    /// Constant velocity to the left.
    TranslateLeft,
    /// Constant velocity upward.
    TranslateUp,
    /// Constant velocity downward.
    TranslateDown,
    /// Diagonal motion (down-right).
    TranslateDiagonal,
    /// Clockwise orbit around the clip centre.
    OrbitClockwise,
    /// Counter-clockwise orbit around the clip centre.
    OrbitCounterClockwise,
    /// Radius grows over time.
    Expand,
    /// Radius shrinks over time.
    Shrink,
    /// Shape toggles visibility periodically.
    Blink,
}

impl Motion {
    /// All motions in label order: `Motion::ALL[label]` is the class.
    pub const ALL: [Motion; 10] = [
        Motion::TranslateRight,
        Motion::TranslateLeft,
        Motion::TranslateUp,
        Motion::TranslateDown,
        Motion::TranslateDiagonal,
        Motion::OrbitClockwise,
        Motion::OrbitCounterClockwise,
        Motion::Expand,
        Motion::Shrink,
        Motion::Blink,
    ];

    /// The class label of this motion.
    pub fn label(&self) -> usize {
        Motion::ALL.iter().position(|m| m == self).expect("motion in ALL")
    }

    /// State of the shape at frame `t` of `frames`: centre `(y, x)`,
    /// radius, and visibility in `[0, 1]`.
    ///
    /// * `start` — initial centre (uniformly random, class-independent),
    /// * `speed` — pixels per frame (or radians per frame for orbits,
    ///   scale rate for expand/shrink),
    /// * `radius` — base radius,
    /// * `extent` — frame `(height, width)` used for orbit geometry.
    pub fn state_at(
        &self,
        t: usize,
        start: (f32, f32),
        speed: f32,
        radius: f32,
        extent: (usize, usize),
    ) -> MotionState {
        let tf = t as f32;
        let (sy, sx) = start;
        match self {
            Motion::TranslateRight => MotionState::visible((sy, sx + speed * tf), radius),
            Motion::TranslateLeft => MotionState::visible((sy, sx - speed * tf), radius),
            Motion::TranslateUp => MotionState::visible((sy - speed * tf, sx), radius),
            Motion::TranslateDown => MotionState::visible((sy + speed * tf, sx), radius),
            Motion::TranslateDiagonal => MotionState::visible(
                (
                    sy + speed * tf * std::f32::consts::FRAC_1_SQRT_2,
                    sx + speed * tf * std::f32::consts::FRAC_1_SQRT_2,
                ),
                radius,
            ),
            Motion::OrbitClockwise | Motion::OrbitCounterClockwise => {
                let (cy, cx) = (extent.0 as f32 / 2.0, extent.1 as f32 / 2.0);
                let r = ((sy - cy).powi(2) + (sx - cx).powi(2)).sqrt().max(2.0);
                let theta0 = (sy - cy).atan2(sx - cx);
                // Angular speed scaled so tangential speed ~= `speed` px/frame.
                let omega = speed / r;
                let theta = match self {
                    Motion::OrbitClockwise => theta0 + omega * tf,
                    _ => theta0 - omega * tf,
                };
                MotionState::visible((cy + r * theta.sin(), cx + r * theta.cos()), radius)
            }
            Motion::Expand => {
                MotionState::visible((sy, sx), radius * (1.0 + 0.12 * speed * tf))
            }
            Motion::Shrink => MotionState::visible(
                (sy, sx),
                (radius * (1.0 - 0.08 * speed * tf)).max(0.8),
            ),
            Motion::Blink => {
                // Period tied to speed; ~half duty cycle.
                let period = (6.0 / speed.max(0.25)).max(2.0);
                let phase = (tf / period).fract();
                let vis = if phase < 0.5 { 1.0 } else { 0.0 };
                MotionState {
                    centre: (sy, sx),
                    radius,
                    visibility: vis,
                }
            }
        }
    }
}

/// The instantaneous rendering state of a moving shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotionState {
    /// Centre `(y, x)` in pixels.
    pub centre: (f32, f32),
    /// Current radius in pixels.
    pub radius: f32,
    /// Visibility in `[0, 1]`.
    pub visibility: f32,
}

impl MotionState {
    fn visible(centre: (f32, f32), radius: f32) -> Self {
        MotionState {
            centre,
            radius,
            visibility: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_dense_and_stable() {
        for (i, m) in Motion::ALL.iter().enumerate() {
            assert_eq!(m.label(), i);
        }
    }

    #[test]
    fn first_frame_is_class_independent() {
        // At t=0 every (non-blink) motion renders the identical state.
        let start = (10.0, 12.0);
        let reference = Motion::TranslateRight.state_at(0, start, 1.5, 3.0, (24, 24));
        for m in Motion::ALL {
            let s = m.state_at(0, start, 1.5, 3.0, (24, 24));
            assert!(
                (s.centre.0 - reference.centre.0).abs() < 1e-4
                    && (s.centre.1 - reference.centre.1).abs() < 1e-4,
                "motion {m:?} leaks class into frame 0 position"
            );
            assert!((s.radius - reference.radius).abs() < 1e-4);
            assert_eq!(s.visibility, 1.0, "motion {m:?} hidden at t=0");
        }
    }

    #[test]
    fn translations_move_in_their_direction() {
        let start = (12.0, 12.0);
        let t5 = |m: Motion| m.state_at(5, start, 1.0, 3.0, (24, 24)).centre;
        assert!(t5(Motion::TranslateRight).1 > 12.0);
        assert!(t5(Motion::TranslateLeft).1 < 12.0);
        assert!(t5(Motion::TranslateUp).0 < 12.0);
        assert!(t5(Motion::TranslateDown).0 > 12.0);
        let d = t5(Motion::TranslateDiagonal);
        assert!(d.0 > 12.0 && d.1 > 12.0);
    }

    #[test]
    fn orbits_preserve_radius_from_centre() {
        let start = (6.0, 12.0);
        let extent = (24, 24);
        let r0 = ((6.0f32 - 12.0).powi(2) + (12.0f32 - 12.0).powi(2)).sqrt();
        for t in 0..8 {
            let s = Motion::OrbitClockwise.state_at(t, start, 1.0, 3.0, extent);
            let r = ((s.centre.0 - 12.0).powi(2) + (s.centre.1 - 12.0).powi(2)).sqrt();
            assert!((r - r0).abs() < 1e-3, "orbit drifts at t={t}: {r} vs {r0}");
        }
    }

    #[test]
    fn orbit_handedness_differs() {
        let start = (6.0, 12.0);
        let cw = Motion::OrbitClockwise.state_at(3, start, 1.5, 3.0, (24, 24));
        let ccw = Motion::OrbitCounterClockwise.state_at(3, start, 1.5, 3.0, (24, 24));
        assert!(
            (cw.centre.1 - ccw.centre.1).abs() > 0.5,
            "handedness indistinguishable"
        );
    }

    #[test]
    fn expand_grows_shrink_shrinks() {
        let start = (12.0, 12.0);
        let e = Motion::Expand.state_at(6, start, 1.0, 3.0, (24, 24));
        let s = Motion::Shrink.state_at(6, start, 1.0, 3.0, (24, 24));
        assert!(e.radius > 3.0);
        assert!(s.radius < 3.0);
        assert!(s.radius >= 0.8, "shrink must not vanish entirely");
    }

    #[test]
    fn blink_toggles() {
        let start = (12.0, 12.0);
        let states: Vec<f32> = (0..12)
            .map(|t| Motion::Blink.state_at(t, start, 1.0, 3.0, (24, 24)).visibility)
            .collect();
        assert!(states.contains(&1.0));
        assert!(states.contains(&0.0), "blink never hides: {states:?}");
    }

    #[test]
    fn shape_coverage_profiles() {
        // Full coverage at centre, zero far away, soft in between.
        for shape in ShapeKind::ALL {
            assert!(shape.coverage(0.0, 0.0, 3.0) >= 1.0 - 1e-6, "{shape:?} centre");
            assert_eq!(shape.coverage(20.0, 20.0, 3.0), 0.0, "{shape:?} far");
        }
        // Disc edge is soft: halfway across the boundary pixel.
        let edge = ShapeKind::Disc.coverage(3.0, 0.0, 3.0);
        assert!(edge > 0.0 && edge < 1.0);
    }

    #[test]
    fn square_and_disc_differ_off_axis() {
        // Corner of the square is inside; same point outside the disc.
        let r = 3.0;
        let sq = ShapeKind::Square.coverage(2.6, 2.6, r);
        let di = ShapeKind::Disc.coverage(2.6, 2.6, r);
        assert!(sq > 0.5);
        assert!(di < 0.5);
    }
}
