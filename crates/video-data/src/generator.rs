//! Clip generation and the dataset container.

use crate::motion::{Motion, ShapeKind};
use p3d_nn::Dataset;
use p3d_tensor::{Shape, Tensor, TensorRng};

/// Configuration of the synthetic clip generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Frames per clip (the paper uses 16-frame clips).
    pub frames: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Number of action classes, `1..=10` (prefix of [`Motion::ALL`]).
    pub num_classes: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Range of per-clip speeds (pixels per frame).
    pub speed: (f32, f32),
    /// Range of base shape radii in pixels.
    pub radius: (f32, f32),
    /// Number of static distractor shapes per clip. Distractors are
    /// drawn identically in every frame, adding appearance clutter that
    /// carries no motion information — the class signal stays purely
    /// temporal.
    pub distractors: usize,
}

impl GeneratorConfig {
    /// A small configuration for fast unit tests: 8 frames of 24x24,
    /// 4 classes.
    pub fn small() -> Self {
        GeneratorConfig {
            frames: 8,
            height: 24,
            width: 24,
            num_classes: 4,
            noise_std: 0.02,
            speed: (1.0, 2.0),
            radius: (2.5, 4.0),
            distractors: 0,
        }
    }

    /// The configuration used by the accuracy experiments: 8 frames of
    /// 32x32 with all 10 motion classes.
    pub fn standard() -> Self {
        GeneratorConfig {
            frames: 8,
            height: 32,
            width: 32,
            num_classes: 10,
            noise_std: 0.03,
            speed: (1.0, 2.5),
            radius: (3.0, 5.0),
            distractors: 0,
        }
    }

    /// A harder variant of [`GeneratorConfig::standard`]: two static
    /// distractor shapes clutter every frame, so appearance statistics
    /// are dominated by objects that never move.
    pub fn standard_hard() -> Self {
        GeneratorConfig {
            distractors: 2,
            ..GeneratorConfig::standard()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an unusable configuration (zero frames, more than 10
    /// classes, non-positive speed...).
    pub fn validate(&self) {
        assert!(self.frames > 0, "frames must be positive");
        assert!(self.height >= 8 && self.width >= 8, "frames too small");
        assert!(
            (1..=Motion::ALL.len()).contains(&self.num_classes),
            "num_classes must be 1..=10"
        );
        assert!(self.noise_std >= 0.0, "noise_std must be non-negative");
        assert!(self.speed.0 > 0.0 && self.speed.1 >= self.speed.0, "bad speed range");
        assert!(self.radius.0 > 0.0 && self.radius.1 >= self.radius.0, "bad radius range");
    }
}

/// Renders one clip `[1, D, H, W]` for `motion`.
///
/// Start position, shape, speed and radius come from `rng`; none of them
/// depend on the class.
pub fn render_clip(config: &GeneratorConfig, motion: Motion, rng: &mut TensorRng) -> Tensor {
    config.validate();
    let (h, w, d) = (config.height, config.width, config.frames);
    let radius = rng.uniform(config.radius.0, config.radius.1);
    let speed = rng.uniform(config.speed.0, config.speed.1);
    let shape = ShapeKind::ALL[rng.below(ShapeKind::ALL.len())];
    // Keep the start away from the border so several frames stay visible.
    let margin = radius + 2.0;
    let start = (
        rng.uniform(margin, h as f32 - margin),
        rng.uniform(margin, w as f32 - margin),
    );
    // Static distractors: sampled once per clip, drawn in every frame.
    let distractors: Vec<(ShapeKind, (f32, f32), f32)> = (0..config.distractors)
        .map(|_| {
            let r = rng.uniform(config.radius.0, config.radius.1);
            let shape = ShapeKind::ALL[rng.below(ShapeKind::ALL.len())];
            let pos = (
                rng.uniform(r + 1.0, h as f32 - r - 1.0),
                rng.uniform(r + 1.0, w as f32 - r - 1.0),
            );
            (shape, pos, r)
        })
        .collect();

    let mut clip = Tensor::zeros(Shape::d4(1, d, h, w));
    for t in 0..d {
        let state = motion.state_at(t, start, speed, radius, (h, w));
        if state.visibility > 0.0 {
            let frame = &mut clip.data_mut()[t * h * w..(t + 1) * h * w];
            // Only rasterise near the shape for speed.
            let r = state.radius + 1.5;
            let y0 = (state.centre.0 - r).floor().max(0.0) as usize;
            let y1 = ((state.centre.0 + r).ceil() as usize + 1).min(h);
            let x0 = (state.centre.1 - r).floor().max(0.0) as usize;
            let x1 = ((state.centre.1 + r).ceil() as usize + 1).min(w);
            for y in y0..y1 {
                for x in x0..x1 {
                    let c = shape.coverage(
                        y as f32 - state.centre.0,
                        x as f32 - state.centre.1,
                        state.radius,
                    );
                    if c > 0.0 {
                        let v = c * state.visibility;
                        let px = &mut frame[y * w + x];
                        *px = px.max(v);
                    }
                }
            }
        }
        // Distractors: identical in every frame (max-blended so overlap
        // with the moving shape never exceeds 1).
        let frame = &mut clip.data_mut()[t * h * w..(t + 1) * h * w];
        for &(shape, pos, r) in &distractors {
            let y0 = (pos.0 - r - 1.5).floor().max(0.0) as usize;
            let y1 = ((pos.0 + r + 1.5).ceil() as usize + 1).min(h);
            let x0 = (pos.1 - r - 1.5).floor().max(0.0) as usize;
            let x1 = ((pos.1 + r + 1.5).ceil() as usize + 1).min(w);
            for y in y0..y1 {
                for x in x0..x1 {
                    let c = shape.coverage(y as f32 - pos.0, x as f32 - pos.1, r);
                    if c > 0.0 {
                        let px = &mut frame[y * w + x];
                        *px = px.max(c * 0.7); // dimmer than the actor
                    }
                }
            }
        }
    }
    if config.noise_std > 0.0 {
        for x in clip.data_mut() {
            *x = (*x + rng.normal_with(0.0, config.noise_std)).clamp(0.0, 1.0);
        }
    }
    clip
}

/// An in-memory synthetic video dataset implementing [`Dataset`].
pub struct SyntheticVideo {
    clips: Vec<(Tensor, usize)>,
    num_classes: usize,
}

impl SyntheticVideo {
    /// Generates `n` clips with balanced class counts, deterministically
    /// from `seed`.
    pub fn generate(config: &GeneratorConfig, n: usize, seed: u64) -> Self {
        config.validate();
        let mut rng = TensorRng::seed(seed);
        let mut clips = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % config.num_classes;
            let clip = render_clip(config, Motion::ALL[label], &mut rng);
            clips.push((clip, label));
        }
        SyntheticVideo {
            clips,
            num_classes: config.num_classes,
        }
    }

    /// Generates disjoint train/test splits (different derived seeds).
    pub fn train_test(
        config: &GeneratorConfig,
        n_train: usize,
        n_test: usize,
        seed: u64,
    ) -> (Self, Self) {
        (
            SyntheticVideo::generate(config, n_train, seed.wrapping_mul(2).wrapping_add(1)),
            SyntheticVideo::generate(config, n_test, seed.wrapping_mul(2).wrapping_add(2)),
        )
    }

    /// Immutable access to the raw clips.
    pub fn clips(&self) -> &[(Tensor, usize)] {
        &self.clips
    }
}

impl Dataset for SyntheticVideo {
    fn len(&self) -> usize {
        self.clips.len()
    }

    fn sample(&self, idx: usize) -> (Tensor, usize) {
        let (clip, label) = &self.clips[idx];
        (clip.clone(), *label)
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = GeneratorConfig::small();
        let a = SyntheticVideo::generate(&cfg, 8, 3);
        let b = SyntheticVideo::generate(&cfg, 8, 3);
        for i in 0..8 {
            assert_eq!(a.sample(i).0, b.sample(i).0);
            assert_eq!(a.sample(i).1, b.sample(i).1);
        }
    }

    #[test]
    fn balanced_labels() {
        let cfg = GeneratorConfig::small();
        let data = SyntheticVideo::generate(&cfg, 40, 1);
        let mut counts = vec![0usize; cfg.num_classes];
        for i in 0..data.len() {
            counts[data.sample(i).1] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn clip_values_in_unit_range() {
        let cfg = GeneratorConfig::small();
        let data = SyntheticVideo::generate(&cfg, 8, 9);
        for i in 0..data.len() {
            let (clip, _) = data.sample(i);
            assert!(clip.min() >= 0.0 && clip.max() <= 1.0);
            // The shape must actually be drawn somewhere.
            assert!(clip.max() > 0.5, "clip {i} is empty");
        }
    }

    #[test]
    fn motion_is_present_across_frames() {
        // For a translation clip, consecutive frames must differ.
        let mut cfg = GeneratorConfig::small();
        cfg.noise_std = 0.0;
        let mut rng = TensorRng::seed(5);
        let clip = render_clip(&cfg, Motion::TranslateRight, &mut rng);
        let hw = cfg.height * cfg.width;
        let f0 = &clip.data()[0..hw];
        let f4 = &clip.data()[4 * hw..5 * hw];
        let diff: f32 = f0.iter().zip(f4).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "frames identical: no motion rendered");
    }

    #[test]
    fn frame0_statistics_close_across_classes() {
        // Mean intensity of frame 0 must not leak the label: compare the
        // per-class average of frame-0 mass over many clips.
        let mut cfg = GeneratorConfig::small();
        cfg.noise_std = 0.0;
        cfg.num_classes = 4;
        let hw = cfg.height * cfg.width;
        let mut per_class = [0.0f32; 4];
        let n_per = 24;
        let mut rng = TensorRng::seed(77);
        for (label, mass) in per_class.iter_mut().enumerate() {
            for _ in 0..n_per {
                let clip = render_clip(&cfg, Motion::ALL[label], &mut rng);
                *mass += clip.data()[0..hw].iter().sum::<f32>() / n_per as f32;
            }
        }
        let mean: f32 = per_class.iter().sum::<f32>() / 4.0;
        for (label, &m) in per_class.iter().enumerate() {
            assert!(
                (m - mean).abs() / mean < 0.35,
                "class {label} frame-0 mass {m} deviates from {mean}"
            );
        }
    }

    #[test]
    fn train_test_disjoint_seeds() {
        let cfg = GeneratorConfig::small();
        let (train, test) = SyntheticVideo::train_test(&cfg, 8, 8, 42);
        // Same index, same label parity, but different clip content.
        assert_ne!(train.sample(0).0, test.sample(0).0);
    }

    #[test]
    fn distractors_are_static_and_present() {
        let mut cfg = GeneratorConfig::small();
        cfg.noise_std = 0.0;
        cfg.distractors = 2;
        let mut rng = TensorRng::seed(31);
        let clip = render_clip(&cfg, Motion::TranslateRight, &mut rng);
        // A no-distractor clip from the same seed differs (less mass).
        let mut rng2 = TensorRng::seed(31);
        let mut plain_cfg = cfg.clone();
        plain_cfg.distractors = 0;
        let plain = render_clip(&plain_cfg, Motion::TranslateRight, &mut rng2);
        assert!(clip.sum() > plain.sum(), "distractors add no mass");
        // Distractor pixels are identical across frames: the per-frame
        // difference of the cluttered clip equals that of the plain clip
        // wherever the actor is absent. Cheap proxy: total inter-frame
        // change should not grow much with distractors.
        let hw = cfg.height * cfg.width;
        let change = |t: &Tensor| -> f32 {
            (1..cfg.frames)
                .map(|f| {
                    t.data()[f * hw..(f + 1) * hw]
                        .iter()
                        .zip(&t.data()[(f - 1) * hw..f * hw])
                        .map(|(a, b)| (a - b).abs())
                        .sum::<f32>()
                })
                .sum()
        };
        let (c_change, p_change) = (change(&clip), change(&plain));
        assert!(
            c_change <= p_change + 1e-3,
            "distractors leaked motion: {c_change} vs {p_change}"
        );
    }

    #[test]
    fn standard_hard_has_distractors() {
        assert_eq!(GeneratorConfig::standard_hard().distractors, 2);
        GeneratorConfig::standard_hard().validate();
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn too_many_classes_rejected() {
        let mut cfg = GeneratorConfig::small();
        cfg.num_classes = 11;
        let _ = SyntheticVideo::generate(&cfg, 4, 0);
    }
}
