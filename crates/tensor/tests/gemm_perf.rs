//! Perf smoke gate: the packed register-tiled microkernel must beat the
//! seeded naive kernel by a generous margin on a fixed single-threaded
//! GEMM shape.
//!
//! The real measurement only runs in release builds (`scripts/check.sh`
//! invokes this suite with `--release`); under `cargo test` in debug
//! mode the timing would measure the optimiser, not the kernel, so the
//! gate reduces to a correctness smoke check.

use p3d_tensor::gemm::{gemm_naive_into, gemm_packed_into};
use p3d_tensor::parallel::set_thread_override;

/// A shape representative of the deeper conv-as-GEMM layers:
/// `[M, K] x [K, N]` with K = in_channels * kernel volume and N = output
/// positions. The right operand (~4 MB) deliberately exceeds a typical
/// L2 so the structural difference shows: the naive kernel re-streams
/// all of B once per output row, while the packed kernel streams it
/// exactly once and reuses each L1-resident panel across every row
/// tile.
const M: usize = 64;
const K: usize = 432; // 16 channels x 27 taps
const N: usize = 2304; // 12 x 12 x 16

fn operands() -> (Vec<f32>, Vec<f32>) {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    };
    let a = (0..M * K).map(|_| next()).collect();
    let b = (0..K * N).map(|_| next()).collect();
    (a, b)
}

fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn packed_kernel_at_least_1_5x_naive_single_thread() {
    let (a, b) = operands();
    let mut out_naive = vec![0.0f32; M * N];
    let mut out_packed = vec![0.0f32; M * N];
    set_thread_override(Some(1));
    // Correctness either way; the bitwise identity is the load-bearing
    // contract and holds in debug and release alike.
    gemm_naive_into(&a, M, K, &b, N, &mut out_naive);
    gemm_packed_into(&a, M, K, &b, N, &mut out_packed);
    let nb: Vec<u32> = out_naive.iter().map(|x| x.to_bits()).collect();
    let pb: Vec<u32> = out_packed.iter().map(|x| x.to_bits()).collect();
    assert_eq!(nb, pb, "packed kernel diverged from naive");

    #[cfg(not(debug_assertions))]
    {
        // Warm once, then best-of-several to shrug off co-tenant noise.
        let t_naive = time_best(7, || gemm_naive_into(&a, M, K, &b, N, &mut out_naive));
        let t_packed = time_best(7, || gemm_packed_into(&a, M, K, &b, N, &mut out_packed));
        let speedup = t_naive / t_packed.max(1e-12);
        assert!(
            speedup >= 1.5,
            "packed microkernel only {speedup:.2}x naive \
             ({:.3} ms vs {:.3} ms on {M}x{K}x{N})",
            t_packed * 1e3,
            t_naive * 1e3,
        );
    }
    #[cfg(debug_assertions)]
    {
        // Keep the helper used in debug builds too.
        let _ = time_best(1, || {});
    }
    set_thread_override(None);
}

/// Release perf gate for the explicit AVX2 microkernel: on an AVX2 host
/// the packed kernel must beat its own forced-scalar fallback by ≥ 1.3x
/// on the same shape, measured with the paired interleaved estimator
/// (best per-rep back-to-back ratio, which cancels co-tenant noise).
/// Skips (trivially passes) when the host lacks AVX2. Debug builds only
/// check the bitwise identity of the two paths.
#[test]
fn avx2_kernel_at_least_1_3x_forced_scalar() {
    use p3d_tensor::simd;

    let (a, b) = operands();
    let mut out_simd = vec![0.0f32; M * N];
    let mut out_scalar = vec![0.0f32; M * N];
    set_thread_override(Some(1));

    // Bitwise identity in every build profile.
    gemm_packed_into(&a, M, K, &b, N, &mut out_simd);
    simd::force_scalar(true);
    gemm_packed_into(&a, M, K, &b, N, &mut out_scalar);
    simd::force_scalar(false);
    let sb: Vec<u32> = out_simd.iter().map(|x| x.to_bits()).collect();
    let cb: Vec<u32> = out_scalar.iter().map(|x| x.to_bits()).collect();
    assert_eq!(sb, cb, "AVX2 path diverged from forced scalar");

    #[cfg(not(debug_assertions))]
    if simd::detected() == simd::SimdLevel::Avx2 {
        // Paired interleaved: per rep, time scalar then AVX2 back to
        // back and take the best ratio across reps.
        let mut best = 0.0f64;
        for _ in 0..7 {
            simd::force_scalar(true);
            let t0 = std::time::Instant::now();
            gemm_packed_into(&a, M, K, &b, N, &mut out_scalar);
            let t_scalar = t0.elapsed().as_secs_f64();
            simd::force_scalar(false);
            let t1 = std::time::Instant::now();
            gemm_packed_into(&a, M, K, &b, N, &mut out_simd);
            let t_simd = t1.elapsed().as_secs_f64();
            best = best.max(t_scalar / t_simd.max(1e-12));
        }
        assert!(
            best >= 1.3,
            "AVX2 microkernel only {best:.2}x forced scalar on {M}x{K}x{N} \
             (features: {})",
            simd::cpu_features(),
        );
    }
    set_thread_override(None);
}
