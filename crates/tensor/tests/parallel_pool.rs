//! Persistent-pool acceptance suite for `p3d_tensor::parallel`.
//!
//! Pins the three contracts the pool must honour process-wide, in a
//! dedicated integration binary so the pool under test starts cold and
//! its lifetime counters ([`pool_stats`]) are not perturbed by unrelated
//! unit tests:
//!
//! 1. **Bitwise determinism** — every one of the six helpers produces
//!    bit-identical output at 1, 2, 4, and 8 forced workers, because
//!    outputs depend only on global chunk indices, never on scheduling.
//! 2. **Panic containment + worker replacement** — a panic in a region
//!    closure reaches the submitter with its original payload, the
//!    retired worker is replaced, and later regions still run parallel.
//! 3. **Nesting degrades to serial** — helper calls from inside a worker
//!    see `max_threads() == 1`, and the caller-side nesting mark is
//!    unwound correctly on panic.
//!
//! Tests share one process (the pool is process-global), so every test
//! serialises on a lock before touching the thread override.

use p3d_tensor::parallel::{
    max_threads, parallel_chunk_map, parallel_chunk_map_collect, parallel_for, parallel_map,
    parallel_worker_chunks, parallel_zip_chunk_map, pool_stats, set_thread_override,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialises tests: the thread override and the pool are process-wide.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `run` at every worker count and asserts all outputs are
/// *identical* (the first count's output is the reference).
fn assert_bitwise_across_counts<T: PartialEq + std::fmt::Debug>(
    mut run: impl FnMut() -> T,
    what: &str,
) {
    let mut reference: Option<T> = None;
    for &t in &WORKER_COUNTS {
        set_thread_override(Some(t));
        let out = run();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "{what}: {t} workers diverged from 1"),
        }
    }
    set_thread_override(None);
}

/// A deterministic non-associative-float workload: any change in chunk
/// partitioning or reduction order flips low-order mantissa bits, so
/// `==` on bit patterns is a real scheduling-independence check.
fn wiggle(i: usize) -> f32 {
    let x = (i as f32) * 0.731 + 0.172;
    (x * x + 1.0) / (x + 3.0)
}

#[test]
fn all_six_helpers_bitwise_identical_across_worker_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    const N: usize = 103; // prime: uneven tails at every worker count

    assert_bitwise_across_counts(
        || {
            let mut out = vec![0u32; N];
            let base = out.as_mut_ptr() as usize;
            parallel_for(N, |range| {
                for i in range {
                    // Disjoint ranges: writes race-free by construction.
                    unsafe { *(base as *mut u32).add(i) = wiggle(i).to_bits() };
                }
            });
            out
        },
        "parallel_for",
    );

    assert_bitwise_across_counts(
        || parallel_map(N, |i| wiggle(i).to_bits()),
        "parallel_map",
    );

    assert_bitwise_across_counts(
        || {
            let mut data: Vec<f32> = (0..N).map(wiggle).collect();
            parallel_chunk_map(&mut data, 7, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = *x * wiggle(ci) + j as f32;
                }
            });
            data.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        },
        "parallel_chunk_map",
    );

    assert_bitwise_across_counts(
        || {
            let mut data: Vec<f32> = (0..N).map(wiggle).collect();
            let sums = parallel_chunk_map_collect(&mut data, 7, |ci, chunk| {
                // Serial in-chunk sum: order fixed by the chunk itself.
                chunk.iter().fold(wiggle(ci), |a, &x| a + x).to_bits()
            });
            // Fixed-order reduction over the in-order partials.
            let folded = sums
                .iter()
                .fold(0.0f32, |a, &b| a + f32::from_bits(b))
                .to_bits();
            (sums, folded)
        },
        "parallel_chunk_map_collect",
    );

    assert_bitwise_across_counts(
        || {
            let mut a: Vec<f32> = (0..96).map(wiggle).collect();
            let mut b: Vec<f32> = (0..48).map(|i| wiggle(i + 7)).collect();
            parallel_zip_chunk_map(&mut a, 8, &mut b, 4, |ci, ca, cb| {
                for (x, y) in ca.chunks(2).zip(cb.iter_mut()) {
                    *y += x[0] * x[1] + wiggle(ci);
                }
            });
            b.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        },
        "parallel_zip_chunk_map",
    );

    assert_bitwise_across_counts(
        || {
            // Replica states (same value), as the inference engine uses:
            // outputs must not depend on which replica ran a chunk.
            let mut states = vec![1.5f32; 8];
            let mut data: Vec<f32> = (0..N).map(wiggle).collect();
            parallel_worker_chunks(&mut data, 9, &mut states, |s, ci, chunk| {
                for x in chunk.iter_mut() {
                    *x = *x * *s + wiggle(ci);
                }
            });
            data.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        },
        "parallel_worker_chunks",
    );
}

#[test]
fn worker_panic_is_contained_replaced_and_pool_stays_parallel() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    set_thread_override(Some(4));

    // Establish a live pool and count its workers.
    parallel_for(64, |r| {
        std::hint::black_box(r.len());
    });
    let before = pool_stats();
    assert!(before.live >= 1, "warm-up region should have spawned workers");

    // Panic in a worker-side task (task index > 0 so a pool worker, not
    // the submitting thread, hits it).
    let err = std::panic::catch_unwind(|| {
        parallel_map(4, |i| {
            if i == 3 {
                panic!("pool-suite boom {i}");
            }
            i
        })
    })
    .expect_err("worker panic must reach the submitter");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("pool-suite boom"), "payload lost: {msg:?}");

    // Subsequent regions must still run genuinely parallel: observe more
    // than one distinct OS thread participating.
    let distinct = {
        let ids: Vec<u64> = parallel_map(8, |_i| {
            // Hash the thread id via its Debug formatting; ThreadId has
            // no stable accessor on MSRV 1.75.
            let s = format!("{:?}", std::thread::current().id());
            let mut h = 0u64;
            for b in s.bytes() {
                h = h.wrapping_mul(31).wrapping_add(b as u64);
            }
            std::thread::yield_now(); // encourage worker interleaving
            h
        });
        let mut ids2 = ids.clone();
        ids2.sort_unstable();
        ids2.dedup();
        ids2.len()
    };
    assert!(
        distinct >= 2,
        "pool went serial after a contained panic ({distinct} distinct threads)"
    );

    // The retired worker was replaced, and replacement is visible in the
    // lifetime counters.
    let after = pool_stats();
    assert!(
        after.respawned > before.respawned,
        "no worker replacement recorded: {before:?} -> {after:?}"
    );
    assert!(
        after.live >= before.live,
        "pool shrank after a contained panic: {before:?} -> {after:?}"
    );
    set_thread_override(None);
}

#[test]
fn nested_regions_degrade_to_serial_inside_workers() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    set_thread_override(Some(4));
    let nested_parallel = AtomicUsize::new(0);
    let mut data = vec![0usize; 8];
    parallel_chunk_map(&mut data, 1, |_ci, chunk| {
        if max_threads() != 1 {
            nested_parallel.fetch_add(1, Ordering::Relaxed);
        }
        // A nested helper call must still be correct (and serial).
        chunk[0] = parallel_map(5, |i| i + 1).iter().sum::<usize>();
    });
    assert_eq!(
        nested_parallel.load(Ordering::Relaxed),
        0,
        "a region closure observed a multi-thread budget while nested"
    );
    assert_eq!(data, vec![15; 8]);
    set_thread_override(None);
}
