//! Property-based tests for the tensor substrate.

use p3d_tensor::fixed::MacAccumulator;
use p3d_tensor::shape::{ceil_div, conv_out};
use p3d_tensor::{Fixed16, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..=5)
}

proptest! {
    #[test]
    fn shape_offset_bijective(dims in small_dims()) {
        let s = Shape::new(&dims);
        let mut seen = vec![false; s.len()];
        // Walk every index; offsets must be a bijection onto 0..len.
        for off in 0..s.len() {
            let idx = s.index_of(off);
            let back = s.offset(&idx);
            prop_assert_eq!(back, off);
            prop_assert!(!seen[back]);
            seen[back] = true;
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn strides_consistent_with_offset(dims in small_dims()) {
        let s = Shape::new(&dims);
        let strides = s.strides();
        let idx = s.index_of(s.len() - 1);
        let manual: usize = idx.iter().zip(&strides).map(|(i, st)| i * st).sum();
        prop_assert_eq!(manual, s.len() - 1);
    }

    #[test]
    fn ceil_div_bounds(a in 0usize..10_000, b in 1usize..100) {
        let c = ceil_div(a, b);
        prop_assert!(c * b >= a);
        prop_assert!(c == 0 || (c - 1) * b < a);
    }

    #[test]
    fn conv_out_covers_input(input in 1usize..200, kernel in 1usize..8, stride in 1usize..4, pad in 0usize..4) {
        prop_assume!(input + 2 * pad >= kernel);
        let o = conv_out(input, kernel, stride, pad);
        // The last window must start inside the padded input.
        prop_assert!((o - 1) * stride + kernel <= input + 2 * pad);
        // One more output position would overflow.
        prop_assert!(o * stride + kernel > input + 2 * pad);
    }

    #[test]
    fn axpy_matches_reference(xs in prop::collection::vec(-10.0f32..10.0, 1..64),
                              ys in prop::collection::vec(-10.0f32..10.0, 1..64),
                              alpha in -2.0f32..2.0) {
        let n = xs.len().min(ys.len());
        let a = Tensor::from_vec([n], xs[..n].to_vec());
        let b = Tensor::from_vec([n], ys[..n].to_vec());
        let mut c = a.clone();
        c.axpy(alpha, &b);
        for i in 0..n {
            prop_assert!((c.data()[i] - (xs[i] + alpha * ys[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-3.0f32..3.0, 6),
        b in prop::collection::vec(-3.0f32..3.0, 6),
        c in prop::collection::vec(-3.0f32..3.0, 6),
    ) {
        let a = Tensor::from_vec([2, 3], a);
        let b = Tensor::from_vec([3, 2], b);
        let c = Tensor::from_vec([3, 2], c);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn fixed_conversion_error_bounded(x in -127.9f32..127.9) {
        let q = Fixed16::from_f32(x);
        prop_assert!((q.to_f32() - x).abs() <= 0.5 / 256.0 + 1e-6);
    }

    #[test]
    fn fixed_add_commutes(a in -60.0f32..60.0, b in -60.0f32..60.0) {
        let (fa, fb) = (Fixed16::from_f32(a), Fixed16::from_f32(b));
        prop_assert_eq!(fa + fb, fb + fa);
        prop_assert_eq!(fa * fb, fb * fa);
    }

    #[test]
    fn fixed_add_matches_float_in_range(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let sum = Fixed16::from_f32(a) + Fixed16::from_f32(b);
        // Two quantisations plus exact fixed add: error < 1 ULP.
        prop_assert!((sum.to_f32() - (a + b)).abs() <= 1.0 / 256.0 + 1e-6);
    }

    #[test]
    fn mac_matches_float_reference(pairs in prop::collection::vec((-2.0f32..2.0, -2.0f32..2.0), 1..128)) {
        let mut acc = MacAccumulator::new();
        let mut reference = 0.0f64;
        for &(a, b) in &pairs {
            let (fa, fb) = (Fixed16::from_f32(a), Fixed16::from_f32(b));
            acc.mac(fa, fb);
            reference += fa.to_f32() as f64 * fb.to_f32() as f64;
        }
        prop_assume!(reference.abs() < 120.0);
        let got = acc.finish().to_f32() as f64;
        // The accumulator is exact; only the final rounding loses <= 1/512.
        prop_assert!((got - reference).abs() <= 0.5 / 256.0 + 1e-6);
    }

    #[test]
    fn frobenius_norm_scales(xs in prop::collection::vec(-5.0f32..5.0, 1..64), k in -3.0f32..3.0) {
        let t = Tensor::from_vec([xs.len()], xs);
        let scaled = &t * k;
        prop_assert!((scaled.frobenius_norm() - k.abs() * t.frobenius_norm()).abs() < 1e-3);
    }
}
