//! Property-based differential tests for the packed GEMM microkernel and
//! the block-sparse kernel.
//!
//! Every kernel in `p3d_tensor::gemm` promises the *canonical
//! accumulation order*: each output element sums its non-zero left-hand
//! terms in increasing `k`, left-associated, starting from `0.0`, with
//! exactly-zero left entries skipped. These tests pin that promise
//! differentially — packed vs naive, block-sparse vs dense-on-masked
//! weights — demanding **bitwise** equality on random shapes, including
//! the edge tiles (`m < MR`, `n < NR`, `k = 1`) the dispatcher would
//! normally route to the naive kernel.

use p3d_tensor::gemm::{
    gemm_naive_into, gemm_naive_nt_into, gemm_packed_into, gemm_packed_nt_into, MR, NR,
};
use p3d_tensor::{gemm_bs_into, gemm_into, gemm_nt_into, BlockPattern, BlockSparseWeights};
use proptest::prelude::*;

/// Deterministic pseudo-random f32s in [-1, 1), with an exact-zero
/// fraction so the zero-skip path is exercised on every case.
fn values(len: usize, seed: u64, zero_every: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed microkernel path is bitwise identical to the naive
    /// kernel on arbitrary shapes — including edge tiles smaller than
    /// one MR x NR register tile, forced through `gemm_packed_into`
    /// directly (the public `gemm_into` would dispatch those to the
    /// naive kernel and make the test vacuous).
    #[test]
    fn packed_bitwise_equals_naive(
        m in 1usize..3 * MR + 2,
        k in 1usize..24,
        n in 1usize..2 * NR + 3,
        seed in any::<u64>(),
        zero_every in 0usize..5,
    ) {
        let a = values(m * k, seed, zero_every);
        let b = values(k * n, seed ^ 0xb0b, 0);
        let mut naive = vec![f32::NAN; m * n];
        let mut packed = vec![f32::NAN; m * n];
        gemm_naive_into(&a, m, k, &b, n, &mut naive);
        gemm_packed_into(&a, m, k, &b, n, &mut packed);
        prop_assert_eq!(bits(&naive), bits(&packed));
        // And the public dispatcher agrees with both.
        let mut dispatched = vec![f32::NAN; m * n];
        gemm_into(&a, m, k, &b, n, &mut dispatched);
        prop_assert_eq!(bits(&naive), bits(&dispatched));
    }

    /// Same for the transposed-B (`b` stored `[n, k]`) variant used by
    /// `matmul_nt` and the conv backward-weights path.
    #[test]
    fn packed_nt_bitwise_equals_naive_nt(
        m in 1usize..3 * MR + 2,
        k in 1usize..24,
        n in 1usize..2 * NR + 3,
        seed in any::<u64>(),
        zero_every in 0usize..5,
    ) {
        let a = values(m * k, seed, zero_every);
        let b_nk = values(n * k, seed ^ 0xcafe, 0);
        let mut naive = vec![f32::NAN; m * n];
        let mut packed = vec![f32::NAN; m * n];
        gemm_naive_nt_into(&a, m, k, &b_nk, n, &mut naive);
        gemm_packed_nt_into(&a, m, k, &b_nk, n, &mut packed);
        prop_assert_eq!(bits(&naive), bits(&packed));
        let mut dispatched = vec![f32::NAN; m * n];
        gemm_nt_into(&a, m, k, &b_nk, n, &mut dispatched);
        prop_assert_eq!(bits(&naive), bits(&dispatched));
    }

    /// Exactly-zero left entries never touch the right operand: NaNs in
    /// B columns that only meet zero A entries cannot leak into the
    /// output of either kernel.
    #[test]
    fn zero_left_rows_never_read_b(
        m in 1usize..2 * MR + 1,
        k in 1usize..12,
        n in 1usize..NR + 5,
        seed in any::<u64>(),
        poisoned_p in 0usize..12,
    ) {
        let poisoned_p = poisoned_p % k;
        let mut a = values(m * k, seed, 3);
        // Zero the whole A column `poisoned_p` and poison the matching
        // B row: any read of it would surface as NaN.
        for r in 0..m {
            a[r * k + poisoned_p] = 0.0;
        }
        let mut b = values(k * n, seed ^ 0xdead, 0);
        for j in 0..n {
            b[poisoned_p * n + j] = f32::NAN;
        }
        for out in [
            {
                let mut o = vec![0.0f32; m * n];
                gemm_naive_into(&a, m, k, &b, n, &mut o);
                o
            },
            {
                let mut o = vec![0.0f32; m * n];
                gemm_packed_into(&a, m, k, &b, n, &mut o);
                o
            },
        ] {
            prop_assert!(
                out.iter().all(|x| !x.is_nan()),
                "a kernel read a B row guarded by exact zeros"
            );
        }
    }

    /// The block-sparse kernel is bitwise identical to the dense kernels
    /// on masked weights, over random grids, block shapes (including
    /// ragged edges where `tm`/`tk` do not divide `m`/`k`), and random
    /// keep bitmaps. Weights outside enabled blocks are zeroed first —
    /// the pruned-checkpoint precondition under which skipping is exact.
    #[test]
    fn block_sparse_bitwise_equals_dense_on_masked_weights(
        tm in 1usize..6,
        tk in 1usize..7,
        brows in 1usize..4,
        bcols in 1usize..4,
        ragged_m in 0usize..3,
        ragged_k in 0usize..4,
        n in 1usize..NR + 9,
        seed in any::<u64>(),
        keep in prop::collection::vec(any::<bool>(), 16),
    ) {
        let m = (brows * tm).saturating_sub(ragged_m).max(1);
        let k = (bcols * tk).saturating_sub(ragged_k).max(1);
        let pattern = BlockPattern {
            m,
            k,
            tm,
            tk,
            keep: (0..m.div_ceil(tm) * k.div_ceil(tk))
                .map(|i| keep[i % keep.len()])
                .collect(),
        };
        let mut a = values(m * k, seed, 0);
        // Enforce the precondition: disabled blocks hold exact zeros.
        for bi in 0..m.div_ceil(tm) {
            for bj in 0..k.div_ceil(tk) {
                if pattern.keep[bi * k.div_ceil(tk) + bj] {
                    continue;
                }
                for r in bi * tm..((bi + 1) * tm).min(m) {
                    for c in bj * tk..((bj + 1) * tk).min(k) {
                        a[r * k + c] = 0.0;
                    }
                }
            }
        }
        let b = values(k * n, seed ^ 0xfeed, 0);
        let w = BlockSparseWeights::compile(&a, &pattern);
        let mut dense = vec![f32::NAN; m * n];
        let mut sparse = vec![f32::NAN; m * n];
        gemm_into(&a, m, k, &b, n, &mut dense);
        gemm_bs_into(&w, &b, n, &mut sparse);
        prop_assert_eq!(bits(&dense), bits(&sparse));
    }

    /// `refresh` re-reads the weights without recompiling: after an
    /// in-place weight update (same sparsity pattern), the sparse kernel
    /// tracks the new values bitwise.
    #[test]
    fn refresh_tracks_updates_bitwise(
        n in 1usize..NR + 3,
        seed in any::<u64>(),
        keep in prop::collection::vec(any::<bool>(), 4),
    ) {
        let (m, k, tm, tk) = (6usize, 8usize, 3usize, 4usize);
        let pattern = BlockPattern { m, k, tm, tk, keep: keep.clone() };
        let zero_disabled = |a: &mut [f32]| {
            for bi in 0..2 {
                for bj in 0..2 {
                    if keep[bi * 2 + bj] {
                        continue;
                    }
                    for r in bi * tm..(bi + 1) * tm {
                        for c in bj * tk..(bj + 1) * tk {
                            a[r * k + c] = 0.0;
                        }
                    }
                }
            }
        };
        let mut a = values(m * k, seed, 0);
        zero_disabled(&mut a);
        let mut w = BlockSparseWeights::compile(&a, &pattern);
        // Simulate a training step: new values, same pattern.
        let mut a2 = values(m * k, seed ^ 0x5eed, 0);
        zero_disabled(&mut a2);
        w.refresh(&a2);
        let b = values(k * n, seed ^ 0xabc, 0);
        let mut dense = vec![f32::NAN; m * n];
        let mut sparse = vec![f32::NAN; m * n];
        gemm_into(&a2, m, k, &b, n, &mut dense);
        gemm_bs_into(&w, &b, n, &mut sparse);
        prop_assert_eq!(bits(&dense), bits(&sparse));
    }
}

/// AVX2-vs-scalar bitwise gate for the f32 kernels: runs the packed and
/// block-sparse kernels once on the detected SIMD level and once with
/// the scalar fallback explicitly forced, and demands bit-for-bit equal
/// outputs. On an AVX2 host this pins the explicit-intrinsics kernels
/// against the portable bodies; on a non-AVX2 host it degenerates to
/// scalar-vs-scalar (still a valid, if vacuous, run).
///
/// Flipping `force_scalar` is process-wide, but safe to do concurrently
/// with the other tests in this binary precisely because of the property
/// under test: both paths produce identical bits, so which one a
/// neighbouring test happens to take cannot change its result.
#[test]
fn avx2_and_forced_scalar_f32_kernels_bitwise_identical() {
    use p3d_tensor::simd;

    let (m, k, n) = (3 * MR + 1, 37, 2 * NR + 5);
    let a = values(m * k, 0xa2c5_0001, 4); // exact zeros exercise zero-skip
    let b = values(k * n, 0xa2c5_0002, 0);

    // Dense packed kernel, both paths.
    let mut out_simd = vec![f32::NAN; m * n];
    let mut out_scalar = vec![f32::NAN; m * n];
    gemm_packed_into(&a, m, k, &b, n, &mut out_simd);
    simd::force_scalar(true);
    let scalar_level = simd::active();
    gemm_packed_into(&a, m, k, &b, n, &mut out_scalar);
    simd::force_scalar(false);
    assert_eq!(scalar_level.name(), "scalar");
    assert_eq!(
        bits(&out_simd),
        bits(&out_scalar),
        "packed kernel: {} path diverged from forced scalar",
        simd::detected().name()
    );

    // Block-sparse kernel, both paths (ragged grid, mixed keep bitmap).
    let (tm, tk) = (3usize, 5usize);
    let brows = m.div_ceil(tm);
    let bcols = k.div_ceil(tk);
    let pattern = BlockPattern {
        m,
        k,
        tm,
        tk,
        keep: (0..brows * bcols).map(|i| i % 3 != 1).collect(),
    };
    let mut am = a.clone();
    for bi in 0..brows {
        for bj in 0..bcols {
            if pattern.keep[bi * bcols + bj] {
                continue;
            }
            for r in bi * tm..((bi + 1) * tm).min(m) {
                for c in bj * tk..((bj + 1) * tk).min(k) {
                    am[r * k + c] = 0.0;
                }
            }
        }
    }
    let w = BlockSparseWeights::compile(&am, &pattern);
    let mut bs_simd = vec![f32::NAN; m * n];
    let mut bs_scalar = vec![f32::NAN; m * n];
    gemm_bs_into(&w, &b, n, &mut bs_simd);
    simd::force_scalar(true);
    gemm_bs_into(&w, &b, n, &mut bs_scalar);
    simd::force_scalar(false);
    assert_eq!(
        bits(&bs_simd),
        bits(&bs_scalar),
        "block-sparse kernel: {} path diverged from forced scalar",
        simd::detected().name()
    );
}
