//! Determinism and correctness of the parallel GEMM kernel.
//!
//! Two guarantees are checked here:
//!
//! 1. **Bitwise determinism**: the same product computed with 1, 2, and 8
//!    workers is *identical* (not merely close) — row ownership never
//!    changes the arithmetic, only who executes it.
//! 2. **Correctness**: the blocked, zero-skipping kernel agrees with a
//!    naive triple-loop reference to 1e-5 on random inputs.

use p3d_tensor::parallel::set_thread_override;
use p3d_tensor::{Tensor, TensorRng};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises tests that mutate the process-wide thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.data()[i * k + p] * b.data()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec([m, n], out)
}

#[test]
fn matmul_bitwise_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = TensorRng::seed(42);
    for (m, k, n) in [(17, 33, 29), (1, 64, 5), (64, 1, 64), (9, 9, 257)] {
        let a = rng.uniform_tensor([m, k], -1.0, 1.0);
        let b = rng.uniform_tensor([k, n], -1.0, 1.0);
        set_thread_override(Some(1));
        let r1 = a.matmul(&b);
        let nt1 = a.matmul_nt(&b.transpose2());
        let tn1 = a.transpose2().matmul_tn(&b);
        for threads in [2, 8] {
            set_thread_override(Some(threads));
            assert_eq!(r1, a.matmul(&b), "matmul differs at {threads} threads");
            assert_eq!(
                nt1,
                a.matmul_nt(&b.transpose2()),
                "matmul_nt differs at {threads} threads"
            );
            assert_eq!(
                tn1,
                a.transpose2().matmul_tn(&b),
                "matmul_tn differs at {threads} threads"
            );
        }
    }
    set_thread_override(None);
}

#[test]
fn sparse_matmul_bitwise_identical_across_thread_counts() {
    // Same check with pruned (mostly-zero) left operands — the zero-skip
    // branch must not interact with row distribution.
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = TensorRng::seed(7);
    let dense = rng.uniform_tensor([24, 32], -1.0, 1.0);
    let mut sparse_data = dense.data().to_vec();
    for (i, x) in sparse_data.iter_mut().enumerate() {
        if i % 3 != 0 {
            *x = 0.0;
        }
    }
    let a = Tensor::from_vec([24, 32], sparse_data);
    let b = rng.uniform_tensor([32, 40], -1.0, 1.0);
    set_thread_override(Some(1));
    let r1 = a.matmul(&b);
    for threads in [2, 8] {
        set_thread_override(Some(threads));
        assert_eq!(r1, a.matmul(&b), "sparse matmul differs at {threads} threads");
    }
    set_thread_override(None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocked_kernel_matches_naive_reference(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
    ) {
        let mut rng = TensorRng::seed(seed);
        let a = rng.uniform_tensor([m, k], -2.0, 2.0);
        let b = rng.uniform_tensor([k, n], -2.0, 2.0);
        let reference = naive_matmul(&a, &b);
        prop_assert!(a.matmul(&b).allclose(&reference, 1e-5));
        prop_assert!(a.matmul_nt(&b.transpose2()).allclose(&reference, 1e-5));
        prop_assert!(a.transpose2().matmul_tn(&b).allclose(&reference, 1e-5));
    }

    #[test]
    fn wide_products_cross_column_blocks(seed in 0u64..50) {
        // n > GEMM column block width: block boundaries must be seamless.
        let mut rng = TensorRng::seed(seed);
        let a = rng.uniform_tensor([3, 5], -1.0, 1.0);
        let b = rng.uniform_tensor([5, 300], -1.0, 1.0);
        prop_assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-5));
    }
}
