//! Property-based differential tests for the Q7.8 fixed-point datapath:
//! `Fixed16` conversion/arithmetic against exact integer references, and
//! `MacAccumulator` against a plain `i64` sum of products.

use p3d_tensor::fixed::{MacAccumulator, FRAC_BITS, SCALE};
use p3d_tensor::{Fixed16, FixedTensor, Tensor};
use proptest::prelude::*;

/// The exact Q7.8 result of a wide value: round-half-up then clamp —
/// the contract both `saturating_mul` and `MacAccumulator::finish`
/// promise, expressed once in `i64`.
fn round_clamp_q78(wide: i64) -> i16 {
    let rounded = (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
    rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16
}

fn bits_strategy() -> impl Strategy<Value = i16> {
    (i16::MIN as i32..=i16::MAX as i32).prop_map(|b| b as i16)
}

proptest! {
    #[test]
    fn to_f32_from_f32_roundtrip_is_identity(bits in bits_strategy()) {
        // Every representable Q7.8 value survives a float round trip
        // bit-exactly: `to_f32` is exact and `from_f32` re-scales to the
        // same integer.
        let x = Fixed16::from_bits(bits);
        prop_assert_eq!(Fixed16::from_f32(x.to_f32()), x);
    }

    #[test]
    fn from_f32_error_within_half_ulp(x in -128.0f32..127.996) {
        // Round-to-nearest: at most half an ULP (1/512) of error for
        // in-range inputs (small slack for the f32 scale multiply).
        let q = Fixed16::from_f32(x);
        let err = (q.to_f32() - x).abs();
        prop_assert!(
            err <= FixedTensor::half_ulp() * 1.01,
            "error {} above half ULP for {}", err, x
        );
    }

    #[test]
    fn addition_matches_clamped_integer_reference(a in bits_strategy(), b in bits_strategy()) {
        let ideal = a as i32 + b as i32;
        let got = (Fixed16::from_bits(a) + Fixed16::from_bits(b)).to_bits() as i32;
        prop_assert_eq!(got, ideal.clamp(i16::MIN as i32, i16::MAX as i32));
        // Subtraction rides the same saturating path.
        let ideal_sub = a as i32 - b as i32;
        let got_sub = (Fixed16::from_bits(a) - Fixed16::from_bits(b)).to_bits() as i32;
        prop_assert_eq!(got_sub, ideal_sub.clamp(i16::MIN as i32, i16::MAX as i32));
    }

    #[test]
    fn multiplication_matches_rounded_clamped_reference(a in bits_strategy(), b in bits_strategy()) {
        let ideal = round_clamp_q78(a as i64 * b as i64);
        let got = (Fixed16::from_bits(a) * Fixed16::from_bits(b)).to_bits();
        prop_assert_eq!(got, ideal);
    }

    #[test]
    fn negation_saturates_only_at_min(bits in bits_strategy()) {
        let got = (-Fixed16::from_bits(bits)).to_bits() as i32;
        let ideal = (-(bits as i32)).clamp(i16::MIN as i32, i16::MAX as i32);
        prop_assert_eq!(got, ideal);
    }

    #[test]
    fn accumulator_matches_i64_reference_exactly(
        pairs in prop::collection::vec(
            ((i16::MIN as i32..=i16::MAX as i32), (i16::MIN as i32..=i16::MAX as i32)),
            1..64,
        ),
        init in bits_strategy(),
    ) {
        // The wide register must hold the sum of full-precision products
        // exactly — no intermediate rounding or saturation at all.
        let mut acc = MacAccumulator::new();
        let mut reference: i64 = 0;
        for &(a, b) in &pairs {
            acc.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
            reference += a as i64 * b as i64;
        }
        prop_assert_eq!(acc.raw(), reference);
        prop_assert_eq!(acc.finish().to_bits(), round_clamp_q78(reference));

        // Seeding from a Q7.8 partial sum shifts it up exactly.
        let mut seeded = MacAccumulator::from_fixed(Fixed16::from_bits(init));
        for &(a, b) in &pairs {
            seeded.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
        }
        prop_assert_eq!(seeded.raw(), ((init as i64) << FRAC_BITS) + reference);

        // Adder-tree combination: splitting the MACs across two
        // accumulators and adding them is exact too.
        let mid = pairs.len() / 2;
        let mut left = MacAccumulator::new();
        let mut right = MacAccumulator::new();
        for &(a, b) in &pairs[..mid] {
            left.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
        }
        for &(a, b) in &pairs[mid..] {
            right.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
        }
        left.add(right);
        prop_assert_eq!(left.raw(), reference);
    }

    #[test]
    fn quantize_dequantize_within_half_ulp(
        xs in prop::collection::vec(-127.9f32..127.9, 1..64),
    ) {
        let t = Tensor::from_vec([xs.len()], xs.clone());
        let q = FixedTensor::quantize(&t);
        let d = q.dequantize();
        for (orig, deq) in xs.iter().zip(d.data()) {
            prop_assert!((orig - deq).abs() <= FixedTensor::half_ulp() * 1.01);
        }
    }
}

#[test]
fn saturation_at_both_rails() {
    // Addition rails.
    assert_eq!(Fixed16::MAX + Fixed16::MAX, Fixed16::MAX);
    assert_eq!(Fixed16::MIN + Fixed16::MIN, Fixed16::MIN);
    assert_eq!(Fixed16::MAX + Fixed16::from_bits(1), Fixed16::MAX);
    assert_eq!(Fixed16::MIN - Fixed16::from_bits(1), Fixed16::MIN);
    // Multiplication rails: MIN*MIN is the largest positive product.
    assert_eq!(Fixed16::MAX * Fixed16::MAX, Fixed16::MAX);
    assert_eq!(Fixed16::MIN * Fixed16::MIN, Fixed16::MAX);
    assert_eq!(Fixed16::MIN * Fixed16::MAX, Fixed16::MIN);
    assert_eq!(Fixed16::MAX * Fixed16::MIN, Fixed16::MIN);
    // Negation saturates only at MIN (two's complement asymmetry).
    assert_eq!(-Fixed16::MIN, Fixed16::MAX);
    assert_eq!((-Fixed16::MAX).to_bits(), i16::MIN + 1);
    // Accumulator saturates only at `finish`.
    let mut acc = MacAccumulator::new();
    for _ in 0..64 {
        acc.mac(Fixed16::MAX, Fixed16::MAX); // far beyond the Q7.8 range
    }
    assert_eq!(acc.finish(), Fixed16::MAX);
    let mut acc = MacAccumulator::new();
    for _ in 0..64 {
        acc.mac(Fixed16::MIN, Fixed16::MAX);
    }
    assert_eq!(acc.finish(), Fixed16::MIN);
    // Conversion rails.
    assert_eq!(Fixed16::from_f32(1e9), Fixed16::MAX);
    assert_eq!(Fixed16::from_f32(-1e9), Fixed16::MIN);
    assert_eq!(Fixed16::from_f32(f32::NAN), Fixed16::ZERO);
}

#[test]
fn scale_constant_consistent() {
    assert_eq!(SCALE, 256.0);
    assert_eq!(Fixed16::ONE.to_bits(), 1 << FRAC_BITS);
    assert_eq!(FixedTensor::half_ulp(), 0.5 / SCALE);
}

// ---------------------------------------------------------------------------
// Rounding-contract suite: every Q7.8 rescale point in the workspace
// promises the same rule — round to nearest, ties toward +infinity
// (add half, then floor) — expressed once by `div_round_nearest` and
// audited here against each implementation site.
//
// Audit map:
//   * `MacAccumulator::finish`       -> `(acc + 128) >> 8`, clamp
//   * `Fixed16::saturating_mul`      -> same shift rule on the i32 product
//   * sim conv engines (cycle + functional) -> same rule per output word
//     (pinned transitively: both quantise via finish / the identical
//     expression, and `conv_differential` pins them against each other)
//   * `PostProcessor::global_avg_pool` -> `div_round_nearest(sum, vol)`
//     (the truncation bug this suite was added alongside)
//   * `Fixed16::from_f32`            -> f32 `.round()`, which is ties
//     away from zero — a DIFFERENT tie rule, pinned below as documented
//     behaviour so any silent change trips a test.
// ---------------------------------------------------------------------------

use p3d_tensor::div_round_nearest;

proptest! {
    /// `finish` is exactly `div_round_nearest(acc, 256)` + clamp: the
    /// shift-based rescale and the general division agree everywhere,
    /// including every negative value and both ties.
    #[test]
    fn finish_is_div_round_nearest_by_scale(acc in -(1i64 << 34)..(1i64 << 34)) {
        let via_shift = round_clamp_q78(acc) as i64;
        let via_div = div_round_nearest(acc, 1 << FRAC_BITS)
            .clamp(i16::MIN as i64, i16::MAX as i64);
        prop_assert_eq!(via_shift, via_div);
    }

    /// `saturating_mul` equals a one-product MAC followed by `finish`:
    /// the two rescale sites share one rounding rule bit-for-bit, at
    /// every operand pair including all four rail combinations.
    #[test]
    fn mul_equals_single_mac_finish(a in bits_strategy(), b in bits_strategy()) {
        let mul = (Fixed16::from_bits(a) * Fixed16::from_bits(b)).to_bits();
        let mut acc = MacAccumulator::new();
        acc.mac(Fixed16::from_bits(a), Fixed16::from_bits(b));
        prop_assert_eq!(mul, acc.finish().to_bits());
    }

    /// The rounded result is the nearest representable value: for any
    /// wide sum, `|256 * finish(acc) - acc| <= 128`, with equality only
    /// on the tie (rounded up). This is the "no low bias" guarantee the
    /// truncating avg-pool violated before the fix.
    #[test]
    fn finish_result_is_nearest(acc in -(1i64 << 22)..(1i64 << 22)) {
        let r = round_clamp_q78(acc) as i64;
        // Stay below the rails so clamping can't mask distance.
        prop_assume!(r > i16::MIN as i64 && r < i16::MAX as i64);
        let dist = (r * (1 << FRAC_BITS) - acc).abs();
        prop_assert!(dist <= 1 << (FRAC_BITS - 1));
        if dist == 1 << (FRAC_BITS - 1) {
            // Tie: must have rounded toward +infinity.
            prop_assert_eq!(r * (1 << FRAC_BITS) - acc, 1 << (FRAC_BITS - 1));
        }
    }

    /// `div_round_nearest` generalises the contract to arbitrary
    /// divisors (the avg-pool volume is rarely a power of two):
    /// nearest result, tie toward +infinity, for every sign.
    #[test]
    fn div_round_nearest_is_nearest_with_positive_tie(
        n in -(1i64 << 40)..(1i64 << 40),
        d in 1i64..10_000,
    ) {
        let r = div_round_nearest(n, d);
        let dist2 = 2 * (r * d - n); // twice the signed distance
        prop_assert!(dist2.abs() <= d, "not nearest: n={} d={} r={}", n, d, r);
        if dist2.abs() == d {
            prop_assert_eq!(dist2, d, "tie rounded toward zero/-inf: n={} d={}", n, d);
        }
    }
}

/// `from_f32` non-finite handling and its tie rule, pinned as documented
/// behaviour.
///
/// Unlike the integer rescale sites, `from_f32` uses f32 `.round()` —
/// ties away from zero — because quantisation happens once at the f32
/// boundary, not in the accumulation loop; a silent switch in either
/// direction would shift every quantised parameter by an ULP on ties,
/// so both the non-finite map and the tie rule are pinned exactly.
#[test]
fn from_f32_nonfinite_and_tie_contract() {
    // Non-finite map: NaN -> zero (a poisoned activation must not rail),
    // infinities -> the matching rail.
    assert_eq!(Fixed16::from_f32(f32::NAN), Fixed16::ZERO);
    assert_eq!(Fixed16::from_f32(-f32::NAN), Fixed16::ZERO);
    assert_eq!(Fixed16::from_f32(f32::INFINITY), Fixed16::MAX);
    assert_eq!(Fixed16::from_f32(f32::NEG_INFINITY), Fixed16::MIN);
    // Subnormal and signed-zero inputs collapse to zero cleanly.
    assert_eq!(Fixed16::from_f32(f32::MIN_POSITIVE / 2.0), Fixed16::ZERO);
    assert_eq!(Fixed16::from_f32(-0.0), Fixed16::ZERO);
    // The rails themselves: 127.998 (between MAX-ULP and MAX) rounds to
    // MAX; one ULP past the negative rail saturates.
    assert_eq!(Fixed16::from_f32(127.998), Fixed16::MAX);
    assert_eq!(Fixed16::from_f32(-128.001), Fixed16::MIN);
    // Tie rule: exactly representable half-ULP f32 inputs round away
    // from zero — +1.5/256 -> 2 ULP, -1.5/256 -> -2 ULP. (The integer
    // sites round ties toward +inf instead; -1.5 would floor to -2
    // there too, but +0.5 ULP cases differ on the negative side:
    // finish(-128) = 0 while from_f32(-0.5/256) = -1.)
    assert_eq!(Fixed16::from_f32(1.5 / 256.0).to_bits(), 2);
    assert_eq!(Fixed16::from_f32(-1.5 / 256.0).to_bits(), -2);
    assert_eq!(Fixed16::from_f32(0.5 / 256.0).to_bits(), 1);
    assert_eq!(Fixed16::from_f32(-0.5 / 256.0).to_bits(), -1);
    // ...whereas the accumulator tie goes toward +inf on both signs.
    assert_eq!(round_clamp_q78(128), 1);
    assert_eq!(round_clamp_q78(-128), 0);
}

/// `saturating_mul` at the negative rail: the audit point from the
/// issue. `(wide + 128) >> 8` on the most negative products must clamp
/// to MIN without wrapping, and near-rail products must round correctly
/// rather than truncate.
#[test]
fn saturating_mul_negative_rail_rounds_not_truncates() {
    // MIN * MAX: wide = -32768 * 32767 = -1073709056;
    // (wide + 128) >> 8 = -4194176 -> clamp MIN. No i32 overflow.
    assert_eq!(Fixed16::MIN * Fixed16::MAX, Fixed16::MIN);
    // A product of exactly -0.75 ULP wide: -192. Truncation toward zero
    // would give 0; the contract rounds to nearest -> -1.
    // -192 = (-3) * 64: a = -3 ULP, b = 0.25 (64 ULP).
    let got = Fixed16::from_bits(-3) * Fixed16::from_bits(64);
    assert_eq!(got.to_bits(), -1, "near-zero negative product truncated");
    // And the positive mirror rounds up.
    let got = Fixed16::from_bits(3) * Fixed16::from_bits(64);
    assert_eq!(got.to_bits(), 1);
    // One ULP above the negative rail stays representable (no clamp):
    // -128.0 * 1.0 = MIN exactly... via bits: (-32768 * 256 + 128) >> 8
    // = -32767.5 floor -> -32768 + tie-up = -32767? Compute: wide =
    // -8388608; +128 -> -8388480; >>8 -> -32768. Exactly MIN, no clamp.
    assert_eq!((Fixed16::MIN * Fixed16::ONE).to_bits(), i16::MIN);
}
