//! Property-based differential tests for the Q7.8 fixed-point datapath:
//! `Fixed16` conversion/arithmetic against exact integer references, and
//! `MacAccumulator` against a plain `i64` sum of products.

use p3d_tensor::fixed::{MacAccumulator, FRAC_BITS, SCALE};
use p3d_tensor::{Fixed16, FixedTensor, Tensor};
use proptest::prelude::*;

/// The exact Q7.8 result of a wide value: round-half-up then clamp —
/// the contract both `saturating_mul` and `MacAccumulator::finish`
/// promise, expressed once in `i64`.
fn round_clamp_q78(wide: i64) -> i16 {
    let rounded = (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
    rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16
}

fn bits_strategy() -> impl Strategy<Value = i16> {
    (i16::MIN as i32..=i16::MAX as i32).prop_map(|b| b as i16)
}

proptest! {
    #[test]
    fn to_f32_from_f32_roundtrip_is_identity(bits in bits_strategy()) {
        // Every representable Q7.8 value survives a float round trip
        // bit-exactly: `to_f32` is exact and `from_f32` re-scales to the
        // same integer.
        let x = Fixed16::from_bits(bits);
        prop_assert_eq!(Fixed16::from_f32(x.to_f32()), x);
    }

    #[test]
    fn from_f32_error_within_half_ulp(x in -128.0f32..127.996) {
        // Round-to-nearest: at most half an ULP (1/512) of error for
        // in-range inputs (small slack for the f32 scale multiply).
        let q = Fixed16::from_f32(x);
        let err = (q.to_f32() - x).abs();
        prop_assert!(
            err <= FixedTensor::half_ulp() * 1.01,
            "error {} above half ULP for {}", err, x
        );
    }

    #[test]
    fn addition_matches_clamped_integer_reference(a in bits_strategy(), b in bits_strategy()) {
        let ideal = a as i32 + b as i32;
        let got = (Fixed16::from_bits(a) + Fixed16::from_bits(b)).to_bits() as i32;
        prop_assert_eq!(got, ideal.clamp(i16::MIN as i32, i16::MAX as i32));
        // Subtraction rides the same saturating path.
        let ideal_sub = a as i32 - b as i32;
        let got_sub = (Fixed16::from_bits(a) - Fixed16::from_bits(b)).to_bits() as i32;
        prop_assert_eq!(got_sub, ideal_sub.clamp(i16::MIN as i32, i16::MAX as i32));
    }

    #[test]
    fn multiplication_matches_rounded_clamped_reference(a in bits_strategy(), b in bits_strategy()) {
        let ideal = round_clamp_q78(a as i64 * b as i64);
        let got = (Fixed16::from_bits(a) * Fixed16::from_bits(b)).to_bits();
        prop_assert_eq!(got, ideal);
    }

    #[test]
    fn negation_saturates_only_at_min(bits in bits_strategy()) {
        let got = (-Fixed16::from_bits(bits)).to_bits() as i32;
        let ideal = (-(bits as i32)).clamp(i16::MIN as i32, i16::MAX as i32);
        prop_assert_eq!(got, ideal);
    }

    #[test]
    fn accumulator_matches_i64_reference_exactly(
        pairs in prop::collection::vec(
            ((i16::MIN as i32..=i16::MAX as i32), (i16::MIN as i32..=i16::MAX as i32)),
            1..64,
        ),
        init in bits_strategy(),
    ) {
        // The wide register must hold the sum of full-precision products
        // exactly — no intermediate rounding or saturation at all.
        let mut acc = MacAccumulator::new();
        let mut reference: i64 = 0;
        for &(a, b) in &pairs {
            acc.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
            reference += a as i64 * b as i64;
        }
        prop_assert_eq!(acc.raw(), reference);
        prop_assert_eq!(acc.finish().to_bits(), round_clamp_q78(reference));

        // Seeding from a Q7.8 partial sum shifts it up exactly.
        let mut seeded = MacAccumulator::from_fixed(Fixed16::from_bits(init));
        for &(a, b) in &pairs {
            seeded.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
        }
        prop_assert_eq!(seeded.raw(), ((init as i64) << FRAC_BITS) + reference);

        // Adder-tree combination: splitting the MACs across two
        // accumulators and adding them is exact too.
        let mid = pairs.len() / 2;
        let mut left = MacAccumulator::new();
        let mut right = MacAccumulator::new();
        for &(a, b) in &pairs[..mid] {
            left.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
        }
        for &(a, b) in &pairs[mid..] {
            right.mac(Fixed16::from_bits(a as i16), Fixed16::from_bits(b as i16));
        }
        left.add(right);
        prop_assert_eq!(left.raw(), reference);
    }

    #[test]
    fn quantize_dequantize_within_half_ulp(
        xs in prop::collection::vec(-127.9f32..127.9, 1..64),
    ) {
        let t = Tensor::from_vec([xs.len()], xs.clone());
        let q = FixedTensor::quantize(&t);
        let d = q.dequantize();
        for (orig, deq) in xs.iter().zip(d.data()) {
            prop_assert!((orig - deq).abs() <= FixedTensor::half_ulp() * 1.01);
        }
    }
}

#[test]
fn saturation_at_both_rails() {
    // Addition rails.
    assert_eq!(Fixed16::MAX + Fixed16::MAX, Fixed16::MAX);
    assert_eq!(Fixed16::MIN + Fixed16::MIN, Fixed16::MIN);
    assert_eq!(Fixed16::MAX + Fixed16::from_bits(1), Fixed16::MAX);
    assert_eq!(Fixed16::MIN - Fixed16::from_bits(1), Fixed16::MIN);
    // Multiplication rails: MIN*MIN is the largest positive product.
    assert_eq!(Fixed16::MAX * Fixed16::MAX, Fixed16::MAX);
    assert_eq!(Fixed16::MIN * Fixed16::MIN, Fixed16::MAX);
    assert_eq!(Fixed16::MIN * Fixed16::MAX, Fixed16::MIN);
    assert_eq!(Fixed16::MAX * Fixed16::MIN, Fixed16::MIN);
    // Negation saturates only at MIN (two's complement asymmetry).
    assert_eq!(-Fixed16::MIN, Fixed16::MAX);
    assert_eq!((-Fixed16::MAX).to_bits(), i16::MIN + 1);
    // Accumulator saturates only at `finish`.
    let mut acc = MacAccumulator::new();
    for _ in 0..64 {
        acc.mac(Fixed16::MAX, Fixed16::MAX); // far beyond the Q7.8 range
    }
    assert_eq!(acc.finish(), Fixed16::MAX);
    let mut acc = MacAccumulator::new();
    for _ in 0..64 {
        acc.mac(Fixed16::MIN, Fixed16::MAX);
    }
    assert_eq!(acc.finish(), Fixed16::MIN);
    // Conversion rails.
    assert_eq!(Fixed16::from_f32(1e9), Fixed16::MAX);
    assert_eq!(Fixed16::from_f32(-1e9), Fixed16::MIN);
    assert_eq!(Fixed16::from_f32(f32::NAN), Fixed16::ZERO);
}

#[test]
fn scale_constant_consistent() {
    assert_eq!(SCALE, 256.0);
    assert_eq!(Fixed16::ONE.to_bits(), 1 << FRAC_BITS);
    assert_eq!(FixedTensor::half_ulp(), 0.5 / SCALE);
}
