//! Seeded random initialisation for tensors.
//!
//! Every experiment in the workspace is deterministic given its seed, so
//! all randomness flows through [`TensorRng`], a thin wrapper over a seeded
//! [`rand::rngs::StdRng`].

use crate::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random number generator with tensor-initialisation helpers.
///
/// # Example
///
/// ```
/// use p3d_tensor::TensorRng;
///
/// let mut rng = TensorRng::seed(42);
/// let w = rng.kaiming_normal([16, 8, 3, 3, 3], 8 * 27);
/// assert_eq!(w.len(), 16 * 8 * 27);
/// // Determinism: the same seed yields the same tensor.
/// let w2 = TensorRng::seed(42).kaiming_normal([16, 8, 3, 3, 3], 8 * 27);
/// assert_eq!(w, w2);
/// ```
pub struct TensorRng {
    inner: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        TensorRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform sample in `[lo, hi)`; a degenerate range returns `lo`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        if lo >= hi {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// A uniform integer sample in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }

    /// A standard normal sample (Box-Muller; `rand_distr` is not in the
    /// approved offline dependency set).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1: f32 = self.inner.random_range(f32::EPSILON..1.0f32);
            let u2: f32 = self.inner.random_range(0.0f32..1.0f32);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// A tensor of iid uniform samples in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| self.uniform(lo, hi)).collect();
        Tensor::from_vec(shape, data)
    }

    /// A tensor of iid standard-normal samples scaled by `std`.
    pub fn normal_tensor(&mut self, shape: impl Into<Shape>, std: f32) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| self.normal() * std).collect();
        Tensor::from_vec(shape, data)
    }

    /// Kaiming-normal initialisation for a conv/linear weight with the
    /// given fan-in (`N * Kd * Kr * Kc` for a 3D conv), i.e.
    /// `std = sqrt(2 / fan_in)` — appropriate for ReLU networks.
    pub fn kaiming_normal(&mut self, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "fan_in must be positive");
        let std = (2.0 / fan_in as f32).sqrt();
        self.normal_tensor(shape, std)
    }

    /// A Fisher-Yates shuffle of `0..n`, used for dataset epoch ordering.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.random_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }

    /// Forks an independent generator seeded from this one, for
    /// reproducible parallel streams.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed(self.inner.random())
    }

    /// Exports the raw generator state for checkpoint/resume.
    ///
    /// A generator rebuilt with [`TensorRng::from_state`] continues the
    /// exact same random stream, which is what makes interrupted training
    /// runs bitwise-resumable.
    pub fn export_state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from a state captured by
    /// [`TensorRng::export_state`].
    pub fn from_state(state: [u64; 4]) -> Self {
        TensorRng {
            inner: StdRng::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = TensorRng::seed(7).uniform_tensor([10], -1.0, 1.0);
        let b = TensorRng::seed(7).uniform_tensor([10], -1.0, 1.0);
        assert_eq!(a, b);
        let c = TensorRng::seed(8).uniform_tensor([10], -1.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = TensorRng::seed(1);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = TensorRng::seed(2);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn kaiming_std() {
        let mut rng = TensorRng::seed(3);
        let fan_in = 128;
        let t = rng.kaiming_normal([64, 128, 3, 3], fan_in * 9);
        // fan_in here includes the kernel; expected std = sqrt(2/(128*9)).
        let expected = (2.0 / (fan_in as f32 * 9.0)).sqrt();
        let mean = t.mean();
        let std = (t.frobenius_norm_sq() / t.len() as f32 - mean * mean).sqrt();
        assert!((std - expected).abs() / expected < 0.05);
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = TensorRng::seed(4);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut rng = TensorRng::seed(11);
        let _ = rng.permutation(17); // advance
        let state = rng.export_state();
        let a = rng.uniform_tensor([32], -1.0, 1.0);
        let b = TensorRng::from_state(state).uniform_tensor([32], -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn fork_streams_differ() {
        let mut rng = TensorRng::seed(5);
        let mut a = rng.fork();
        let mut b = rng.fork();
        let xs: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }
}
