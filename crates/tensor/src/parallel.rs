//! Workspace-wide parallel execution layer for the training/inference hot
//! path.
//!
//! This module mirrors, in software, the structure of the paper's tiled
//! accelerator (Algorithm 2): work is cut into contiguous, disjoint
//! chunks, each chunk runs on its own worker, and reductions happen in a
//! **fixed, deterministic order** afterwards — so results are bitwise
//! identical regardless of thread count.
//!
//! # The persistent worker pool
//!
//! Parallel regions execute on a process-wide pool of **persistent,
//! parked workers** (`p3d-worker-N` threads). Workers are spawned lazily
//! the first time a region needs them and then *parked* between regions,
//! so the steady-state cost of a region is one atomic handshake and an
//! unpark per worker instead of an OS thread spawn + stack allocation per
//! call — the software analogue of the paper's persistent PE array, which
//! amortises schedule setup across tiles instead of rebuilding it per
//! tile. The submitting thread participates too: it runs the first chunk
//! itself (and any chunk no idle worker could take), then waits on a
//! latch until every worker finished, which is what makes handing workers
//! borrowed data sound — a region never outlives its borrows, exactly as
//! with the scoped threads this pool replaced.
//!
//! Work assignment is **chunked and static**: task `w` of a region owns
//! the `w`-th contiguous range of chunks, computed in closed form from
//! the logical worker count alone. Outputs therefore depend only on chunk
//! indices — never on which OS thread ran a chunk, how many pool workers
//! were awake, or how regions interleave — preserving bitwise
//! reproducibility at any `P3D_THREADS`.
//!
//! Steady-state dispatch performs **zero heap allocations**: tasks are
//! handed over through preallocated per-worker slots, the completion
//! latch lives on the submitter's stack, and parking/unparking allocate
//! nothing. (Growing the pool allocates, once, when a region first asks
//! for more workers than have ever been live.)
//!
//! # Panic containment
//!
//! A panic inside a region closure is contained to its task: the worker
//! records the payload, the region still waits for every other task, and
//! the submitting call re-raises the first payload — callers see the same
//! panic they would have seen from a scoped thread. The panicking
//! worker's thread is retired and **replaced** on the next dispatch, so a
//! contained panic can never leave the pool smaller, serial, or wedged;
//! [`pool_stats`] exposes the replacement count.
//!
//! # Thread count
//!
//! The effective worker count is, in priority order:
//!
//! 1. a process-wide programmatic override ([`set_thread_override`]),
//!    used by benches and determinism tests,
//! 2. the `P3D_THREADS` environment variable — parsed **once** per
//!    process and clamped to `[1, host cores]`; invalid or zero values
//!    log one warning line and fall back to the host default,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker (or one chunk) everything runs inline on the caller's
//! thread — the serial path is the degenerate case, not a separate code
//! path, and it touches neither the pool nor the heap.
//!
//! # Nesting
//!
//! Calls from inside a worker run serially (a thread-local guard detects
//! nesting), so `Conv3d::forward` can batch-parallelise over clips while
//! its inner `matmul` — which parallelises over output rows for the
//! batch=1 inference case — degrades gracefully instead of
//! oversubscribing cores. Pool workers are marked *permanently*; the
//! submitting thread is marked for exactly the span of the chunks it runs
//! itself, via an RAII guard that restores the flag even if the closure
//! panics — a contained panic cannot leave a thread wrongly serial.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::Thread;

/// `0` means "no override"; any other value is the forced worker count.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard that marks the current thread as executing inside a
/// parallel region and restores the previous marking on drop.
///
/// Dropping (not an explicit reset) is what makes the nesting flag
/// panic-safe: if the region closure panics, unwinding still runs the
/// drop, so a thread that outlives the panic — the submitting thread, or
/// a pooled worker being reused — can never be left permanently serial.
struct NestingGuard {
    prev: bool,
}

impl NestingGuard {
    fn enter() -> Self {
        NestingGuard {
            prev: IN_PARALLEL_WORKER.with(|f| f.replace(true)),
        }
    }
}

impl Drop for NestingGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL_WORKER.with(|f| f.set(prev));
    }
}

/// Forces the worker count process-wide (`None` restores the
/// `P3D_THREADS` / `available_parallelism` default).
///
/// Intended for benches and determinism tests; prefer the `P3D_THREADS`
/// environment variable for deployment configuration.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The host's physical parallelism (`1` when it cannot be queried).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Interprets one `P3D_THREADS` value against the host's core count.
///
/// * `Ok(n)` — a usable worker count, already clamped to `[1, host]`.
///   `None` of the outer `Option` never occurs here; clamped values are
///   reported through the warning string of [`resolve_env_threads`].
/// * `Err(reason)` — unusable (empty, non-numeric, or zero); callers
///   must fall back to the host default.
///
/// Pure so the policy is unit-testable without touching the real
/// environment (the real lookup is parsed once per process).
pub fn parse_thread_setting(raw: &str, host: usize) -> Result<usize, String> {
    let host = host.max(1);
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "invalid P3D_THREADS='{}' (zero workers cannot run anything)",
            raw.trim()
        )),
        Ok(n) => Ok(n.min(host)),
        Err(_) => Err(format!(
            "invalid P3D_THREADS='{}' (expected an integer in 1..={host})",
            raw.trim()
        )),
    }
}

/// Resolves `P3D_THREADS` once: `(effective_count, optional_warning)`.
/// `None` means the variable is unset — use the host default.
fn resolve_env_threads() -> (Option<usize>, Option<String>) {
    match std::env::var("P3D_THREADS") {
        Err(_) => (None, None),
        Ok(raw) => {
            let host = host_parallelism();
            match parse_thread_setting(&raw, host) {
                Ok(n) => {
                    let warn = raw
                        .trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&asked| asked > n)
                        .map(|asked| {
                            format!(
                                "warning: P3D_THREADS={asked} exceeds host parallelism; \
                                 clamped to {n}"
                            )
                        });
                    (Some(n), warn)
                }
                Err(reason) => (
                    None,
                    Some(format!(
                        "warning: {reason}; using host parallelism ({host})"
                    )),
                ),
            }
        }
    }
}

/// The cached `P3D_THREADS` setting. Parsed exactly once per process
/// (changing the variable after the first parallel call has no effect —
/// use [`set_thread_override`] for runtime control); an invalid or zero
/// value logs one warning line and falls back to the host default
/// instead of silently misbehaving, and oversubscribed values clamp to
/// `[1, host cores]`.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        let (n, warning) = resolve_env_threads();
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        n
    })
}

/// The number of workers parallel helpers may use right now.
///
/// Returns `1` (serial) when called from inside a parallel worker — see
/// the module docs on nesting.
pub fn max_threads() -> usize {
    if IN_PARALLEL_WORKER.with(|f| f.get()) {
        return 1;
    }
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    host_parallelism()
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// Slot is free: any dispatcher may claim it.
const SLOT_IDLE: usize = 0;
/// A dispatcher owns the slot and is writing its task.
const SLOT_CLAIMED: usize = 1;
/// A task is armed; the worker should (or is about to) run it.
const SLOT_ARMED: usize = 2;
/// The worker thread exited after a task panic; respawn before reuse.
const SLOT_DEAD: usize = 3;

/// One dispatched unit of region work, handed to a parked worker.
///
/// `ctx` points at the submitting frame's region closure and `latch` at
/// its stack-allocated completion latch; both stay valid because the
/// submitter cannot return until the latch reaches zero.
#[derive(Clone, Copy)]
struct PoolTask {
    /// Monomorphised trampoline invoking the region closure.
    call: unsafe fn(*const (), usize),
    /// The region closure (`&F`), lifetime-erased.
    ctx: *const (),
    /// Which logical task of the region this worker runs.
    index: usize,
    /// The region's completion latch, lifetime-erased.
    latch: *const Latch,
}

/// Stack-allocated completion latch for one region.
struct Latch {
    /// Tasks not yet finished (dispatched ones plus the dispatch
    /// shortfall the submitter subtracts in bulk).
    remaining: AtomicUsize,
    /// The submitting thread, unparked by the last finisher.
    waiter: Thread,
    /// First panic payload caught by any worker of this region.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(remaining),
            waiter: std::thread::current(),
            panic: Mutex::new(None),
        }
    }

    /// Records the first panic payload of the region (later ones are
    /// dropped; one payload is all a re-raise can carry).
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Parks until every counted task has finished.
    fn wait(&self) {
        while self.remaining.load(Ordering::Acquire) != 0 {
            std::thread::park();
        }
    }
}

/// One pool worker's mailbox: a state machine plus the armed task.
struct WorkerSlot {
    /// `SLOT_IDLE` / `SLOT_CLAIMED` / `SLOT_ARMED` / `SLOT_DEAD`.
    state: AtomicUsize,
    /// The armed task. Written only by the dispatcher that owns the
    /// `SLOT_CLAIMED` transition, read only by the worker after an
    /// `Acquire` load observes `SLOT_ARMED` (stored with `Release` after
    /// the write) — never concurrently.
    task: UnsafeCell<Option<PoolTask>>,
    /// Unpark handle of the current worker thread; replaced on respawn
    /// (only ever mutated with the pool lock held).
    thread: Mutex<Option<Thread>>,
}

// SAFETY: see the `task` field docs — the state machine serialises all
// access to the one non-Sync field, and the raw pointers inside
// `PoolTask` are only dereferenced while the submitting frame is pinned
// waiting on the latch.
unsafe impl Send for WorkerSlot {}
unsafe impl Sync for WorkerSlot {}

/// The process-wide pool: worker slots plus lifetime telemetry.
struct Pool {
    /// All worker slots ever created (slots are never removed; a dead
    /// slot is revived by spawning a fresh thread onto it).
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Worker threads spawned over the process lifetime.
    spawned: AtomicUsize,
    /// Spawns that replaced a worker retired by a task panic.
    respawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        slots: Mutex::new(Vec::new()),
        spawned: AtomicUsize::new(0),
        respawned: AtomicUsize::new(0),
    })
}

/// Arms a slot the caller owns (`SLOT_CLAIMED`) and wakes its worker.
fn arm(slot: &WorkerSlot, task: PoolTask) {
    debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_CLAIMED);
    // SAFETY: the CLAIMED state excludes every other writer, and the
    // worker only reads after observing the ARMED store below.
    unsafe { *slot.task.get() = Some(task) };
    slot.state.store(SLOT_ARMED, Ordering::Release);
    if let Some(t) = slot
        .thread
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        t.unpark();
    }
}

impl Pool {
    /// Hands tasks `1..=claimed` of a region to parked workers: claims
    /// idle slots, revives dead ones, and grows the pool when every
    /// existing slot is busy. Returns how many tasks found a worker —
    /// the submitter runs the rest itself, so dispatch can never block
    /// on another region and a failed spawn degrades to inline
    /// execution instead of an error.
    fn dispatch(
        &self,
        call: unsafe fn(*const (), usize),
        ctx: *const (),
        latch: &Latch,
        n_tasks: usize,
    ) -> usize {
        let want = n_tasks.saturating_sub(1);
        if want == 0 {
            return 0;
        }
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut claimed = 0;
        for slot in slots.iter() {
            if claimed == want {
                break;
            }
            let ready = match slot.state.load(Ordering::Acquire) {
                SLOT_IDLE => slot
                    .state
                    .compare_exchange(
                        SLOT_IDLE,
                        SLOT_CLAIMED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok(),
                SLOT_DEAD => self.respawn(slot),
                // Armed by a concurrent region, or still in its few
                // instructions of post-task bookkeeping — skip it.
                _ => false,
            };
            if ready {
                claimed += 1;
                arm(
                    slot,
                    PoolTask {
                        call,
                        ctx,
                        index: claimed,
                        latch,
                    },
                );
            }
        }
        while claimed < want {
            match self.spawn_slot() {
                Some(slot) => {
                    claimed += 1;
                    arm(
                        &slot,
                        PoolTask {
                            call,
                            ctx,
                            index: claimed,
                            latch,
                        },
                    );
                    slots.push(slot);
                }
                None => break, // spawn failed; the caller runs the rest
            }
        }
        claimed
    }

    /// Spawns a fresh worker on a fresh slot, born `SLOT_CLAIMED` so the
    /// caller can arm it immediately.
    fn spawn_slot(&self) -> Option<Arc<WorkerSlot>> {
        let slot = Arc::new(WorkerSlot {
            state: AtomicUsize::new(SLOT_CLAIMED),
            task: UnsafeCell::new(None),
            thread: Mutex::new(None),
        });
        self.spawn_onto(&slot).then(|| Arc::clone(&slot))
    }

    /// Revives a `SLOT_DEAD` slot with a fresh thread; `true` when the
    /// slot ends up `SLOT_CLAIMED` and ready to arm.
    fn respawn(&self, slot: &Arc<WorkerSlot>) -> bool {
        // The retired worker stored DEAD as its final slot access, so
        // this store cannot race with it.
        slot.state.store(SLOT_CLAIMED, Ordering::Release);
        if self.spawn_onto(slot) {
            self.respawned.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            slot.state.store(SLOT_DEAD, Ordering::Release);
            false
        }
    }

    /// Spawns a worker thread bound to `slot`, recording its unpark
    /// handle. `false` if the OS refused the thread.
    fn spawn_onto(&self, slot: &Arc<WorkerSlot>) -> bool {
        let id = self.spawned.load(Ordering::Relaxed);
        let for_worker = Arc::clone(slot);
        match std::thread::Builder::new()
            .name(format!("p3d-worker-{id}"))
            .spawn(move || worker_main(&for_worker))
        {
            Ok(handle) => {
                *slot.thread.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(handle.thread().clone());
                self.spawned.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }
}

/// A pool worker's life: park until armed, run the task, report to the
/// region's latch, repeat — or retire after containing a panic.
fn worker_main(slot: &WorkerSlot) {
    // A pool worker only ever runs region tasks, so it is *permanently*
    // marked as inside a parallel region: nested helper calls degrade to
    // the serial inline path, and there is no reset to forget.
    IN_PARALLEL_WORKER.with(|f| f.set(true));
    loop {
        while slot.state.load(Ordering::Acquire) != SLOT_ARMED {
            std::thread::park();
        }
        // SAFETY: ARMED (acquired above) means the dispatcher finished
        // writing the task and will not touch the cell again until this
        // worker publishes IDLE.
        let task = unsafe { (*slot.task.get()).take() }.expect("armed slot without a task");
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `ctx` is the region closure, pinned on the
            // submitter's stack until the latch below reaches zero.
            unsafe { (task.call)(task.ctx, task.index) }
        }));
        // SAFETY: same pinning argument; this worker's final latch
        // access is the decrement below, which is exactly what releases
        // the submitter.
        let latch = unsafe { &*task.latch };
        let died = result.is_err();
        if let Err(payload) = result {
            // DEAD is published *before* the latch decrement, so no
            // dispatcher can arm a slot whose worker is exiting.
            slot.state.store(SLOT_DEAD, Ordering::Release);
            latch.record_panic(payload);
        } else {
            slot.state.store(SLOT_IDLE, Ordering::Release);
        }
        // Clone the waiter handle *before* the decrement: once
        // `remaining` hits zero the submitter may free the latch, so the
        // unpark must go through an owned handle.
        let waiter = latch.waiter.clone();
        if latch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            waiter.unpark();
        }
        if died {
            return; // retire; the next dispatch revives the slot
        }
    }
}

/// Point-in-time pool telemetry (tests, diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned over the process lifetime, replacements
    /// included.
    pub spawned: usize,
    /// Workers replaced after a contained task panic retired their
    /// thread.
    pub respawned: usize,
    /// Worker slots currently backed by a live thread.
    pub live: usize,
}

/// Snapshots the persistent pool's counters.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    let slots = p.slots.lock().unwrap_or_else(|e| e.into_inner());
    PoolStats {
        spawned: p.spawned.load(Ordering::Relaxed),
        respawned: p.respawned.load(Ordering::Relaxed),
        live: slots
            .iter()
            .filter(|s| s.state.load(Ordering::Acquire) != SLOT_DEAD)
            .count(),
    }
}

/// Executes `f(0) .. f(n_tasks - 1)` across the pool and returns only
/// after every task finished — the pool equivalent of a `thread::scope`
/// block. Tasks `1..` go to parked workers; the caller runs task `0`
/// (and any task no idle worker could take) inline under the nesting
/// guard. A panic in any task is contained and re-raised here with its
/// original payload after the region fully drains.
fn run_tasks<F: Fn(usize) + Sync>(n_tasks: usize, f: &F) {
    /// Monomorphised trampoline: `ctx` is `&F`.
    ///
    /// # Safety
    /// `ctx` must point at a live `F`.
    unsafe fn call<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
        (*(ctx as *const F))(index);
    }
    debug_assert!(n_tasks >= 2, "serial regions must not reach the pool");
    let latch = Latch::new(n_tasks - 1);
    let claimed = pool().dispatch(call::<F>, f as *const F as *const (), &latch, n_tasks);
    let caller = catch_unwind(AssertUnwindSafe(|| {
        let _guard = NestingGuard::enter();
        f(0);
        for index in claimed + 1..n_tasks {
            f(index);
        }
    }));
    // Account in bulk for the tasks that never reached a worker.
    let shortfall = n_tasks - 1 - claimed;
    if shortfall > 0 {
        latch.remaining.fetch_sub(shortfall, Ordering::AcqRel);
    }
    latch.wait();
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    let worker_panic = latch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Chunked static assignment
// ---------------------------------------------------------------------------

/// The `w`-th of `workers` contiguous near-equal ranges over
/// `0..n_items` (the first `n_items % workers` ranges get one extra
/// item) — closed form, so the hot dispatch path computes per-task
/// ownership without allocating a range table.
fn task_range(n_items: usize, workers: usize, w: usize) -> Range<usize> {
    let base = n_items / workers;
    let rem = n_items % workers;
    let start = w * base + w.min(rem);
    start..start + base + usize::from(w < rem)
}

/// Splits `0..n_items` into at most `threads` contiguous ranges of
/// near-equal length (first `rem` ranges get one extra item). Test
/// surface for [`task_range`]'s partition property.
#[cfg(test)]
fn split_ranges(n_items: usize, threads: usize) -> Vec<Range<usize>> {
    let workers = threads.min(n_items).max(1);
    (0..workers).map(|w| task_range(n_items, workers, w)).collect()
}

/// A `Send + Sync` base-pointer wrapper for handing one buffer to pool
/// tasks that each slice out a *disjoint* sub-range.
struct SlicePtr<T>(*mut T);

impl<T> Clone for SlicePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlicePtr<T> {}

// SAFETY: tasks only materialise non-overlapping ranges (each derived
// from its task index via `task_range`), and `run_tasks` keeps the
// underlying exclusive borrow alive until every task completed.
unsafe impl<T: Send> Send for SlicePtr<T> {}
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T> SlicePtr<T> {
    fn new(data: &mut [T]) -> Self {
        SlicePtr(data.as_mut_ptr())
    }

    /// Materialises `range` of the wrapped buffer.
    ///
    /// # Safety
    /// `range` must be in bounds of the wrapped buffer and disjoint from
    /// every range any other live task materialises, and the buffer's
    /// exclusive borrow must still be pinned by the submitting frame.
    unsafe fn slice<'a>(self, range: Range<usize>) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(range.start), range.len())
    }
}

// ---------------------------------------------------------------------------
// The six parallel helpers
// ---------------------------------------------------------------------------

/// Runs `f` on contiguous index ranges covering `0..n_items`, in
/// parallel. `f` receives the range it owns.
///
/// Serial (inline) when `n_items <= 1`, when only one worker is
/// available, or when already inside a parallel worker.
pub fn parallel_for<F>(n_items: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n_items == 0 {
        return;
    }
    let tasks = max_threads().min(n_items);
    if tasks <= 1 {
        f(0..n_items);
        return;
    }
    run_tasks(tasks, &|w| f(task_range(n_items, tasks, w)));
}

/// Maps `f` over `0..n_items` in parallel, returning results **in index
/// order** (the deterministic-reduction building block: reduce the
/// returned `Vec` serially in its natural order).
pub fn parallel_map<R, F>(n_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_items);
    slots.resize_with(n_items, || None);
    // Reuse the chunked primitive: each worker fills its own disjoint
    // slots, so no synchronisation is needed and order is preserved.
    parallel_chunk_map(&mut slots, 1, |i, slot| {
        slot[0] = Some(f(i));
    });
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map worker skipped a slot"))
        .collect()
}

/// Cuts `data` into consecutive chunks of `chunk_len` items (the final
/// chunk may be shorter) and runs `f(chunk_index, chunk)` on each, in
/// parallel. Chunks are disjoint `&mut` slices, so workers can write
/// without synchronisation; chunk indices are global and stable.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty.
pub fn parallel_chunk_map<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let tasks = max_threads().min(n_chunks);
    if tasks <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    // Hand each task a contiguous run of whole chunks.
    let len = data.len();
    let base = SlicePtr::new(data);
    run_tasks(tasks, &|w| {
        let chunks = task_range(n_chunks, tasks, w);
        let items = chunks.start * chunk_len..(chunks.end * chunk_len).min(len);
        // SAFETY: whole-chunk item ranges are disjoint across tasks and
        // within bounds; the borrow is pinned by `run_tasks`.
        let mine = unsafe { base.slice(items) };
        for (k, chunk) in mine.chunks_mut(chunk_len).enumerate() {
            f(chunks.start + k, chunk);
        }
    });
}

/// Like [`parallel_chunk_map`] but each chunk also *returns* a value;
/// results come back **in chunk order** for deterministic reduction.
pub fn parallel_chunk_map_collect<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    if data.is_empty() {
        return Vec::new();
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    results.resize_with(n_chunks, || None);
    let tasks = max_threads().min(n_chunks);
    if tasks <= 1 {
        for ((ci, chunk), slot) in data.chunks_mut(chunk_len).enumerate().zip(&mut results) {
            *slot = Some(f(ci, chunk));
        }
    } else {
        let len = data.len();
        let base = SlicePtr::new(data);
        let slots = SlicePtr::new(&mut results);
        run_tasks(tasks, &|w| {
            let chunks = task_range(n_chunks, tasks, w);
            let items = chunks.start * chunk_len..(chunks.end * chunk_len).min(len);
            // SAFETY: both the data item range and the result slot range
            // are disjoint across tasks and within bounds.
            let mine = unsafe { base.slice(items) };
            let my_slots = unsafe { slots.slice(chunks.clone()) };
            for ((k, chunk), slot) in mine.chunks_mut(chunk_len).enumerate().zip(my_slots) {
                *slot = Some(f(chunks.start + k, chunk));
            }
        });
    }
    results
        .into_iter()
        .map(|s| s.expect("parallel_chunk_map_collect worker skipped a slot"))
        .collect()
}

/// Runs `f(chunk_index, a_chunk, b_chunk)` over two equally-chunked
/// buffers in lockstep, in parallel — for kernels that fill two outputs
/// per region (e.g. max-pool value + argmax, batch-norm normalized +
/// output).
///
/// # Panics
///
/// Panics unless `a.len() / chunk_a == b.len() / chunk_b` (same chunk
/// count, exact division).
#[allow(clippy::manual_is_multiple_of)] // MSRV 1.75: `is_multiple_of` is 1.87+
pub fn parallel_zip_chunk_map<A, B, F>(
    a: &mut [A],
    chunk_a: usize,
    b: &mut [B],
    chunk_b: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    if a.is_empty() && b.is_empty() {
        return;
    }
    assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be positive");
    assert!(
        // `% == 0` rather than `is_multiple_of` (stable only since 1.87;
        // the workspace declares rust-version 1.75).
        a.len() % chunk_a == 0 && b.len() % chunk_b == 0,
        "buffers must divide evenly into chunks"
    );
    let n_chunks = a.len() / chunk_a;
    assert_eq!(n_chunks, b.len() / chunk_b, "chunk count mismatch");
    let tasks = max_threads().min(n_chunks);
    if tasks <= 1 {
        for (ci, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
            f(ci, ca, cb);
        }
        return;
    }
    let base_a = SlicePtr::new(a);
    let base_b = SlicePtr::new(b);
    run_tasks(tasks, &|w| {
        let chunks = task_range(n_chunks, tasks, w);
        // SAFETY: chunk counts divide exactly (asserted above), so both
        // item ranges are disjoint across tasks and within bounds.
        let mine_a = unsafe { base_a.slice(chunks.start * chunk_a..chunks.end * chunk_a) };
        let mine_b = unsafe { base_b.slice(chunks.start * chunk_b..chunks.end * chunk_b) };
        for (k, (ca, cb)) in mine_a
            .chunks_mut(chunk_a)
            .zip(mine_b.chunks_mut(chunk_b))
            .enumerate()
        {
            f(chunks.start + k, ca, cb);
        }
    });
}

/// Like [`parallel_chunk_map`] but each worker additionally owns one
/// element of `states` — mutable per-worker scratch (e.g. an inference
/// engine's network replica + buffer arena) that persists across the
/// chunks that worker processes.
///
/// The effective worker count is `min(max_threads(), states.len(),
/// n_chunks)`; chunk indices are global and stable, and each worker owns
/// a contiguous run of chunks, exactly as in `parallel_chunk_map`.
///
/// **Determinism contract:** callers must ensure `f`'s effect on a chunk
/// is independent of *which* state instance processes it (replica
/// states). Under that contract, outputs are bitwise identical for any
/// thread count, because the chunk→output mapping is fixed.
///
/// The serial path (one worker) runs inline on the caller's thread and
/// performs **zero heap allocations** — as does pooled dispatch once the
/// pool's workers exist — this is the steady-state hot path of the
/// batched inference engine.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty, or if `states`
/// is empty.
pub fn parallel_worker_chunks<T, S, F>(data: &mut [T], chunk_len: usize, states: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert!(!states.is_empty(), "need at least one worker state");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = max_threads().min(states.len()).min(n_chunks);
    if workers <= 1 {
        let state = &mut states[0];
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(state, ci, chunk);
        }
        return;
    }
    let len = data.len();
    let base = SlicePtr::new(data);
    let state_base = SlicePtr::new(states);
    run_tasks(workers, &|w| {
        let chunks = task_range(n_chunks, workers, w);
        let items = chunks.start * chunk_len..(chunks.end * chunk_len).min(len);
        // SAFETY: chunk item ranges are disjoint across tasks, and task
        // `w` is the only task touching `states[w]`.
        let mine = unsafe { base.slice(items) };
        let state = &mut unsafe { state_base.slice(w..w + 1) }[0];
        for (k, chunk) in mine.chunks_mut(chunk_len).enumerate() {
            f(state, chunks.start + k, chunk);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-wide override.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn split_ranges_partitions() {
        for n in 0..40 {
            for t in 1..9 {
                let ranges = split_ranges(n, t);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                if n > 0 {
                    assert!(ranges.len() <= t);
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(mx - mn <= 1, "unbalanced split {lens:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_map_is_ordered() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            let out = parallel_map(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        set_thread_override(None);
    }

    #[test]
    fn chunk_map_fills_disjoint_chunks() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 3, 8] {
            set_thread_override(Some(threads));
            let mut data = vec![0usize; 17];
            parallel_chunk_map(&mut data, 5, |ci, chunk| {
                for x in chunk.iter_mut() {
                    *x = ci + 1;
                }
            });
            let expect: Vec<usize> = (0..17).map(|i| i / 5 + 1).collect();
            assert_eq!(data, expect);
        }
        set_thread_override(None);
    }

    #[test]
    fn chunk_map_collect_in_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let mut data: Vec<u64> = (0..12).collect();
            let sums = parallel_chunk_map_collect(&mut data, 4, |ci, chunk| {
                (ci, chunk.iter().sum::<u64>())
            });
            assert_eq!(sums, vec![(0, 6), (1, 22), (2, 38)]);
        }
        set_thread_override(None);
    }

    #[test]
    fn zip_chunk_map_lockstep() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let mut a = vec![0usize; 12];
            let mut b = vec![0usize; 6];
            parallel_zip_chunk_map(&mut a, 4, &mut b, 2, |ci, ca, cb| {
                for x in ca.iter_mut() {
                    *x = ci;
                }
                for x in cb.iter_mut() {
                    *x = ci * 10;
                }
            });
            assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
            assert_eq!(b, vec![0, 0, 10, 10, 20, 20]);
        }
        set_thread_override(None);
    }

    #[test]
    fn worker_chunks_deterministic_and_state_scoped() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let mut reference: Option<Vec<usize>> = None;
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            // Each state counts how many chunks its worker processed;
            // outputs depend only on the chunk index, not the state.
            let mut states = vec![0usize; 3];
            let mut data = vec![0usize; 11];
            parallel_worker_chunks(&mut data, 2, &mut states, |s, ci, chunk| {
                *s += 1;
                for x in chunk.iter_mut() {
                    *x = ci * 10;
                }
            });
            // Every chunk processed exactly once.
            assert_eq!(states.iter().sum::<usize>(), 6);
            match &reference {
                None => reference = Some(data),
                Some(r) => assert_eq!(&data, r, "threads={threads} diverged"),
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn worker_chunks_serial_uses_first_state() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(1));
        let mut states = vec![0usize; 4];
        let mut data = vec![0u8; 5];
        parallel_worker_chunks(&mut data, 1, &mut states, |s, _ci, _chunk| *s += 1);
        assert_eq!(states, vec![5, 0, 0, 0]);
        set_thread_override(None);
    }

    #[test]
    fn nested_calls_run_serial() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let mut outer = vec![0usize; 4];
        parallel_chunk_map(&mut outer, 1, |_ci, chunk| {
            // Inside a worker the helpers must report a single thread.
            if max_threads() == 1 {
                chunk[0] = parallel_map(3, |i| i).iter().sum::<usize>();
            }
        });
        // With >1 outer chunks every worker saw the nesting guard.
        assert_eq!(outer, vec![3, 3, 3, 3]);
        set_thread_override(None);
    }

    #[test]
    fn pool_contains_panics_and_replaces_workers() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        // A panic in one task must surface with its payload after the
        // region drains, and must not poison later regions.
        let err = std::panic::catch_unwind(|| {
            parallel_for(4, |range| {
                if range.contains(&2) {
                    panic!("task-level boom");
                }
            })
        })
        .expect_err("panic must propagate to the submitter");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task-level boom"), "payload lost: {msg}");
        // The pool keeps serving correct parallel regions afterwards.
        let mut data = vec![0usize; 16];
        parallel_chunk_map(&mut data, 1, |ci, chunk| chunk[0] = ci * 3);
        assert_eq!(data, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        set_thread_override(None);
    }

    #[test]
    fn nesting_guard_is_panic_safe() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(2));
        // Panic inside a region the *caller* helps execute: the caller's
        // nesting flag must be restored by the RAII guard during unwind.
        let _ = std::panic::catch_unwind(|| {
            parallel_for(2, |range| {
                if range.start == 0 {
                    panic!("caller-side boom");
                }
            })
        });
        assert!(
            !IN_PARALLEL_WORKER.with(|f| f.get()),
            "caller left marked as a worker after a contained panic"
        );
        assert!(max_threads() > 1, "caller stuck serial after a panic");
        set_thread_override(None);
    }

    #[test]
    fn thread_setting_parses_clamps_and_rejects() {
        // Valid values pass through, clamped to the host core count.
        assert_eq!(parse_thread_setting("4", 8), Ok(4));
        assert_eq!(parse_thread_setting(" 4 ", 8), Ok(4)); // whitespace ok
        assert_eq!(parse_thread_setting("16", 8), Ok(8)); // clamp high
        assert_eq!(parse_thread_setting("1", 1), Ok(1));
        assert_eq!(parse_thread_setting("3", 0), Ok(1)); // host floor is 1
        // Zero and garbage are defined failures, never a silent fallback.
        assert!(parse_thread_setting("0", 8).is_err());
        assert!(parse_thread_setting("", 8).is_err());
        assert!(parse_thread_setting("eight", 8).is_err());
        assert!(parse_thread_setting("-2", 8).is_err());
        assert!(parse_thread_setting("2.5", 8).is_err());
        // The failure text names the variable for the one-line warning.
        let msg = parse_thread_setting("0", 8).unwrap_err();
        assert!(msg.contains("P3D_THREADS"), "{msg}");
    }

    #[test]
    fn override_and_env_priority() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }
}
