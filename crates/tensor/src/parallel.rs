//! Workspace-wide parallel execution layer for the training/inference hot
//! path.
//!
//! This module mirrors, in software, the structure of the paper's tiled
//! accelerator (Algorithm 2): work is cut into contiguous, disjoint
//! chunks, each chunk runs on its own worker, and reductions happen in a
//! **fixed, deterministic order** afterwards — so results are bitwise
//! identical regardless of thread count.
//!
//! # Thread count
//!
//! Workers are `std::thread::scope` scoped threads (no pool to shut down,
//! no `unsafe`, no external dependency). The effective worker count is,
//! in priority order:
//!
//! 1. a process-wide programmatic override ([`set_thread_override`]),
//!    used by benches and determinism tests,
//! 2. the `P3D_THREADS` environment variable — parsed **once** per
//!    process and clamped to `[1, host cores]`; invalid or zero values
//!    log one warning line and fall back to the host default,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker (or one chunk) everything runs inline on the caller's
//! thread — the serial path is the degenerate case, not a separate code
//! path.
//!
//! # Nesting
//!
//! Calls from inside a worker run serially (a thread-local guard detects
//! nesting), so `Conv3d::forward` can batch-parallelise over clips while
//! its inner `matmul` — which parallelises over output rows for the
//! batch=1 inference case — degrades gracefully instead of
//! oversubscribing cores.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// `0` means "no override"; any other value is the forced worker count.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Forces the worker count process-wide (`None` restores the
/// `P3D_THREADS` / `available_parallelism` default).
///
/// Intended for benches and determinism tests; prefer the `P3D_THREADS`
/// environment variable for deployment configuration.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The host's physical parallelism (`1` when it cannot be queried).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Interprets one `P3D_THREADS` value against the host's core count.
///
/// * `Ok(n)` — a usable worker count, already clamped to `[1, host]`.
///   `None` of the outer `Option` never occurs here; clamped values are
///   reported through the warning string of [`resolve_env_threads`].
/// * `Err(reason)` — unusable (empty, non-numeric, or zero); callers
///   must fall back to the host default.
///
/// Pure so the policy is unit-testable without touching the real
/// environment (the real lookup is parsed once per process).
pub fn parse_thread_setting(raw: &str, host: usize) -> Result<usize, String> {
    let host = host.max(1);
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "invalid P3D_THREADS='{}' (zero workers cannot run anything)",
            raw.trim()
        )),
        Ok(n) => Ok(n.min(host)),
        Err(_) => Err(format!(
            "invalid P3D_THREADS='{}' (expected an integer in 1..={host})",
            raw.trim()
        )),
    }
}

/// Resolves `P3D_THREADS` once: `(effective_count, optional_warning)`.
/// `None` means the variable is unset — use the host default.
fn resolve_env_threads() -> (Option<usize>, Option<String>) {
    match std::env::var("P3D_THREADS") {
        Err(_) => (None, None),
        Ok(raw) => {
            let host = host_parallelism();
            match parse_thread_setting(&raw, host) {
                Ok(n) => {
                    let warn = raw
                        .trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&asked| asked > n)
                        .map(|asked| {
                            format!(
                                "warning: P3D_THREADS={asked} exceeds host parallelism; \
                                 clamped to {n}"
                            )
                        });
                    (Some(n), warn)
                }
                Err(reason) => (
                    None,
                    Some(format!(
                        "warning: {reason}; using host parallelism ({host})"
                    )),
                ),
            }
        }
    }
}

/// The cached `P3D_THREADS` setting. Parsed exactly once per process
/// (changing the variable after the first parallel call has no effect —
/// use [`set_thread_override`] for runtime control); an invalid or zero
/// value logs one warning line and falls back to the host default
/// instead of silently misbehaving, and oversubscribed values clamp to
/// `[1, host cores]`.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        let (n, warning) = resolve_env_threads();
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        n
    })
}

/// The number of workers parallel helpers may use right now.
///
/// Returns `1` (serial) when called from inside a parallel worker — see
/// the module docs on nesting.
pub fn max_threads() -> usize {
    if IN_PARALLEL_WORKER.with(|f| f.get()) {
        return 1;
    }
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    host_parallelism()
}

/// Splits `0..n_items` into at most `max_threads()` contiguous ranges of
/// near-equal length (first `rem` ranges get one extra item).
fn split_ranges(n_items: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let workers = threads.min(n_items).max(1);
    let base = n_items / workers;
    let rem = n_items % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` on contiguous index ranges covering `0..n_items`, in
/// parallel. `f` receives the range it owns.
///
/// Serial (inline) when `n_items <= 1`, when only one worker is
/// available, or when already inside a parallel worker.
pub fn parallel_for<F>(n_items: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if n_items == 0 {
        return;
    }
    let threads = max_threads();
    if threads <= 1 || n_items == 1 {
        f(0..n_items);
        return;
    }
    let ranges = split_ranges(n_items, threads);
    std::thread::scope(|scope| {
        for range in ranges {
            let f = &f;
            scope.spawn(move || {
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                f(range);
                IN_PARALLEL_WORKER.with(|flag| flag.set(false));
            });
        }
    });
}

/// Maps `f` over `0..n_items` in parallel, returning results **in index
/// order** (the deterministic-reduction building block: reduce the
/// returned `Vec` serially in its natural order).
pub fn parallel_map<R, F>(n_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_items);
    slots.resize_with(n_items, || None);
    // Reuse the chunked primitive: each worker fills its own disjoint
    // slots, so no synchronisation is needed and order is preserved.
    parallel_chunk_map(&mut slots, 1, |i, slot| {
        slot[0] = Some(f(i));
    });
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map worker skipped a slot"))
        .collect()
}

/// Cuts `data` into consecutive chunks of `chunk_len` items (the final
/// chunk may be shorter) and runs `f(chunk_index, chunk)` on each, in
/// parallel. Chunks are disjoint `&mut` slices, so workers can write
/// without synchronisation; chunk indices are global and stable.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty.
pub fn parallel_chunk_map<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads();
    if threads <= 1 || n_chunks == 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    // Hand each worker a contiguous run of whole chunks.
    let ranges = split_ranges(n_chunks, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0usize;
        for range in ranges {
            let items = ((range.end * chunk_len).min(consumed + rest.len())) - consumed;
            let (mine, tail) = rest.split_at_mut(items);
            rest = tail;
            consumed += items;
            let f = &f;
            let first_chunk = range.start;
            scope.spawn(move || {
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                for (k, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                    f(first_chunk + k, chunk);
                }
                IN_PARALLEL_WORKER.with(|flag| flag.set(false));
            });
        }
    });
}

/// Like [`parallel_chunk_map`] but each chunk also *returns* a value;
/// results come back **in chunk order** for deterministic reduction.
pub fn parallel_chunk_map_collect<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    if data.is_empty() {
        return Vec::new();
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    results.resize_with(n_chunks, || None);
    let threads = max_threads();
    if threads <= 1 || n_chunks == 1 {
        for ((ci, chunk), slot) in data.chunks_mut(chunk_len).enumerate().zip(&mut results) {
            *slot = Some(f(ci, chunk));
        }
    } else {
        let ranges = split_ranges(n_chunks, threads);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut result_rest = results.as_mut_slice();
            let mut consumed = 0usize;
            for range in ranges {
                let items = ((range.end * chunk_len).min(consumed + rest.len())) - consumed;
                let (mine, tail) = rest.split_at_mut(items);
                rest = tail;
                consumed += items;
                let (my_slots, slot_tail) = result_rest.split_at_mut(range.len());
                result_rest = slot_tail;
                let f = &f;
                let first_chunk = range.start;
                scope.spawn(move || {
                    IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                    for ((k, chunk), slot) in
                        mine.chunks_mut(chunk_len).enumerate().zip(my_slots)
                    {
                        *slot = Some(f(first_chunk + k, chunk));
                    }
                    IN_PARALLEL_WORKER.with(|flag| flag.set(false));
                });
            }
        });
    }
    results
        .into_iter()
        .map(|s| s.expect("parallel_chunk_map_collect worker skipped a slot"))
        .collect()
}

/// Runs `f(chunk_index, a_chunk, b_chunk)` over two equally-chunked
/// buffers in lockstep, in parallel — for kernels that fill two outputs
/// per region (e.g. max-pool value + argmax, batch-norm normalized +
/// output).
///
/// # Panics
///
/// Panics unless `a.len() / chunk_a == b.len() / chunk_b` (same chunk
/// count, exact division).
#[allow(clippy::manual_is_multiple_of)] // MSRV 1.75: `is_multiple_of` is 1.87+
pub fn parallel_zip_chunk_map<A, B, F>(
    a: &mut [A],
    chunk_a: usize,
    b: &mut [B],
    chunk_b: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    if a.is_empty() && b.is_empty() {
        return;
    }
    assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be positive");
    assert!(
        // `% == 0` rather than `is_multiple_of` (stable only since 1.87;
        // the workspace declares rust-version 1.75).
        a.len() % chunk_a == 0 && b.len() % chunk_b == 0,
        "buffers must divide evenly into chunks"
    );
    let n_chunks = a.len() / chunk_a;
    assert_eq!(n_chunks, b.len() / chunk_b, "chunk count mismatch");
    let threads = max_threads();
    if threads <= 1 || n_chunks <= 1 {
        for (ci, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
            f(ci, ca, cb);
        }
        return;
    }
    let ranges = split_ranges(n_chunks, threads);
    std::thread::scope(|scope| {
        let mut rest_a = a;
        let mut rest_b = b;
        for range in ranges {
            let (mine_a, tail_a) = rest_a.split_at_mut(range.len() * chunk_a);
            let (mine_b, tail_b) = rest_b.split_at_mut(range.len() * chunk_b);
            rest_a = tail_a;
            rest_b = tail_b;
            let f = &f;
            let first_chunk = range.start;
            scope.spawn(move || {
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                for (k, (ca, cb)) in mine_a
                    .chunks_mut(chunk_a)
                    .zip(mine_b.chunks_mut(chunk_b))
                    .enumerate()
                {
                    f(first_chunk + k, ca, cb);
                }
                IN_PARALLEL_WORKER.with(|flag| flag.set(false));
            });
        }
    });
}

/// Like [`parallel_chunk_map`] but each worker additionally owns one
/// element of `states` — mutable per-worker scratch (e.g. an inference
/// engine's network replica + buffer arena) that persists across the
/// chunks that worker processes.
///
/// The effective worker count is `min(max_threads(), states.len(),
/// n_chunks)`; chunk indices are global and stable, and each worker owns
/// a contiguous run of chunks, exactly as in `parallel_chunk_map`.
///
/// **Determinism contract:** callers must ensure `f`'s effect on a chunk
/// is independent of *which* state instance processes it (replica
/// states). Under that contract, outputs are bitwise identical for any
/// thread count, because the chunk→output mapping is fixed.
///
/// The serial path (one worker) runs inline on the caller's thread and
/// performs **zero heap allocations** — this is the steady-state hot
/// path of the batched inference engine.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty, or if `states`
/// is empty.
pub fn parallel_worker_chunks<T, S, F>(data: &mut [T], chunk_len: usize, states: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert!(!states.is_empty(), "need at least one worker state");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = max_threads().min(states.len()).min(n_chunks);
    if workers <= 1 {
        let state = &mut states[0];
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(state, ci, chunk);
        }
        return;
    }
    let ranges = split_ranges(n_chunks, workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut states_rest = states;
        let mut consumed = 0usize;
        for range in ranges {
            let items = ((range.end * chunk_len).min(consumed + rest.len())) - consumed;
            let (mine, tail) = rest.split_at_mut(items);
            rest = tail;
            consumed += items;
            let (state_head, state_tail) = states_rest.split_at_mut(1);
            states_rest = state_tail;
            let state = &mut state_head[0];
            let f = &f;
            let first_chunk = range.start;
            scope.spawn(move || {
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                for (k, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                    f(state, first_chunk + k, chunk);
                }
                IN_PARALLEL_WORKER.with(|flag| flag.set(false));
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-wide override.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn split_ranges_partitions() {
        for n in 0..40 {
            for t in 1..9 {
                let ranges = split_ranges(n, t);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                if n > 0 {
                    assert!(ranges.len() <= t);
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(mx - mn <= 1, "unbalanced split {lens:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_map_is_ordered() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            let out = parallel_map(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        set_thread_override(None);
    }

    #[test]
    fn chunk_map_fills_disjoint_chunks() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 3, 8] {
            set_thread_override(Some(threads));
            let mut data = vec![0usize; 17];
            parallel_chunk_map(&mut data, 5, |ci, chunk| {
                for x in chunk.iter_mut() {
                    *x = ci + 1;
                }
            });
            let expect: Vec<usize> = (0..17).map(|i| i / 5 + 1).collect();
            assert_eq!(data, expect);
        }
        set_thread_override(None);
    }

    #[test]
    fn chunk_map_collect_in_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let mut data: Vec<u64> = (0..12).collect();
            let sums = parallel_chunk_map_collect(&mut data, 4, |ci, chunk| {
                (ci, chunk.iter().sum::<u64>())
            });
            assert_eq!(sums, vec![(0, 6), (1, 22), (2, 38)]);
        }
        set_thread_override(None);
    }

    #[test]
    fn zip_chunk_map_lockstep() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let mut a = vec![0usize; 12];
            let mut b = vec![0usize; 6];
            parallel_zip_chunk_map(&mut a, 4, &mut b, 2, |ci, ca, cb| {
                for x in ca.iter_mut() {
                    *x = ci;
                }
                for x in cb.iter_mut() {
                    *x = ci * 10;
                }
            });
            assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
            assert_eq!(b, vec![0, 0, 10, 10, 20, 20]);
        }
        set_thread_override(None);
    }

    #[test]
    fn worker_chunks_deterministic_and_state_scoped() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let mut reference: Option<Vec<usize>> = None;
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            // Each state counts how many chunks its worker processed;
            // outputs depend only on the chunk index, not the state.
            let mut states = vec![0usize; 3];
            let mut data = vec![0usize; 11];
            parallel_worker_chunks(&mut data, 2, &mut states, |s, ci, chunk| {
                *s += 1;
                for x in chunk.iter_mut() {
                    *x = ci * 10;
                }
            });
            // Every chunk processed exactly once.
            assert_eq!(states.iter().sum::<usize>(), 6);
            match &reference {
                None => reference = Some(data),
                Some(r) => assert_eq!(&data, r, "threads={threads} diverged"),
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn worker_chunks_serial_uses_first_state() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(1));
        let mut states = vec![0usize; 4];
        let mut data = vec![0u8; 5];
        parallel_worker_chunks(&mut data, 1, &mut states, |s, _ci, _chunk| *s += 1);
        assert_eq!(states, vec![5, 0, 0, 0]);
        set_thread_override(None);
    }

    #[test]
    fn nested_calls_run_serial() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let mut outer = vec![0usize; 4];
        parallel_chunk_map(&mut outer, 1, |_ci, chunk| {
            // Inside a worker the helpers must report a single thread.
            if max_threads() == 1 {
                chunk[0] = parallel_map(3, |i| i).iter().sum::<usize>();
            }
        });
        // With >1 outer chunks every worker saw the nesting guard.
        assert_eq!(outer, vec![3, 3, 3, 3]);
        set_thread_override(None);
    }

    #[test]
    fn thread_setting_parses_clamps_and_rejects() {
        // Valid values pass through, clamped to the host core count.
        assert_eq!(parse_thread_setting("4", 8), Ok(4));
        assert_eq!(parse_thread_setting(" 4 ", 8), Ok(4)); // whitespace ok
        assert_eq!(parse_thread_setting("16", 8), Ok(8)); // clamp high
        assert_eq!(parse_thread_setting("1", 1), Ok(1));
        assert_eq!(parse_thread_setting("3", 0), Ok(1)); // host floor is 1
        // Zero and garbage are defined failures, never a silent fallback.
        assert!(parse_thread_setting("0", 8).is_err());
        assert!(parse_thread_setting("", 8).is_err());
        assert!(parse_thread_setting("eight", 8).is_err());
        assert!(parse_thread_setting("-2", 8).is_err());
        assert!(parse_thread_setting("2.5", 8).is_err());
        // The failure text names the variable for the one-line warning.
        let msg = parse_thread_setting("0", 8).unwrap_err();
        assert!(msg.contains("P3D_THREADS"), "{msg}");
    }

    #[test]
    fn override_and_env_priority() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }
}
