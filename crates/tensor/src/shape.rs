//! Shape and stride algebra for dense row-major tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of dimensions supported.
///
/// 3D CNN weights are 5-D (`[M, N, Kd, Kr, Kc]`) and activations are 5-D
/// with a batch dimension (`[B, C, D, H, W]`), so five suffices for the
/// whole workspace.
pub const MAX_RANK: usize = 5;

/// The shape of a dense, row-major tensor.
///
/// A `Shape` stores up to [`MAX_RANK`] dimension extents inline (no heap
/// allocation) together with the rank. Strides are derived on demand in
/// row-major (C) order: the last dimension is contiguous.
///
/// # Example
///
/// ```
/// use p3d_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has more than [`MAX_RANK`] entries or any extent
    /// is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        let mut buf = [1usize; MAX_RANK];
        buf[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: buf,
            rank: dims.len(),
        }
    }

    /// A rank-1 shape.
    pub fn d1(a: usize) -> Self {
        Shape::new(&[a])
    }

    /// A rank-2 shape.
    pub fn d2(a: usize, b: usize) -> Self {
        Shape::new(&[a, b])
    }

    /// A rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape::new(&[a, b, c])
    }

    /// A rank-4 shape.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Shape::new(&[a, b, c, d])
    }

    /// A rank-5 shape.
    pub fn d5(a: usize, b: usize, c: usize, d: usize, e: usize) -> Self {
        Shape::new(&[a, b, c, d, e])
    }

    /// The dimension extents as a slice of length [`Shape::rank`].
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(axis < self.rank, "axis {axis} out of range for rank {}", self.rank);
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims[..self.rank].iter().product()
    }

    /// `true` when the shape holds zero elements. Since zero extents are
    /// rejected at construction this is only true for pathological cases
    /// and is provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank];
        for axis in (0..self.rank.saturating_sub(1)).rev() {
            strides[axis] = strides[axis + 1] * self.dims[axis + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank,
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank
        );
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.rank).rev() {
            let i = index[axis];
            let d = self.dims[axis];
            assert!(i < d, "index {i} out of bounds for axis {axis} with extent {d}");
            off += i * stride;
            stride *= d;
        }
        off
    }

    /// Inverse of [`Shape::offset`]: the multi-dimensional index of a
    /// linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.len()`.
    pub fn index_of(&self, offset: usize) -> Vec<usize> {
        assert!(offset < self.len(), "offset {offset} out of bounds for {self}");
        let mut rem = offset;
        let mut idx = vec![0usize; self.rank];
        for axis in (0..self.rank).rev() {
            let d = self.dims[axis];
            idx[axis] = rem % d;
            rem /= d;
        }
        idx
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

/// Output extent of a convolution/pooling along one axis.
///
/// `input` is the padded-free input extent, `kernel` the kernel extent,
/// `stride` the stride and `pad` the symmetric padding applied to *each*
/// side.
///
/// # Example
///
/// ```
/// use p3d_tensor::shape::conv_out;
/// // 112 input, kernel 7, stride 2, pad 3 -> 56 (conv1 of R(2+1)D).
/// assert_eq!(conv_out(112, 7, 2, 3), 56);
/// ```
///
/// # Panics
///
/// Panics if the padded input is smaller than the kernel or `stride == 0`.
pub fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "padded input {padded} smaller than kernel {kernel}"
    );
    (padded - kernel) / stride + 1
}

/// Ceiling division, used throughout the tiling and blocking math of the
/// paper (`⌈M/Tm⌉`, `⌈N/Tn⌉`, ...).
pub fn ceil_div(a: usize, b: usize) -> usize {
    assert!(b > 0, "division by zero");
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.len(), 24);
        assert_eq!(s.dims(), &[4, 3, 2]);
        assert_eq!(s.dim(0), 4);
        assert_eq!(s.dim(2), 2);
    }

    #[test]
    fn helpers_match_new() {
        assert_eq!(Shape::d1(7), Shape::new(&[7]));
        assert_eq!(Shape::d2(2, 3), Shape::new(&[2, 3]));
        assert_eq!(Shape::d3(2, 3, 4), Shape::new(&[2, 3, 4]));
        assert_eq!(Shape::d4(2, 3, 4, 5), Shape::new(&[2, 3, 4, 5]));
        assert_eq!(Shape::d5(2, 3, 4, 5, 6), Shape::new(&[2, 3, 4, 5, 6]));
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn over_rank_rejected() {
        let _ = Shape::new(&[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::d1(5);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.index_of(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        let s = Shape::new(&[2, 2]);
        let _ = s.offset(&[2, 0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[64, 8, 3, 3, 3]).to_string(), "[64x8x3x3x3]");
    }

    #[test]
    fn conv_out_basic() {
        assert_eq!(conv_out(112, 3, 1, 1), 112);
        assert_eq!(conv_out(112, 3, 2, 1), 56);
        assert_eq!(conv_out(16, 3, 1, 1), 16);
        assert_eq!(conv_out(16, 1, 1, 0), 16);
        // C3D pool1 (1,2,2) over 112 -> 56
        assert_eq!(conv_out(112, 2, 2, 0), 56);
    }

    #[test]
    fn ceil_div_basic() {
        assert_eq!(ceil_div(144, 64), 3);
        assert_eq!(ceil_div(64, 8), 8);
        assert_eq!(ceil_div(1, 8), 1);
        assert_eq!(ceil_div(8, 8), 1);
        assert_eq!(ceil_div(9, 8), 2);
    }
}
