//! Dense, row-major `f32` tensors.

use crate::shape::Shape;
// Re-exported here for backwards compatibility: these kernels lived in
// this module before the packed/block-sparse rework moved them to
// [`crate::gemm`].
pub use crate::gemm::{gemm_into, gemm_nt_into};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric container used by the whole workspace: CNN
/// activations (`[B, C, D, H, W]`), convolution weights
/// (`[M, N, Kd, Kr, Kc]`), ADMM auxiliary variables, and gradients.
///
/// The representation is a flat `Vec<f32>` plus a [`Shape`]; all views are
/// materialised (no borrowed views), which keeps the API simple and is fast
/// enough for the model sizes trained in this reproduction.
///
/// # Example
///
/// ```
/// use p3d_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::d2(2, 3));
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.sum(), 5.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// Builds a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(Shape::d1(data.len().max(1)), if data.is_empty() { vec![0.0] } else { data.to_vec() })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: zero-sized shapes are rejected at construction.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the value at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Reinterprets the tensor with a new shape of identical length.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {}",
            self.len(),
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two equally-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place elementwise combination with another tensor of the same
    /// shape.
    pub fn zip_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
    }

    /// `self += alpha * other` (AXPY), the workhorse of SGD and the ADMM
    /// W-step regulariser.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for the (impossible)
    /// empty case.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flat buffer.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Frobenius norm (`sqrt(sum(x^2))`), used for ADMM convergence checks
    /// and block-norm ranking.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>()
    }

    /// Number of elements with value exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Number of non-zero elements.
    pub fn count_nonzeros(&self) -> usize {
        self.len() - self.count_zeros()
    }

    /// Dot product of two equally-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        self.assert_same_shape(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// `true` if every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// All three GEMM variants (`matmul`, [`Tensor::matmul_nt`],
    /// [`Tensor::matmul_tn`]) funnel into one cache-blocked, row-parallel
    /// kernel and share the **zero-skip contract**: an exactly-zero entry
    /// of the *left* operand contributes nothing to the output, even when
    /// the corresponding right-operand values are `NaN` or `Inf`. This
    /// mirrors the accelerator's block-skip datapath (pruned weight
    /// blocks are never multiplied) and makes pruned rows proportionally
    /// cheaper on CPU too. Right-operand zeros are *not* skipped, so
    /// `NaN` in the left operand still propagates.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with compatible inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        gemm_zero_skip(&self.data, m, k, &other.data, n)
    }

    /// `A * B^T` for rank-2 tensors: `[m, k] x [n, k] -> [m, n]`.
    ///
    /// Used by convolution backward passes. Routes through
    /// [`gemm_nt_into`], whose packed side folds the transpose into the
    /// `B`-panel packing — no `B^T` buffer is materialised, and the
    /// accumulation order (and therefore the zero-skip contract, see
    /// [`Tensor::matmul`]) is byte-for-byte the same as `matmul`'s on
    /// the transposed operand.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul_nt lhs must be rank-2");
        assert_eq!(other.shape.rank(), 2, "matmul_nt rhs must be rank-2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm_nt_into(&self.data, m, k, &other.data, n, &mut out);
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `A^T * B` for rank-2 tensors: `[k, m] x [k, n] -> [m, n]`.
    ///
    /// `A^T` is materialised once so the inner kernel — and therefore the
    /// zero-skip contract, see [`Tensor::matmul`] — is byte-for-byte the
    /// same as `matmul`'s (the skipped zeros are still the *left*
    /// operand's entries).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul_tn lhs must be rank-2");
        assert_eq!(other.shape.rank(), 2, "matmul_tn rhs must be rank-2");
        let (k, m) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");
        let at = self.transpose2();
        gemm_zero_skip(at.data(), m, k, &other.data, n)
    }

    /// Transpose of a rank-2 tensor.
    #[allow(clippy::needless_range_loop)]
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires rank-2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(Shape::d2(n, m), out)
    }
}

/// The kernel behind all three `matmul*` variants:
/// `[m, k] (row-major a) x [k, n] (row-major b) -> [m, n]`.
///
/// Routes through [`crate::gemm::gemm_into`] — the packed
/// register-tiled microkernel for shapes that amortise panel packing,
/// the scalar reference otherwise. Both sides accumulate every output
/// element's non-zero terms in increasing-`k` order (the canonical
/// order, see the [`crate::gemm`] module docs), so results are bitwise
/// identical to each other, to the crate's original scalar kernel, and
/// across `P3D_THREADS` settings. The zero-skip branch on the *left*
/// operand means a pruned (exactly-zero) left entry never touches the
/// right operand — the CPU analogue of the FPGA's block-skip datapath.
fn gemm_zero_skip(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Tensor {
    let mut out = vec![0.0f32; m * n];
    gemm_into(a, m, k, b, n, &mut out);
    Tensor::from_vec(Shape::d2(m, n), out)
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, ..., {:.4}]; norm={:.4})",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.frobenius_norm()
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.zip_inplace(rhs, |a, b| a + b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full([2, 2], 2.5);
        assert_eq!(f.mean(), 2.5);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros([2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.get(&[1, 2, 3]), 7.0);
        assert_eq!(t.data()[23], 7.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.get(&[2, 1]), 6.0);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]);
        let b = Tensor::from_vec([3], vec![10., 20., 30.]);
        assert_eq!((&a + &b).data(), &[11., 22., 33.]);
        assert_eq!((&b - &a).data(), &[9., 18., 27.]);
        assert_eq!((&a * 2.0).data(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[6., 12., 18.]);
        assert_eq!(a.dot(&b), 140.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![-1., 3., 2., 0.]);
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.count_zeros(), 1);
        assert_eq!(t.count_nonzeros(), 3);
    }

    #[test]
    fn frobenius() {
        let t = Tensor::from_vec([2], vec![3., 4.]);
        assert_eq!(t.frobenius_norm(), 5.0);
        assert_eq!(t.frobenius_norm_sq(), 25.0);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose2();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), 6.0);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn matmul_variants_agree() {
        let a = Tensor::from_vec([2, 3], vec![1., -2., 3., 0.5, 4., -1.]);
        let b = Tensor::from_vec([3, 4], (0..12).map(|x| x as f32 * 0.25 - 1.0).collect());
        let reference = a.matmul(&b);
        assert!(a.matmul_nt(&b.transpose2()).allclose(&reference, 1e-5));
        assert!(a.transpose2().matmul_tn(&b).allclose(&reference, 1e-5));
    }

    #[test]
    fn zero_skip_contract_agrees_across_variants() {
        // Regression: `matmul_nt` used to lack the zero-skip fast path,
        // so a NaN in the right operand opposite an exactly-zero left
        // entry poisoned `matmul_nt` outputs but not `matmul`'s. All
        // three variants now share one kernel; poison the right operand
        // everywhere the left operand is zero and demand agreement.
        let a = Tensor::from_vec(
            [3, 4],
            vec![0., 2., 0., -1., 5., 0., 0., 3., 0., 0., 0., 0.],
        );
        // b[p][j] = NaN wherever *every* row of `a` has a zero in column
        // p — those rows of b are provably never read.
        let mut b_rows = vec![vec![1.0f32, -2.0, 0.5]; 4];
        // a[:, 2] is all zero -> b row 2 can be fully poisoned.
        b_rows[2] = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let b = Tensor::from_vec([4, 3], b_rows.concat());

        let reference = Tensor::from_vec(
            [3, 3],
            vec![
                2. * 1. - 1. * 1.,
                2. * -2. - 1. * -2.,
                2. * 0.5 - 1. * 0.5,
                5. * 1. + 3. * 1.,
                5. * -2. + 3. * -2.,
                5. * 0.5 + 3. * 0.5,
                0.,
                0.,
                0.,
            ],
        );

        let via_nn = a.matmul(&b);
        let via_nt = a.matmul_nt(&b.transpose2());
        let via_tn = a.transpose2().matmul_tn(&b);
        for (name, out) in [("nn", &via_nn), ("nt", &via_nt), ("tn", &via_tn)] {
            assert!(
                out.data().iter().all(|x| x.is_finite()),
                "matmul_{name} leaked NaN/Inf past a left-operand zero: {out:?}"
            );
            assert!(
                out.allclose(&reference, 1e-5),
                "matmul_{name} disagrees with reference: {out:?}"
            );
        }
    }

    #[test]
    fn zero_skip_does_not_skip_right_zeros() {
        // The contract is asymmetric: a NaN in the *left* operand must
        // still propagate even when the right operand is zero.
        let a = Tensor::from_vec([1, 2], vec![f32::NAN, 1.0]);
        let b = Tensor::from_vec([2, 1], vec![0.0, 1.0]);
        assert!(a.matmul(&b).data()[0].is_nan());
    }

    #[test]
    fn gemm_into_bitwise_matches_matmul() {
        use crate::rng::TensorRng;
        let mut rng = TensorRng::seed(77);
        for (m, k, n) in [(1, 5, 3), (4, 7, 9), (12, 3, 300), (9, 16, 257)] {
            let a = rng.uniform_tensor([m, k], -1.0, 1.0);
            let b = rng.uniform_tensor([k, n], -1.0, 1.0);
            let reference = a.matmul(&b);
            let mut out = vec![f32::NAN; m * n]; // stale garbage must be overwritten
            gemm_into(a.data(), m, k, b.data(), n, &mut out);
            assert_eq!(out.as_slice(), reference.data(), "({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_nt_into_bitwise_matches_matmul_nt() {
        use crate::rng::TensorRng;
        let mut rng = TensorRng::seed(78);
        for (m, k, n) in [(1, 6, 4), (5, 11, 8), (10, 4, 300)] {
            let a = rng.uniform_tensor([m, k], -1.0, 1.0);
            let b = rng.uniform_tensor([n, k], -1.0, 1.0);
            let reference = a.matmul_nt(&b);
            let mut out = vec![f32::NAN; m * n];
            gemm_nt_into(a.data(), m, k, b.data(), n, &mut out);
            assert_eq!(out.as_slice(), reference.data(), "({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_into_zero_skip_contract() {
        // An exactly-zero left entry never touches the right operand.
        let a = [0.0f32, 2.0];
        let b = [f32::NAN, 1.0]; // row 0 of b is opposite the zero
        let mut out = [0.0f32];
        gemm_into(&a, 1, 2, &b, 1, &mut out);
        assert_eq!(out[0], 2.0);
        let b_nk = [f32::NAN, 1.0]; // b_nk[0*2+0] = NaN opposite zero
        gemm_nt_into(&a, 1, 2, &b_nk, 1, &mut out);
        assert_eq!(out[0], 2.0);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![1.0005, 2.0]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
    }
}
