#![warn(missing_docs)]
//! Dense n-dimensional tensors and fixed-point arithmetic for 3D CNN
//! workloads.
//!
//! This crate is the numeric substrate of the `p3d` workspace, which
//! reproduces *"3D CNN Acceleration on FPGA using Hardware-Aware Pruning"*
//! (DAC 2020). It provides:
//!
//! * [`Shape`] — shape/stride algebra for up to 5-D tensors (the weight
//!   tensors of 3D convolutions are 5-D: `[M, N, Kd, Kr, Kc]`),
//! * [`Tensor`] — a dense, row-major, `f32` tensor with the elementwise,
//!   reduction, and indexing operations needed by a from-scratch neural
//!   network stack,
//! * [`Fixed16`] — the paper's 16-bit fixed-point format (1 sign bit,
//!   7 integer bits, 8 fractional bits) with saturating arithmetic and the
//!   wide-accumulator MAC semantics of an FPGA DSP slice,
//! * [`gemm`] — the packed, register-tiled GEMM microkernel and the
//!   block-sparse (`Tm x Tn` block-enable) compute path behind every
//!   `matmul` in the workspace,
//! * [`rng`] — seeded random initialisation (uniform, normal, Kaiming),
//! * [`parallel`] — the persistent-worker-pool parallel-for layer behind
//!   the multi-threaded GEMM and convolution kernels (`P3D_THREADS`).
//!
//! # Example
//!
//! ```
//! use p3d_tensor::{Shape, Tensor};
//!
//! // A weight tensor for a 1x3x3 spatial convolution with 8 output and
//! // 4 input channels.
//! let w = Tensor::zeros(Shape::new(&[8, 4, 1, 3, 3]));
//! assert_eq!(w.len(), 8 * 4 * 9);
//! assert_eq!(w.shape().dims(), &[8, 4, 1, 3, 3]);
//! ```

pub mod fixed;
pub mod gemm;
pub mod parallel;
pub mod rng;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use fixed::{div_round_nearest, Fixed16, FixedTensor};
pub use gemm::{gemm_bs_into, gemm_into, gemm_nt_into, BlockPattern, BlockSparseWeights};
pub use rng::TensorRng;
pub use shape::Shape;
pub use tensor::Tensor;
