//! Packed, cache-blocked, register-tiled GEMM kernels and the
//! block-sparse (`Tm x Tn` block-enable) compute path.
//!
//! # The canonical accumulation order
//!
//! Every kernel in this module — the naive reference, the packed
//! microkernel, and the block-sparse variant — produces each output
//! element by accumulating its **non-zero left-operand terms in
//! increasing `k` order, left-associated, starting from `0.0`**, and
//! skipping exactly-zero left entries without touching the right
//! operand. Floating-point addition is not associative, so pinning this
//! one order is what makes every kernel here *bitwise identical* to
//! every other (and to the original scalar kernel this crate shipped
//! with), at any `P3D_THREADS` setting:
//!
//! * the naive kernel walks `p = 0..k` per output row,
//! * the packed microkernel holds an `MR x NR` register tile and walks
//!   the full `p = 0..k` range per tile (there is deliberately **no
//!   `Kc` blocking of the accumulation** — partial-sum re-association
//!   would change results),
//! * the block-sparse kernel walks only the *enabled* `k` ranges in
//!   ascending order; on masked weights the skipped ranges are exactly
//!   zero, so the sequence of non-zero terms — and therefore the
//!   rounding — is identical to the dense kernel's.
//!
//! This is the CPU analogue of the paper's lossless block-skip
//! argument: the accelerator may skip a pruned `Tm x Tn` block because
//! the MAC array would have accumulated exact zeros for it; we may skip
//! it because IEEE-754 addition of the remaining terms in the same
//! order yields the same bits.
//!
//! # Zero-skip contract
//!
//! Shared with [`crate::Tensor::matmul`]: an exactly-zero entry of the
//! *left* operand contributes nothing and never reads the right
//! operand, so `NaN`/`Inf` sitting on the right of a pruned zero cannot
//! leak into the output. Right-operand zeros are *not* skipped.
//!
//! # Packing scheme
//!
//! The right operand is repacked into column panels of [`NR`] columns,
//! laid out `packed[jp][p][j]` (`jp` = panel, `p` = inner dimension,
//! `j` = column within panel), zero-padded past `n`. Within a panel the
//! `NR` values of one `p` step are contiguous, and any `k` sub-range of
//! a panel is contiguous too — which is exactly what lets the
//! block-sparse kernel stream the same packed buffer while visiting
//! only enabled `k` ranges. Packing is pure data movement (no
//! arithmetic), so it cannot affect results. The pack buffer is a
//! thread-local, growable scratch: steady-state calls perform **zero
//! heap allocations** once the scratch has grown to the largest shape
//! seen on that thread.

use crate::parallel::{max_threads, parallel_chunk_map};
use std::cell::RefCell;

/// Register-tile height: output rows held in accumulators at once.
///
/// `MR x NR = 32` f32 accumulators occupy 8 of the 16 XMM registers of
/// the 128-bit SSE baseline this crate targets, leaving the rest for
/// the two loaded right-operand vectors, the broadcast left-operand
/// scalars, and loop-carried state — so the whole accumulator tile
/// lives in registers for the full `k` traversal instead of bouncing
/// through L1 like the naive kernel's output row does.
pub const MR: usize = 4;

/// Register-tile width: output columns held in accumulators at once.
pub const NR: usize = 8;

/// Column-block width for the naive reference kernel. 256 f32 columns
/// of the output row plus the matching right-operand row segment fit
/// comfortably in L1, so the `p`-loop re-reads hot lines instead of
/// streaming DRAM.
const GEMM_COL_BLOCK: usize = 256;

/// Row count below which kernels stay serial: even waking parked pool
/// workers costs more than the multiply itself for tiny products.
const GEMM_PARALLEL_MIN_ROWS: usize = 8;

thread_local! {
    /// Growable pack scratch, one per thread. Taken (not borrowed) for
    /// the duration of a GEMM so re-entrant calls cannot conflict —
    /// a nested call simply starts from an empty buffer.
    static PACK_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zero-filled-on-growth scratch slice of exactly `len`
/// floats, reusing the thread-local buffer across calls.
fn with_pack_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_SCRATCH.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let r = f(&mut buf[..len]);
        cell.replace(buf);
        r
    })
}

// ---------------------------------------------------------------------------
// Naive reference kernels (the crate's original scalar GEMM, kept verbatim)
// ---------------------------------------------------------------------------

/// The original scalar row-loop kernel:
/// `[m, k] (row-major a) x [k, n] (row-major b) -> out [m, n]`.
///
/// Kept as the **reference implementation** the packed microkernel is
/// differential-tested (and perf-gated) against, and as the dispatch
/// target for shapes too small to amortise panel packing. Loop order is
/// `i / jb / p / j`; the zero-skip branch hoists the left scalar out of
/// the innermost loop.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_naive_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_naive_into: lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_naive_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_naive_into: out length mismatch");
    out.fill(0.0);
    if m == 0 || n == 0 {
        return;
    }

    let row_kernel = |i: usize, o_row: &mut [f32]| {
        let a_row = &a[i * k..(i + 1) * k];
        let mut jb = 0;
        while jb < n {
            let je = (jb + GEMM_COL_BLOCK).min(n);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue; // zero-skip: pruned left entry, block never multiplied
                }
                let b_seg = &b[p * n + jb..p * n + je];
                for (o, &bv) in o_row[jb..je].iter_mut().zip(b_seg) {
                    *o += av * bv;
                }
            }
            jb = je;
        }
    };

    if m >= GEMM_PARALLEL_MIN_ROWS {
        parallel_chunk_map(out, n, row_kernel);
    } else {
        for (i, o_row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, o_row);
        }
    }
}

/// The original scalar `A * B^T` kernel:
/// `[m, k] (row-major a) x [n, k] (row-major b_nk) -> out [m, n]`.
///
/// Reads `b_nk[j * k + p]` directly — a cache-hostile stride-`k` walk
/// in the innermost loop, which is exactly why the packed variant
/// exists. Kept as the differential-test reference for the packed
/// `nt` path.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_naive_nt_into(a: &[f32], m: usize, k: usize, b_nk: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_naive_nt_into: lhs length mismatch");
    assert_eq!(b_nk.len(), n * k, "gemm_naive_nt_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_naive_nt_into: out length mismatch");
    out.fill(0.0);
    if m == 0 || n == 0 {
        return;
    }

    let row_kernel = |i: usize, o_row: &mut [f32]| {
        let a_row = &a[i * k..(i + 1) * k];
        let mut jb = 0;
        while jb < n {
            let je = (jb + GEMM_COL_BLOCK).min(n);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue; // zero-skip: pruned left entry, block never multiplied
                }
                for (j, o) in o_row[jb..je].iter_mut().enumerate() {
                    *o += av * b_nk[(jb + j) * k + p];
                }
            }
            jb = je;
        }
    };

    if m >= GEMM_PARALLEL_MIN_ROWS {
        parallel_chunk_map(out, n, row_kernel);
    } else {
        for (i, o_row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, o_row);
        }
    }
}

// ---------------------------------------------------------------------------
// Panel packing
// ---------------------------------------------------------------------------

/// Number of `NR`-column panels covering `n` output columns.
fn panel_count(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Packs row-major `b [k, n]` into `NR`-column panels
/// (`packed[jp*k*NR + p*NR + j]`), zero-padding columns past `n`.
/// Panels are independent, so packing parallelises freely — it is pure
/// data movement and cannot affect numeric results.
fn pack_b_nn(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    parallel_chunk_map(packed, k * NR, |jp, panel| {
        let j0 = jp * NR;
        let jw = NR.min(n - j0);
        for (p, prow) in panel.chunks_mut(NR).enumerate() {
            prow[..jw].copy_from_slice(&b[p * n + j0..p * n + j0 + jw]);
            prow[jw..].fill(0.0);
        }
    });
}

/// Packs `b_nk [n, k]` (the transposed operand of the `nt` product)
/// into the same `NR`-column panel layout as [`pack_b_nn`]. Source rows
/// are read contiguously; the stride-`k` walk that plagued the naive
/// `nt` kernel happens once here, during packing, instead of `m` times
/// in the inner loop.
fn pack_b_nt(b_nk: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    parallel_chunk_map(packed, k * NR, |jp, panel| {
        let j0 = jp * NR;
        let jw = NR.min(n - j0);
        for jj in 0..NR {
            if jj < jw {
                for (p, &v) in b_nk[(j0 + jj) * k..(j0 + jj) * k + k].iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            } else {
                for p in 0..k {
                    panel[p * NR + jj] = 0.0;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// The MR x NR register-tile microkernel
// ---------------------------------------------------------------------------

/// Computes one `mr x NR` output tile (`mr <= MR`) into register
/// accumulators: `acc[ir][j] = sum_p a[row0+ir][p] * panel[p][j]`.
///
/// Dispatches to the fully-unrolled [`microkernel_full`] for complete
/// `MR`-row tiles (the steady state) and to a generic fallback for the
/// `m % MR` tail. Both walk the **full** `p = 0..k` range so the
/// accumulation order is canonical (see module docs).
#[inline]
fn microkernel(a_rows: &[&[f32]], panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    if let [r0, r1, r2, r3] = *a_rows {
        microkernel_full(r0, r1, r2, r3, panel, acc);
    } else {
        microkernel_tail(a_rows, panel, acc);
    }
}

/// The steady-state register tile: four named `[f32; NR]` accumulators
/// live entirely in SIMD registers (`4 x NR/4 = 8` XMM on the SSE
/// baseline) across the whole `k` traversal — the inner loop touches
/// memory only to read one `NR`-wide panel row and four left scalars
/// per `p` step, instead of the naive kernel's load+store of the output
/// row on every step.
///
/// Dispatches between the explicit AVX2 kernel and the portable scalar
/// body via [`crate::simd::active`]; the two are **bitwise identical**
/// (see [`avx2`] module docs), so the choice is invisible to every
/// bitwise gate.
#[inline]
fn microkernel_full(
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    r3: &[f32],
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::use_avx2() {
        // SAFETY: use_avx2() is true only when runtime detection proved
        // AVX2 support, which is exactly the target_feature the kernel
        // requires.
        unsafe { avx2::microkernel_full(r0, r1, r2, r3, panel, acc) };
        return;
    }
    microkernel_full_scalar(r0, r1, r2, r3, panel, acc);
}

/// Portable body of [`microkernel_full`].
///
/// The `NR`-wide updates are branch-free with fixed trip counts, so
/// they autovectorize; the zero-skip guard sits *outside* them, one
/// scalar test per `(p, row)`, which honours the contract (a zero left
/// entry never loads the right operand) while skipping all `NR`
/// multiplies of a pruned weight at once. The zipped iterators carry
/// the `r*.len() == k == panel.len() / NR` invariant, so the loop body
/// is bounds-check-free.
#[inline]
fn microkernel_full_scalar(
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    r3: &[f32],
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    let rows = r0.iter().zip(r1).zip(r2.iter().zip(r3));
    for ((( &a0, &a1), (&a2, &a3)), bvec) in rows.zip(panel.chunks_exact(NR)) {
        let bv: &[f32; NR] = bvec.try_into().expect("panel chunk is NR wide");
        if a0 != 0.0 {
            for j in 0..NR {
                c0[j] += a0 * bv[j];
            }
        }
        if a1 != 0.0 {
            for j in 0..NR {
                c1[j] += a1 * bv[j];
            }
        }
        if a2 != 0.0 {
            for j in 0..NR {
                c2[j] += a2 * bv[j];
            }
        }
        if a3 != 0.0 {
            for j in 0..NR {
                c3[j] += a3 * bv[j];
            }
        }
    }
    acc[0] = c0;
    acc[1] = c1;
    acc[2] = c2;
    acc[3] = c3;
}

/// Generic tile for the `m % MR` tail rows; identical arithmetic and
/// contracts, no unrolling (runs at most once per output panel).
fn microkernel_tail(a_rows: &[&[f32]], panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for row in acc.iter_mut() {
        *row = [0.0; NR];
    }
    for (p, bvec) in panel.chunks_exact(NR).enumerate() {
        for (ir, a_row) in a_rows.iter().enumerate() {
            let av = a_row[p];
            if av != 0.0 {
                for (o, &bv) in acc[ir].iter_mut().zip(bvec) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Computes one `mr x jw` output tile — rows `row0 .. row0 + mr`
/// against one packed panel — and writes the live columns
/// `j0 .. j0 + jw` into `o_rows` (an `mr * n` row-major slice of the
/// output whose first row is `row0`).
#[allow(clippy::too_many_arguments)]
fn packed_tile_into(
    a: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    mr: usize,
    panel: &[f32],
    j0: usize,
    jw: usize,
    o_rows: &mut [f32],
) {
    let mut a_rows_buf: [&[f32]; MR] = [&[]; MR];
    for (ir, slot) in a_rows_buf.iter_mut().enumerate().take(mr) {
        let base = (row0 + ir) * k;
        *slot = &a[base..base + k];
    }
    let mut acc = [[0.0f32; NR]; MR];
    microkernel(&a_rows_buf[..mr], panel, &mut acc);
    for (ir, row) in acc.iter().enumerate().take(mr) {
        o_rows[ir * n + j0..ir * n + j0 + jw].copy_from_slice(&row[..jw]);
    }
}

/// Shared driver for both packed orientations: packs `b` with `pack`,
/// then sweeps the panels with the microkernel.
///
/// Each worker owns a contiguous band of output rows and walks the loop
/// nest **panel-outer, row-tile-inner**: one `k x NR` panel (a few KB)
/// stays L1-resident while every `MR`-row tile of the band consumes it,
/// and the packed image is streamed exactly once per worker instead of
/// once per row tile. The left operand is the re-read operand instead —
/// `m x k` is by far the smaller matrix on the conv-as-GEMM shapes this
/// crate cares about, so it sits in cache across panels.
///
/// Every output element is computed wholly inside one worker with the
/// canonical accumulation order, so band boundaries (and therefore
/// `P3D_THREADS`) cannot affect results bitwise.
fn gemm_packed_driver(
    a: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    pack: impl Fn(&mut [f32]),
) {
    if m == 0 || n == 0 {
        return;
    }
    let packed_len = panel_count(n) * k * NR;
    with_pack_scratch(packed_len, |packed| {
        pack(packed);
        // Split the row blocks evenly over the available workers; each
        // band is a whole number of MR-row tiles (bar the ragged end).
        let blocks = m.div_ceil(MR);
        let workers = max_threads().clamp(1, blocks);
        let band_rows = blocks.div_ceil(workers) * MR;
        parallel_chunk_map(out, band_rows * n, |ci, band| {
            let row0 = ci * band_rows;
            let rows = band.len() / n;
            for jp in 0..panel_count(n) {
                let j0 = jp * NR;
                let jw = NR.min(n - j0);
                let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
                let mut rb = 0;
                while rb < rows {
                    let mr = MR.min(rows - rb);
                    packed_tile_into(
                        a,
                        k,
                        n,
                        row0 + rb,
                        mr,
                        panel,
                        j0,
                        jw,
                        &mut band[rb * n..(rb + mr) * n],
                    );
                    rb += mr;
                }
            }
        });
    });
}

/// Packed register-tiled GEMM:
/// `[m, k] (row-major a) x [k, n] (row-major b) -> out [m, n]`.
///
/// Always takes the packed path (no small-shape dispatch) — exposed so
/// differential tests can exercise edge tiles (`m < MR`, `n < NR`,
/// `k = 1`) directly. Bitwise identical to [`gemm_naive_into`] on every
/// input (see the module docs for why).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_packed_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_packed_into: lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_packed_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_packed_into: out length mismatch");
    gemm_packed_driver(a, m, k, n, out, |packed| pack_b_nn(b, k, n, packed));
}

/// Packed register-tiled `A * B^T`:
/// `[m, k] (row-major a) x [n, k] (row-major b_nk) -> out [m, n]`.
///
/// The `B` panel is packed once (contiguous reads of `b_nk` rows), so
/// the microkernel's inner loop is identical to [`gemm_packed_into`]'s
/// — no strided reads survive into the hot loop. Bitwise identical to
/// [`gemm_naive_nt_into`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_packed_nt_into(a: &[f32], m: usize, k: usize, b_nk: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_packed_nt_into: lhs length mismatch");
    assert_eq!(b_nk.len(), n * k, "gemm_packed_nt_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_packed_nt_into: out length mismatch");
    gemm_packed_driver(a, m, k, n, out, |packed| pack_b_nt(b_nk, k, n, packed));
}

/// `true` when panel packing pays for itself: enough output rows to
/// amortise the `O(k n)` pack over, and at least one full `NR` panel.
/// Both sides of the dispatch are bitwise identical, so this threshold
/// is purely a performance choice.
fn use_packed(m: usize, n: usize) -> bool {
    m >= MR && n >= NR
}

/// Allocation-free GEMM into a caller-provided buffer:
/// `[m, k] (row-major a) x [k, n] (row-major b) -> out [m, n]`.
///
/// This is the kernel behind [`crate::Tensor::matmul`]: it dispatches
/// to the packed register-tiled microkernel ([`gemm_packed_into`]) for
/// shapes that amortise packing and to the scalar reference
/// ([`gemm_naive_into`]) otherwise. Both sides produce **bitwise
/// identical** results (canonical accumulation order, see module docs),
/// honour the left-operand zero-skip contract, and are reproducible at
/// any `P3D_THREADS`. `out` is fully overwritten. "Allocation-free"
/// holds in the steady state: the pack buffer is thread-local and
/// reused across calls.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if use_packed(m, n) {
        gemm_packed_into(a, m, k, b, n, out)
    } else {
        gemm_naive_into(a, m, k, b, n, out)
    }
}

/// Allocation-free `A * B^T` into a caller-provided buffer:
/// `[m, k] (row-major a) x [n, k] (row-major b_nk) -> out [m, n]`.
///
/// Dispatches like [`gemm_into`]; the packed side is
/// [`gemm_packed_nt_into`], which fixes the naive variant's stride-`k`
/// inner-loop reads by packing the `B` panel once. Bitwise identical to
/// [`crate::Tensor::matmul_nt`] on the same operands.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_nt_into(a: &[f32], m: usize, k: usize, b_nk: &[f32], n: usize, out: &mut [f32]) {
    if use_packed(m, n) {
        gemm_packed_nt_into(a, m, k, b_nk, n, out)
    } else {
        gemm_naive_nt_into(a, m, k, b_nk, n, out)
    }
}

// ---------------------------------------------------------------------------
// Block-sparse path
// ---------------------------------------------------------------------------

/// The `Tm x Tk` block-enable structure of a pruned weight matrix, in
/// matrix coordinates.
///
/// This is the layer-agnostic mirror of the accelerator's block-enable
/// bitmap (paper Fig. 2): the weight tensor, viewed as an `[m, k]`
/// matrix (for a conv layer `m = M` output channels and
/// `k = N * Kd*Kr*Kc`), is cut into `tm x tk` blocks, and `keep[bi *
/// block_cols + bj]` says whether block `(bi, bj)` survived pruning.
/// A `Tm x Tn` channel block of the paper maps to `tm = Tm`,
/// `tk = Tn * kernel_volume`, because the `Tn` input channels of a
/// block own a contiguous `k` range of the row-major im2col matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPattern {
    /// Rows of the weight matrix (output channels).
    pub m: usize,
    /// Columns of the weight matrix (input channels x kernel volume).
    pub k: usize,
    /// Block height in rows.
    pub tm: usize,
    /// Block width in columns.
    pub tk: usize,
    /// Row-major `[block_rows() * block_cols()]` enable bitmap.
    pub keep: Vec<bool>,
}

impl BlockPattern {
    /// Number of block rows (`ceil(m / tm)`).
    pub fn block_rows(&self) -> usize {
        self.m.div_ceil(self.tm)
    }

    /// Number of block columns (`ceil(k / tk)`).
    pub fn block_cols(&self) -> usize {
        self.k.div_ceil(self.tk)
    }

    /// Panics unless the pattern is internally consistent.
    fn validate(&self) {
        assert!(self.tm > 0 && self.tk > 0, "BlockPattern: zero block dims");
        assert_eq!(
            self.keep.len(),
            self.block_rows() * self.block_cols(),
            "BlockPattern: keep bitmap length mismatch"
        );
    }

    /// Fraction of blocks enabled (`1.0` for an empty grid).
    pub fn enabled_fraction(&self) -> f32 {
        if self.keep.is_empty() {
            return 1.0;
        }
        self.keep.iter().filter(|&&b| b).count() as f32 / self.keep.len() as f32
    }

    /// Whether a layer should skip the block-sparse kernel and run the
    /// dense GEMM instead.
    ///
    /// At high enabled fractions block-CSR only adds overhead — the
    /// per-block-row column walk, the packed-panel indirection, and the
    /// loss of the dense kernel's long contiguous `k` streams — without
    /// skipping meaningful work: BENCH_conv3d.json measured the sparse
    /// path at 0.874x dense throughput on a fully-enabled pattern.
    /// Because the masked dense weights and the compiled sparse form
    /// accumulate the same products in the same `k` order, dense and
    /// sparse execution are bitwise identical on such patterns, so the
    /// fallback is purely a performance decision.
    pub fn prefers_dense(&self) -> bool {
        self.enabled_fraction() >= DENSE_FALLBACK_ENABLED_FRACTION
    }
}

/// Enabled-block fraction at or above which [`BlockPattern::prefers_dense`]
/// routes a layer to the dense kernel. At 95%+ enabled, at most ~5% of
/// MACs can be skipped — less than the ~13% overhead the sparse path
/// showed on dense patterns — while every workload the paper targets
/// prunes far below this (the sweep's lightest setting keeps 50%).
pub const DENSE_FALLBACK_ENABLED_FRACTION: f32 = 0.95;

/// A pruned weight matrix compiled to block-CSR: per block row, the
/// ascending list of enabled block columns plus their packed values.
///
/// `values` stores, for each block row, each `MR`-row sub-panel's
/// enabled entries as a compacted `[ks][MR]` panel (`ks` = enabled `k`
/// count of that block row, rows zero-padded to `MR`), so the
/// block-sparse kernel streams both operands contiguously. Because
/// pruning leaves block *structure* fixed while retraining keeps
/// updating the surviving values, [`BlockSparseWeights::refresh`]
/// repacks values in place — `O(m k)` against the `O(m k n)` product —
/// without reallocating.
#[derive(Debug, Clone)]
pub struct BlockSparseWeights {
    m: usize,
    k: usize,
    tm: usize,
    /// CSR row pointer into `col_idx` / `col_ranges`.
    row_ptr: Vec<usize>,
    /// Enabled block-column indices per block row, ascending.
    col_idx: Vec<usize>,
    /// The `[p0, p1)` k-range of each enabled block, aligned with
    /// `col_idx`. Ascending within a row — this is what pins the
    /// canonical accumulation order.
    col_ranges: Vec<(usize, usize)>,
    /// Packed enabled values (see type docs for layout).
    values: Vec<f32>,
    /// Offset of each block row's packed values; `len = block_rows + 1`.
    row_values_ofs: Vec<usize>,
    total_blocks: usize,
}

impl BlockSparseWeights {
    /// Compiles masked dense weights `a` (`[m, k]` row-major, entries
    /// outside enabled blocks **must already be zero**) against
    /// `pattern` into block-CSR form.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != pattern.m * pattern.k` or the pattern is
    /// inconsistent.
    pub fn compile(a: &[f32], pattern: &BlockPattern) -> Self {
        pattern.validate();
        assert_eq!(
            a.len(),
            pattern.m * pattern.k,
            "BlockSparseWeights::compile: weight length mismatch"
        );
        let (brows, bcols) = (pattern.block_rows(), pattern.block_cols());
        let mut row_ptr = Vec::with_capacity(brows + 1);
        let mut col_idx = Vec::new();
        let mut col_ranges = Vec::new();
        let mut row_values_ofs = Vec::with_capacity(brows + 1);
        let mut values_len = 0usize;
        row_ptr.push(0);
        row_values_ofs.push(0);
        for bi in 0..brows {
            let rows_in = pattern.tm.min(pattern.m - bi * pattern.tm);
            let mut ks = 0usize;
            for bj in 0..bcols {
                if pattern.keep[bi * bcols + bj] {
                    let p0 = bj * pattern.tk;
                    let p1 = (p0 + pattern.tk).min(pattern.k);
                    col_idx.push(bj);
                    col_ranges.push((p0, p1));
                    ks += p1 - p0;
                }
            }
            row_ptr.push(col_idx.len());
            values_len += rows_in.div_ceil(MR) * ks * MR;
            row_values_ofs.push(values_len);
        }
        let mut bs = BlockSparseWeights {
            m: pattern.m,
            k: pattern.k,
            tm: pattern.tm,
            row_ptr,
            col_idx,
            col_ranges,
            values: vec![0.0; values_len],
            row_values_ofs,
            total_blocks: brows * bcols,
        };
        bs.refresh(a);
        bs
    }

    /// Repacks the enabled-block values from `a` without changing the
    /// block structure or reallocating — the retraining-loop fast path
    /// (weights change every step; enabled blocks do not).
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` disagrees with the compiled shape.
    pub fn refresh(&mut self, a: &[f32]) {
        assert_eq!(
            a.len(),
            self.m * self.k,
            "BlockSparseWeights::refresh: weight length mismatch"
        );
        for bi in 0..self.block_rows() {
            let i0 = bi * self.tm;
            let rows_in = self.tm.min(self.m - i0);
            let ranges = &self.col_ranges[self.row_ptr[bi]..self.row_ptr[bi + 1]];
            let ks: usize = ranges.iter().map(|&(p0, p1)| p1 - p0).sum();
            let base = self.row_values_ofs[bi];
            for s in 0..rows_in.div_ceil(MR) {
                let sub = &mut self.values[base + s * ks * MR..base + (s + 1) * ks * MR];
                let mut q = 0usize;
                for &(p0, p1) in ranges {
                    for p in p0..p1 {
                        for ir in 0..MR {
                            let r = s * MR + ir;
                            sub[q * MR + ir] = if r < rows_in {
                                a[(i0 + r) * self.k + p]
                            } else {
                                0.0 // row padding past the block row
                            };
                        }
                        q += 1;
                    }
                }
            }
        }
    }

    /// Rows of the compiled weight matrix.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Columns (inner dimension) of the compiled weight matrix.
    pub fn cols(&self) -> usize {
        self.k
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of enabled blocks (block-CSR entries).
    pub fn enabled_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Total blocks in the grid, enabled or not.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }
}

/// Block-sparse GEMM: `w (compiled [m, k]) x b [k, n] -> out [m, n]`,
/// visiting **only enabled blocks**.
///
/// The right operand is packed exactly as in [`gemm_packed_into`]; each
/// block row then streams its compacted value panels against the
/// enabled `k` sub-ranges of the packed panels. Because disabled blocks
/// of the compiled weights are exactly zero and enabled ranges are
/// visited in ascending `k` order, the output is **bitwise identical**
/// to [`gemm_into`] on the masked dense weights — the CPU mirror of the
/// accelerator's lossless block skip. Work scales with the enabled
/// fraction, which is where the pruning speedup comes from.
///
/// Parallelism mirrors the dense packed driver: each worker owns a
/// contiguous band of whole block rows and walks **panel-outer,
/// block-row-inner**, so one packed panel stays L1-resident across the
/// band and the packed image is streamed at most once per worker.
/// Per-row arithmetic is thread-count independent, so results are
/// bitwise-reproducible across `P3D_THREADS`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the compiled dimensions.
pub fn gemm_bs_into(w: &BlockSparseWeights, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(b.len(), w.k * n, "gemm_bs_into: rhs length mismatch");
    assert_eq!(out.len(), w.m * n, "gemm_bs_into: out length mismatch");
    if w.m == 0 || n == 0 {
        return;
    }
    let packed_len = panel_count(n) * w.k * NR;
    with_pack_scratch(packed_len, |packed| {
        pack_b_nn(b, w.k, n, packed);
        let brows = w.block_rows();
        let workers = max_threads().clamp(1, brows);
        let band_brows = brows.div_ceil(workers);
        parallel_chunk_map(out, band_brows * w.tm * n, |ci, band| {
            let bi0 = ci * band_brows;
            let band_rows = band.len() / n;
            for jp in 0..panel_count(n) {
                let j0 = jp * NR;
                let jw = NR.min(n - j0);
                let panel = &packed[jp * w.k * NR..(jp + 1) * w.k * NR];
                for bl in 0..band_rows.div_ceil(w.tm) {
                    let local_r0 = bl * w.tm;
                    let rows_in = w.tm.min(band_rows - local_r0);
                    block_row_panel(
                        w,
                        bi0 + bl,
                        rows_in,
                        panel,
                        j0,
                        jw,
                        n,
                        &mut band[local_r0 * n..(local_r0 + rows_in) * n],
                    );
                }
            }
        });
    });
}

/// Computes one block row of the block-sparse product against a single
/// packed panel, writing columns `j0 .. j0 + jw` of the block row's
/// `rows_in * n` output slice `o_rows`.
#[allow(clippy::too_many_arguments)]
fn block_row_panel(
    w: &BlockSparseWeights,
    bi: usize,
    rows_in: usize,
    panel: &[f32],
    j0: usize,
    jw: usize,
    n: usize,
    o_rows: &mut [f32],
) {
    let ranges = &w.col_ranges[w.row_ptr[bi]..w.row_ptr[bi + 1]];
    let ks: usize = ranges.iter().map(|&(p0, p1)| p1 - p0).sum();
    let base = w.row_values_ofs[bi];
    let mut acc = [[0.0f32; NR]; MR];
    for s in 0..rows_in.div_ceil(MR) {
        let r0 = s * MR;
        let mr = MR.min(rows_in - r0);
        let sub = &w.values[base + s * ks * MR..base + (s + 1) * ks * MR];
        if mr == MR {
            bs_tile_full(ranges, sub, panel, &mut acc);
        } else {
            bs_tile_tail(ranges, sub, panel, mr, &mut acc);
        }
        for (ir, row) in acc.iter().enumerate().take(mr) {
            let dst = (r0 + ir) * n + j0;
            o_rows[dst..dst + jw].copy_from_slice(&row[..jw]);
        }
    }
}

/// The unrolled steady-state block-sparse tile: one full `MR`-row
/// sub-panel against the enabled `k` ranges of one packed panel, with
/// the same named-register accumulators (and the same zero-skip guard
/// and ascending-`k` accumulation order) as [`microkernel_full`].
/// Dispatches to the AVX2 twin exactly like the dense kernel.
#[inline]
fn bs_tile_full(ranges: &[(usize, usize)], sub: &[f32], panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::use_avx2() {
        // SAFETY: use_avx2() is true only when runtime detection proved
        // AVX2 support.
        unsafe { avx2::bs_tile_full(ranges, sub, panel, acc) };
        return;
    }
    bs_tile_full_scalar(ranges, sub, panel, acc);
}

/// Portable body of [`bs_tile_full`].
fn bs_tile_full_scalar(
    ranges: &[(usize, usize)],
    sub: &[f32],
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    let mut q = 0usize;
    for &(p0, p1) in ranges {
        let len = p1 - p0;
        let bpart = panel[p0 * NR..p1 * NR].chunks_exact(NR);
        let apart = sub[q * MR..(q + len) * MR].chunks_exact(MR);
        for (avs, bvec) in apart.zip(bpart) {
            let a: &[f32; MR] = avs.try_into().expect("sub chunk is MR wide");
            let bv: &[f32; NR] = bvec.try_into().expect("panel chunk is NR wide");
            if a[0] != 0.0 {
                for j in 0..NR {
                    c0[j] += a[0] * bv[j];
                }
            }
            if a[1] != 0.0 {
                for j in 0..NR {
                    c1[j] += a[1] * bv[j];
                }
            }
            if a[2] != 0.0 {
                for j in 0..NR {
                    c2[j] += a[2] * bv[j];
                }
            }
            if a[3] != 0.0 {
                for j in 0..NR {
                    c3[j] += a[3] * bv[j];
                }
            }
        }
        q += len;
    }
    acc[0] = c0;
    acc[1] = c1;
    acc[2] = c2;
    acc[3] = c3;
}

/// Generic tile for the `rows_in % MR` tail sub-panel; identical
/// arithmetic and contracts, no unrolling.
fn bs_tile_tail(
    ranges: &[(usize, usize)],
    sub: &[f32],
    panel: &[f32],
    mr: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for row in acc.iter_mut() {
        *row = [0.0; NR];
    }
    let mut q = 0usize;
    for &(p0, p1) in ranges {
        for p in p0..p1 {
            let bvec = &panel[p * NR..p * NR + NR];
            let avs = &sub[q * MR..q * MR + MR];
            for (ir, &av) in avs.iter().enumerate().take(mr) {
                if av != 0.0 {
                    for (o, &bv) in acc[ir].iter_mut().zip(bvec) {
                        *o += av * bv;
                    }
                }
            }
            q += 1;
        }
    }
}

/// Explicit AVX2 twins of the steady-state tile kernels.
///
/// With `NR == 8`, one `[f32; NR]` accumulator row is exactly one
/// `__m256`, so the scalar update `c[j] += a * bv[j]` (independent
/// per-lane multiply, then per-lane add) maps 1:1 onto
/// `_mm256_add_ps(c, _mm256_mul_ps(broadcast(a), bv))` — the **same two
/// IEEE-754 roundings per lane in the same order**, which is why these
/// kernels are bitwise identical to the scalar bodies and every
/// existing bitwise gate keeps pinning them. `_mm256_fmadd_ps` is
/// deliberately **not** used: a fused multiply-add performs a single
/// rounding and would change low bits. The zero-skip guard stays a
/// scalar test per `(p, row)` outside the vector ops, preserving the
/// contract that a zero left entry contributes no arithmetic (the
/// NaN-poison tests in `gemm_properties` cover this on both paths).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{MR, NR};
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    // One accumulator row == one 256-bit vector; the kernels below
    // assume it.
    const _: () = assert!(NR == 8);
    const _: () = assert!(MR == 4);

    /// AVX2 body of [`super::microkernel_full`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers gate on
    /// [`crate::simd::use_avx2`]). Slice invariants are the same as the
    /// scalar kernel: `r0..r3` all have length `k == panel.len() / NR`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn microkernel_full(
        r0: &[f32],
        r1: &[f32],
        r2: &[f32],
        r3: &[f32],
        panel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let k = r0.len();
        debug_assert!(r1.len() == k && r2.len() == k && r3.len() == k);
        debug_assert!(panel.len() == k * NR);
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        let pb = panel.as_ptr();
        for p in 0..k {
            let bv = _mm256_loadu_ps(pb.add(p * NR));
            let a0 = *r0.get_unchecked(p);
            let a1 = *r1.get_unchecked(p);
            let a2 = *r2.get_unchecked(p);
            let a3 = *r3.get_unchecked(p);
            if a0 != 0.0 {
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(a0), bv));
            }
            if a1 != 0.0 {
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(a1), bv));
            }
            if a2 != 0.0 {
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(a2), bv));
            }
            if a3 != 0.0 {
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(a3), bv));
            }
        }
        store_acc(acc, c0, c1, c2, c3);
    }

    /// AVX2 body of [`super::bs_tile_full`]: same vector update, walking
    /// only the enabled `k` ranges with the packed `MR`-wide sub-panel.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2; slice invariants are the scalar
    /// kernel's (`sub` holds `MR` values per enabled `p`, `panel` holds
    /// `NR` per `p`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn bs_tile_full(
        ranges: &[(usize, usize)],
        sub: &[f32],
        panel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        let pb = panel.as_ptr();
        let sb = sub.as_ptr();
        let mut q = 0usize;
        for &(p0, p1) in ranges {
            for p in p0..p1 {
                debug_assert!((q + 1) * MR <= sub.len() && (p + 1) * NR <= panel.len());
                let bv = _mm256_loadu_ps(pb.add(p * NR));
                let av = sb.add(q * MR);
                let a0 = *av;
                let a1 = *av.add(1);
                let a2 = *av.add(2);
                let a3 = *av.add(3);
                if a0 != 0.0 {
                    c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(a0), bv));
                }
                if a1 != 0.0 {
                    c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(a1), bv));
                }
                if a2 != 0.0 {
                    c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(a2), bv));
                }
                if a3 != 0.0 {
                    c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(a3), bv));
                }
                q += 1;
            }
        }
        store_acc(acc, c0, c1, c2, c3);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn store_acc(acc: &mut [[f32; NR]; MR], c0: __m256, c1: __m256, c2: __m256, c3: __m256) {
        _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
        _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
        _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
        _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_thread_override;
    use crate::TensorRng;

    fn dense_masked(a: &[f32], pat: &BlockPattern) -> Vec<f32> {
        let bcols = pat.block_cols();
        let mut out = a.to_vec();
        for (i, v) in out.iter_mut().enumerate() {
            let (r, c) = (i / pat.k, i % pat.k);
            if !pat.keep[(r / pat.tm) * bcols + c / pat.tk] {
                *v = 0.0;
            }
        }
        out
    }

    #[test]
    fn packed_matches_naive_bitwise() {
        let mut rng = TensorRng::seed(11);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 1, 16),
            (5, 9, 17),
            (8, 32, 33),
            (16, 27, 40),
            (2, 13, 100),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut naive = vec![0.0f32; m * n];
            let mut packed = vec![1.0f32; m * n]; // poisoned: must be overwritten
            gemm_naive_into(&a, m, k, &b, n, &mut naive);
            gemm_packed_into(&a, m, k, &b, n, &mut packed);
            assert_eq!(naive, packed, "shape ({m},{k},{n})");

            let bt: Vec<f32> = (0..n * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut naive_nt = vec![0.0f32; m * n];
            let mut packed_nt = vec![1.0f32; m * n];
            gemm_naive_nt_into(&a, m, k, &bt, n, &mut naive_nt);
            gemm_packed_nt_into(&a, m, k, &bt, n, &mut packed_nt);
            assert_eq!(naive_nt, packed_nt, "nt shape ({m},{k},{n})");
        }
    }

    #[test]
    fn packed_bitwise_stable_across_threads() {
        let mut rng = TensorRng::seed(3);
        let (m, k, n) = (13, 21, 37);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut reference: Option<Vec<f32>> = None;
        for threads in [1, 2, 5] {
            set_thread_override(Some(threads));
            let mut out = vec![0.0f32; m * n];
            gemm_packed_into(&a, m, k, &b, n, &mut out);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads={threads}"),
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn packed_zero_skip_contract() {
        // A zero left entry must not touch the right operand: poison the
        // corresponding B rows with NaN.
        let (m, k, n) = (5, 3, 20);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            a[i * k + 1] = (i + 1) as f32; // only p = 1 is non-zero
        }
        let mut b = vec![f32::NAN; k * n];
        for j in 0..n {
            b[n + j] = (j % 7) as f32; // row p = 1 is finite
        }
        let mut out = vec![0.0f32; m * n];
        gemm_packed_into(&a, m, k, &b, n, &mut out);
        assert!(out.iter().all(|v| v.is_finite()), "NaN leaked past a zero");
        // Right-operand zeros are NOT skipped: NaN on the left propagates.
        a[1] = f32::NAN;
        gemm_packed_into(&a, m, k, &b, n, &mut out);
        assert!(out[..n].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn block_sparse_matches_dense_bitwise() {
        let mut rng = TensorRng::seed(29);
        for &(m, k, tm, tk, n) in &[
            (16usize, 24usize, 4usize, 6usize, 33usize),
            (10, 20, 3, 7, 16), // ragged edge blocks
            (4, 8, 4, 8, 5),    // single block
            (7, 5, 2, 2, 1),
        ] {
            let pat = BlockPattern {
                m,
                k,
                tm,
                tk,
                keep: (0..m.div_ceil(tm) * k.div_ceil(tk))
                    .map(|i| i % 3 != 0)
                    .collect(),
            };
            let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let masked = dense_masked(&a, &pat);
            let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let bs = BlockSparseWeights::compile(&masked, &pat);
            let mut dense = vec![0.0f32; m * n];
            let mut sparse = vec![1.0f32; m * n];
            gemm_into(&masked, m, k, &b, n, &mut dense);
            gemm_bs_into(&bs, &b, n, &mut sparse);
            assert_eq!(dense, sparse, "shape ({m},{k},{tm},{tk},{n})");
        }
    }

    #[test]
    fn block_sparse_refresh_tracks_weight_updates() {
        let mut rng = TensorRng::seed(7);
        let pat = BlockPattern {
            m: 8,
            k: 12,
            tm: 4,
            tk: 4,
            keep: vec![true, false, true, false, true, true],
        };
        let a: Vec<f32> = (0..96).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let masked = dense_masked(&a, &pat);
        let mut bs = BlockSparseWeights::compile(&masked, &pat);
        assert_eq!(bs.enabled_blocks(), 4);
        assert_eq!(bs.total_blocks(), 6);
        // Update weights (as a retraining step would), refresh, recheck.
        let a2: Vec<f32> = (0..96).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let masked2 = dense_masked(&a2, &pat);
        bs.refresh(&masked2);
        let b: Vec<f32> = (0..12 * 9).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut dense = vec![0.0f32; 8 * 9];
        let mut sparse = vec![0.0f32; 8 * 9];
        gemm_into(&masked2, 8, 12, &b, 9, &mut dense);
        gemm_bs_into(&bs, &b, 9, &mut sparse);
        assert_eq!(dense, sparse);
    }

    #[test]
    fn block_sparse_all_disabled_is_zero() {
        let pat = BlockPattern {
            m: 6,
            k: 6,
            tm: 3,
            tk: 3,
            keep: vec![false; 4],
        };
        let bs = BlockSparseWeights::compile(&[0.0; 36], &pat);
        let b = vec![f32::NAN; 6 * 4]; // never touched: all blocks skipped
        let mut out = vec![1.0f32; 6 * 4];
        gemm_bs_into(&bs, &b, 4, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
