//! Runtime SIMD capability detection and kernel-path selection.
//!
//! Every vectorized kernel in the workspace — the AVX2 f32 GEMM
//! microkernel in [`crate::gemm`] and the AVX2 integer Q7.8 convolution
//! kernel in the FPGA functional simulator — dispatches through this
//! module: the CPU is probed **once** (cached), kernels ask for the
//! [`active`] level per call, and tests can force the scalar fallback
//! with [`force_scalar`] to prove the two paths bitwise identical on
//! the same machine.
//!
//! # Why the vector paths can be bitwise identical at all
//!
//! * The integer kernels accumulate exact `i64` sums — integer addition
//!   is associative, so any lane order gives the same bits.
//! * The f32 kernels use *separate* vector multiply and add
//!   (`_mm256_mul_ps` + `_mm256_add_ps`), never `_mm256_fmadd_ps`: a
//!   fused multiply-add skips the intermediate rounding and would break
//!   the canonical-accumulation-order contract every bitwise gate in
//!   `gemm_properties` pins. FMA presence is still *detected* and
//!   reported for provenance, but deliberately not used for arithmetic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The instruction-set level a kernel dispatches at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar (or autovectorized baseline) code path.
    Scalar,
    /// Explicit 256-bit AVX2 intrinsics.
    Avx2,
}

impl SimdLevel {
    /// Short lowercase name for reports (`"scalar"` / `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Process-wide request to ignore detected SIMD support and run the
/// scalar fallbacks. Used by the AVX2-vs-scalar bitwise gates.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Cached result of the one-time CPU probe.
static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
/// Cached comma-separated feature list for provenance reports.
static FEATURES: OnceLock<String> = OnceLock::new();

/// The SIMD level this CPU supports, probed once and cached.
pub fn detected() -> SimdLevel {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// The SIMD level kernels should dispatch at **right now**: the
/// detected level, unless a test forced the scalar fallback.
pub fn active() -> SimdLevel {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        SimdLevel::Scalar
    } else {
        detected()
    }
}

/// Forces (`true`) or releases (`false`) the scalar fallback for every
/// SIMD-dispatched kernel in the process.
///
/// This is a test hook: the AVX2-vs-scalar bitwise gates run each
/// kernel once per setting and compare bits. It is process-wide, so
/// tests that flip it must serialise on a lock and restore `false`.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// `true` when the AVX2 kernel paths should run (detected and not
/// overridden). The hot-loop dispatch predicate.
#[inline]
pub fn use_avx2() -> bool {
    active() == SimdLevel::Avx2
}

/// Comma-separated list of the detected vector features relevant to
/// this workspace's kernels (e.g. `"sse4.2,avx2,fma"`), for the
/// provenance fields of benchmark and CLI reports. Empty when none of
/// the probed features are present (or on non-x86 hosts).
pub fn cpu_features() -> &'static str {
    FEATURES.get_or_init(|| {
        #[allow(unused_mut)]
        let mut feats: Vec<&str> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.2") {
                feats.push("sse4.2");
            }
            if std::arch::is_x86_feature_detected!("avx") {
                feats.push("avx");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                feats.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("fma") {
                feats.push("fma");
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                feats.push("avx512f");
            }
        }
        feats.join(",")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_downgrades_active_level() {
        // Whatever the host supports, forcing scalar must win; releasing
        // must restore the detected level.
        force_scalar(true);
        assert_eq!(active(), SimdLevel::Scalar);
        force_scalar(false);
        assert_eq!(active(), detected());
    }

    #[test]
    fn detection_is_stable_and_consistent() {
        assert_eq!(detected(), detected());
        if detected() == SimdLevel::Avx2 {
            assert!(cpu_features().contains("avx2"));
        }
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
    }
}
