//! 16-bit fixed-point arithmetic matching the paper's FPGA datapath.
//!
//! The DAC 2020 design uses 16-bit fixed point with **1 sign bit,
//! 7 integer bits and 8 fractional bits** (here called *Q7.8*). Products
//! are formed at full precision and accumulated in a wide register — the
//! behaviour of a Xilinx DSP48 slice with its 48-bit accumulator — and only
//! the final sum is rounded and saturated back to Q7.8. [`MacAccumulator`]
//! models exactly that.

use crate::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Number of fractional bits in the Q7.8 format.
pub const FRAC_BITS: u32 = 8;
/// Scale factor `2^FRAC_BITS`.
pub const SCALE: f32 = (1 << FRAC_BITS) as f32;

/// A 16-bit fixed-point number: 1 sign bit, 7 integer bits, 8 fractional
/// bits (Q7.8). Representable range is `[-128.0, 127.99609375]` with a
/// resolution of `1/256`.
///
/// All arithmetic saturates instead of wrapping, matching hardware
/// behaviour with saturation logic enabled.
///
/// # Example
///
/// ```
/// use p3d_tensor::Fixed16;
///
/// let a = Fixed16::from_f32(1.5);
/// let b = Fixed16::from_f32(-0.25);
/// assert_eq!((a * b).to_f32(), -0.375);
/// assert_eq!(Fixed16::from_f32(500.0), Fixed16::MAX); // saturates
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Fixed16(i16);

/// Reinterprets a slice of [`Fixed16`] as its raw `i16` bits.
///
/// Sound because `Fixed16` is `#[repr(transparent)]` over `i16`. This is
/// the zero-copy view the SIMD kernels load vectors from.
pub fn bits_of(slice: &[Fixed16]) -> &[i16] {
    // SAFETY: Fixed16 is repr(transparent) over i16, so the layouts and
    // validity invariants are identical (every bit pattern is valid).
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const i16, slice.len()) }
}

/// Round-to-nearest signed integer division with the same tie rule as
/// [`MacAccumulator::finish`] (add half the divisor, then floor).
///
/// `finish` rounds a Q*.16 sum with `(acc + 2^(FRAC_BITS-1)) >> FRAC_BITS`
/// — add half an output ULP, then floor (arithmetic shift). This helper
/// generalises exactly that rule to an arbitrary positive divisor:
/// `floor((n + d/2) / d)`, computed as `(2n + d).div_euclid(2d)` so odd
/// divisors keep the exact half offset without a fractional intermediate
/// (callers pass Q-format sums far below `i64::MAX / 2`, so the doubling
/// cannot overflow).
/// For `d = 2^k` it is bit-for-bit `(n + 2^(k-1)) >> k`. Ties round
/// toward +infinity for both signs, matching `finish`/`saturating_mul`.
///
/// # Panics
///
/// Panics in debug builds if `d <= 0` (division by the resulting zero or
/// negative doubled divisor).
pub fn div_round_nearest(n: i64, d: i64) -> i64 {
    debug_assert!(d > 0, "div_round_nearest requires a positive divisor");
    (2 * n + d).div_euclid(2 * d)
}

impl Fixed16 {
    /// Zero.
    pub const ZERO: Fixed16 = Fixed16(0);
    /// One.
    pub const ONE: Fixed16 = Fixed16(1 << FRAC_BITS);
    /// Largest representable value, `127 + 255/256`.
    pub const MAX: Fixed16 = Fixed16(i16::MAX);
    /// Smallest representable value, `-128`.
    pub const MIN: Fixed16 = Fixed16(i16::MIN);

    /// Builds a value from its raw two's-complement bits.
    pub const fn from_bits(bits: i16) -> Self {
        Fixed16(bits)
    }

    /// The raw two's-complement bits.
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest and saturation.
    ///
    /// Non-finite inputs saturate (NaN maps to zero).
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            return Fixed16::ZERO;
        }
        let scaled = (x * SCALE).round();
        if scaled >= i16::MAX as f32 {
            Fixed16::MAX
        } else if scaled <= i16::MIN as f32 {
            Fixed16::MIN
        } else {
            Fixed16(scaled as i16)
        }
    }

    /// Converts to `f32` exactly (every Q7.8 value is representable).
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / SCALE
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fixed16) -> Fixed16 {
        Fixed16(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Fixed16) -> Fixed16 {
        Fixed16(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest-even-free truncation
    /// toward negative infinity after adding half an ULP (hardware-style
    /// rounding: add `1 << (FRAC_BITS-1)` then arithmetic shift).
    pub fn saturating_mul(self, rhs: Fixed16) -> Fixed16 {
        let wide = self.0 as i32 * rhs.0 as i32; // Q14.16 in 32 bits
        let rounded = (wide + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
        Fixed16(clamp_i32(rounded))
    }

    /// ReLU: `max(self, 0)`.
    pub fn relu(self) -> Fixed16 {
        if self.0 < 0 {
            Fixed16::ZERO
        } else {
            self
        }
    }

    /// The maximum of two values.
    pub fn max(self, other: Fixed16) -> Fixed16 {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

fn clamp_i32(x: i32) -> i16 {
    x.clamp(i16::MIN as i32, i16::MAX as i32) as i16
}

impl Add for Fixed16 {
    type Output = Fixed16;
    fn add(self, rhs: Fixed16) -> Fixed16 {
        self.saturating_add(rhs)
    }
}

impl Sub for Fixed16 {
    type Output = Fixed16;
    fn sub(self, rhs: Fixed16) -> Fixed16 {
        self.saturating_sub(rhs)
    }
}

impl Mul for Fixed16 {
    type Output = Fixed16;
    fn mul(self, rhs: Fixed16) -> Fixed16 {
        self.saturating_mul(rhs)
    }
}

impl Neg for Fixed16 {
    type Output = Fixed16;
    fn neg(self) -> Fixed16 {
        Fixed16(self.0.saturating_neg())
    }
}

impl fmt::Debug for Fixed16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed16({})", self.to_f32())
    }
}

impl fmt::Display for Fixed16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<Fixed16> for f32 {
    fn from(x: Fixed16) -> f32 {
        x.to_f32()
    }
}

/// A wide multiply-accumulate register modelling a DSP slice.
///
/// Products of two Q7.8 operands are Q14.16 values held exactly in an
/// `i64` accumulator (a DSP48 has a 48-bit accumulator; `i64` is a safe
/// superset). Only [`MacAccumulator::finish`] rounds and saturates back to
/// Q7.8, so intermediate sums never lose precision or overflow — the same
/// behaviour as the paper's adder-tree datapath.
///
/// # Example
///
/// ```
/// use p3d_tensor::fixed::MacAccumulator;
/// use p3d_tensor::Fixed16;
///
/// let mut acc = MacAccumulator::new();
/// for _ in 0..4 {
///     acc.mac(Fixed16::from_f32(0.5), Fixed16::from_f32(0.5));
/// }
/// assert_eq!(acc.finish().to_f32(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MacAccumulator {
    acc: i64, // Q*.16
}

impl MacAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        MacAccumulator { acc: 0 }
    }

    /// Starts from an existing Q7.8 partial sum (e.g. the output-buffer
    /// value being accumulated across input-channel tiles).
    pub fn from_fixed(x: Fixed16) -> Self {
        MacAccumulator {
            acc: (x.to_bits() as i64) << FRAC_BITS,
        }
    }

    /// Accumulates `a * b` at full precision.
    pub fn mac(&mut self, a: Fixed16, b: Fixed16) {
        self.acc += a.to_bits() as i64 * b.to_bits() as i64;
    }

    /// Adds another accumulator (adder-tree combination).
    pub fn add(&mut self, other: MacAccumulator) {
        self.acc += other.acc;
    }

    /// Rounds and saturates the wide sum back to Q7.8.
    pub fn finish(self) -> Fixed16 {
        let rounded = (self.acc + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
        Fixed16::from_bits(rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }

    /// The raw Q*.16 accumulator value.
    pub fn raw(self) -> i64 {
        self.acc
    }

    /// `true` when [`MacAccumulator::finish`] will clip at a Q7.8 rail —
    /// i.e. the exact wide sum is outside the representable range and
    /// the quantised output loses information. This is the per-word
    /// saturation-anomaly signal the simulator's `ConvStats` aggregates.
    pub fn saturates(self) -> bool {
        let rounded = (self.acc + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
        rounded > i16::MAX as i64 || rounded < i16::MIN as i64
    }
}

/// A dense tensor of [`Fixed16`] values: the on-chip representation used
/// by the FPGA functional simulator.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedTensor {
    shape: Shape,
    data: Vec<Fixed16>,
}

impl FixedTensor {
    /// A zero-filled fixed tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        FixedTensor {
            data: vec![Fixed16::ZERO; shape.len()],
            shape,
        }
    }

    /// Quantises an `f32` tensor to Q7.8 (round-to-nearest, saturating).
    pub fn quantize(t: &Tensor) -> Self {
        FixedTensor {
            shape: t.shape(),
            data: t.data().iter().map(|&x| Fixed16::from_f32(x)).collect(),
        }
    }

    /// Dequantises back to `f32`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|&x| x.to_f32()).collect(),
        )
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (zero-sized shapes are rejected at construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data.
    pub fn data(&self) -> &[Fixed16] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [Fixed16] {
        &mut self.data
    }

    /// Value at a multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> Fixed16 {
        self.data[self.shape.offset(index)]
    }

    /// Sets a value at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: Fixed16) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The worst-case absolute quantisation error this format introduces
    /// on a tensor whose values lie within range: half an ULP.
    pub fn half_ulp() -> f32 {
        0.5 / SCALE
    }
}

impl fmt::Debug for FixedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FixedTensor({}, {} elems)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip_exact_values() {
        for raw in [-32768i16, -256, -1, 0, 1, 255, 256, 32767] {
            let x = Fixed16::from_bits(raw);
            assert_eq!(Fixed16::from_f32(x.to_f32()), x);
        }
    }

    #[test]
    fn conversion_saturates() {
        assert_eq!(Fixed16::from_f32(1e6), Fixed16::MAX);
        assert_eq!(Fixed16::from_f32(-1e6), Fixed16::MIN);
        assert_eq!(Fixed16::from_f32(f32::INFINITY), Fixed16::MAX);
        assert_eq!(Fixed16::from_f32(f32::NEG_INFINITY), Fixed16::MIN);
        assert_eq!(Fixed16::from_f32(f32::NAN), Fixed16::ZERO);
    }

    #[test]
    fn rounding_to_nearest() {
        // 1/512 is half an ULP below zero+ULP; rounds to 1/256.
        let x = Fixed16::from_f32(1.0 / 512.0);
        assert_eq!(x.to_bits(), 1);
        let y = Fixed16::from_f32(0.9 / 512.0);
        assert_eq!(y.to_bits(), 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Fixed16::from_f32(2.0);
        let b = Fixed16::from_f32(3.5);
        assert_eq!((a + b).to_f32(), 5.5);
        assert_eq!((a - b).to_f32(), -1.5);
        assert_eq!((a * b).to_f32(), 7.0);
        assert_eq!((-a).to_f32(), -2.0);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Fixed16::MAX + Fixed16::ONE, Fixed16::MAX);
        assert_eq!(Fixed16::MIN - Fixed16::ONE, Fixed16::MIN);
        assert_eq!(Fixed16::from_f32(127.0) * Fixed16::from_f32(4.0), Fixed16::MAX);
    }

    #[test]
    fn relu_and_max() {
        assert_eq!(Fixed16::from_f32(-1.0).relu(), Fixed16::ZERO);
        assert_eq!(Fixed16::from_f32(1.0).relu(), Fixed16::ONE);
        assert_eq!(Fixed16::ONE.max(Fixed16::ZERO), Fixed16::ONE);
    }

    #[test]
    fn mac_accumulator_exact_intermediate() {
        // Sum of 1000 products of 0.125 * 0.125 = 15.625; each product is
        // below one ULP/2 * 8 but the accumulator holds it exactly.
        let mut acc = MacAccumulator::new();
        let x = Fixed16::from_f32(0.125);
        for _ in 0..1000 {
            acc.mac(x, x);
        }
        assert_eq!(acc.finish().to_f32(), 15.625);
    }

    #[test]
    fn mac_from_partial_sum() {
        let mut acc = MacAccumulator::from_fixed(Fixed16::from_f32(2.0));
        acc.mac(Fixed16::ONE, Fixed16::ONE);
        assert_eq!(acc.finish().to_f32(), 3.0);
    }

    #[test]
    fn mac_adder_tree_combination() {
        let mut left = MacAccumulator::new();
        let mut right = MacAccumulator::new();
        left.mac(Fixed16::from_f32(1.5), Fixed16::from_f32(2.0));
        right.mac(Fixed16::from_f32(-0.5), Fixed16::from_f32(2.0));
        left.add(right);
        assert_eq!(left.finish().to_f32(), 2.0);
    }

    #[test]
    fn fixed_tensor_quantize_roundtrip() {
        let t = Tensor::from_vec([4], vec![0.5, -1.25, 127.996, -128.0]);
        let q = FixedTensor::quantize(&t);
        let d = q.dequantize();
        assert!(d.allclose(&t, FixedTensor::half_ulp() + 1e-6));
    }

    #[test]
    fn div_round_nearest_matches_finish_for_power_of_two() {
        // For d = 2^FRAC_BITS the helper must reproduce finish()'s
        // add-half-then-shift rounding exactly, including negatives.
        for acc in [-100_000i64, -385, -384, -383, -129, -128, -127, -1, 0, 1, 127, 128, 129, 383, 384, 100_000] {
            let shifted = (acc + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
            assert_eq!(div_round_nearest(acc, 1 << FRAC_BITS), shifted, "acc={acc}");
        }
    }

    #[test]
    fn div_round_nearest_arbitrary_divisors() {
        // floor((n + d/2) / d) against an exact rational reference.
        for d in 1i64..=9 {
            for n in -50i64..=50 {
                let expect = (2 * n + d).div_euclid(2 * d);
                assert_eq!(div_round_nearest(n, d), expect);
                // Result is always the nearest integer (tie -> larger).
                let r = div_round_nearest(n, d);
                let err2 = (2 * (n - r * d)).abs(); // |remainder| * 2
                assert!(err2 <= d, "n={n} d={d} r={r}");
            }
        }
        // Spot checks: truncation would give 0 for -3/4; nearest gives -1.
        assert_eq!(div_round_nearest(-3, 4), -1);
        assert_eq!(div_round_nearest(3, 4), 1);
        assert_eq!(div_round_nearest(-2, 4), 0); // tie rounds toward +inf
        assert_eq!(div_round_nearest(2, 4), 1);
    }

    #[test]
    fn bits_view_is_transparent() {
        let v = [Fixed16::from_bits(-1), Fixed16::ZERO, Fixed16::MAX];
        assert_eq!(bits_of(&v), &[-1i16, 0, i16::MAX]);
    }

    #[test]
    fn fixed_tensor_get_set() {
        let mut q = FixedTensor::zeros([2, 2]);
        q.set(&[1, 1], Fixed16::ONE);
        assert_eq!(q.get(&[1, 1]), Fixed16::ONE);
        assert_eq!(q.get(&[0, 0]), Fixed16::ZERO);
    }
}
