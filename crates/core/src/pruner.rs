//! The end-to-end ADMM pruning pipeline (Algorithm 1).
//!
//! ```text
//! Initialize rho, Z = Pi(W), V = 0
//! for each rho in the multi-rho schedule:
//!     for epoch in 1..=epoch_rho:
//!         train W with loss + rho/2 ||W - Z + V||^2   (Eq. 11, via a grad hook)
//!         every epoch_admm epochs: Z <- Pi(W + V); V <- V + W - Z
//! hard prune: W <- Pi(W), install 0/1 masks
//! masked retraining with warmup + cosine learning rate
//! ```

use crate::admm::{AdmmConfig, AdmmLayerState};
use crate::blocks::{BlockGrid, BlockShape};
use crate::mask_export::{LayerBlockMask, PrunedModel};
use crate::projection::select_blocks;
use p3d_nn::{Dataset, EpochStats, Layer, LrSchedule, Trainer};
use p3d_models::NetworkSpec;
use p3d_tensor::Tensor;
use std::collections::BTreeMap;
use std::io;

/// One layer to prune: the *spec* layer name (without `.weight`) and its
/// pruning ratio `eta`.
#[derive(Clone, Debug, PartialEq)]
pub struct PruneTarget {
    /// Spec layer name, e.g. `"conv2_1a.spatial"`.
    pub layer: String,
    /// Fraction of blocks to prune, in `[0, 1)`.
    pub eta: f64,
}

/// Builds prune targets for whole stages, as the paper does: "`eta_i` is
/// 90% for the second residual block and 80% for the third".
pub fn targets_for_stages(spec: &NetworkSpec, stage_etas: &[(&str, f64)]) -> Vec<PruneTarget> {
    let insts = spec.conv_instances().expect("spec must shape-check");
    let mut out = Vec::new();
    for inst in insts {
        if let Some((_, eta)) = stage_etas.iter().find(|(s, _)| *s == inst.spec.stage) {
            out.push(PruneTarget {
                layer: inst.spec.name.clone(),
                eta: *eta,
            });
        }
    }
    out
}

/// Progress of one ADMM round.
#[derive(Clone, Debug)]
pub struct RoundLog {
    /// The penalty parameter of the round.
    pub rho: f32,
    /// Task loss after each epoch.
    pub losses: Vec<f32>,
    /// Worst per-layer relative primal residual at the end of the round.
    pub max_primal_residual: f32,
}

/// Full log of an ADMM pruning run.
#[derive(Clone, Debug, Default)]
pub struct PruneLog {
    /// One entry per rho round.
    pub rounds: Vec<RoundLog>,
    /// Accuracy after ADMM training, before hard pruning.
    pub accuracy_after_admm: Option<f32>,
    /// Accuracy right after hard pruning (before retraining).
    pub accuracy_after_hard_prune: Option<f32>,
    /// Accuracy after masked retraining.
    pub accuracy_after_retrain: Option<f32>,
}

/// Position within the ADMM double loop of Algorithm 1, counted in
/// *completed* work: `round` is the 0-based index into the rho schedule
/// and `epoch` the number of finished epochs inside that round. The
/// default (`round = 0, epoch = 0`) means "nothing done yet".
///
/// A checkpoint taken at progress `p` resumes at epoch `p.epoch + 1` of
/// round `p.round`; when `p.epoch` equals `epochs_per_round` the resumed
/// run rolls over into the next round (applying the dual rescale exactly
/// as the uninterrupted run would have).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmmProgress {
    /// 0-based index into the rho schedule.
    pub round: usize,
    /// Completed epochs within that round (0 = round not started).
    pub epoch: usize,
}

impl AdmmProgress {
    /// The beginning of the schedule (nothing completed).
    pub fn start() -> Self {
        AdmmProgress::default()
    }
}

/// Everything a checkpointing callback needs after one ADMM epoch:
/// the position just completed, the epoch statistics, and mutable access
/// to the network and trainer (for state capture). Returned `false`
/// from the callback stops the run after this epoch — the mechanism the
/// resume tests use to simulate a crash at an arbitrary point.
pub struct AdmmTick<'a> {
    /// The position *just completed* (1-based epoch within the round).
    pub progress: AdmmProgress,
    /// The penalty parameter of the current round.
    pub rho: f32,
    /// Statistics of the epoch just finished.
    pub stats: EpochStats,
    /// The network being pruned.
    pub network: &'a mut dyn Layer,
    /// The trainer driving the W-step.
    pub trainer: &'a mut Trainer,
    /// The pruner (read-only; its Z/V state is current as of this tick).
    pub pruner: &'a AdmmPruner,
}

/// The per-epoch callback snapshot of masked retraining; mirrors
/// [`AdmmTick`] for the retraining phase.
pub struct RetrainTick<'a> {
    /// The 0-based epoch just completed.
    pub epoch: usize,
    /// Statistics of the epoch just finished.
    pub stats: EpochStats,
    /// The network being retrained.
    pub network: &'a mut dyn Layer,
    /// The trainer.
    pub trainer: &'a mut Trainer,
}

/// The ADMM blockwise pruner.
pub struct AdmmPruner {
    config: AdmmConfig,
    block_shape: BlockShape,
    states: BTreeMap<String, AdmmLayerState>,
}

fn param_name(layer: &str) -> String {
    format!("{layer}.weight")
}

fn collect_weights(network: &mut dyn Layer, layers: &[String]) -> BTreeMap<String, Tensor> {
    let wanted: Vec<String> = layers.iter().map(|l| param_name(l)).collect();
    let mut out = BTreeMap::new();
    network.visit_params(&mut |p| {
        if let Some(pos) = wanted.iter().position(|w| w == &p.name) {
            out.insert(layers[pos].clone(), p.value.clone());
        }
    });
    out
}

impl AdmmPruner {
    /// Initialises ADMM state from the network's current weights.
    ///
    /// # Panics
    ///
    /// Panics if a target layer's weight parameter is not found in the
    /// network, or the configuration is invalid.
    pub fn new(
        network: &mut dyn Layer,
        block_shape: BlockShape,
        targets: &[PruneTarget],
        config: AdmmConfig,
    ) -> Self {
        config.validate();
        assert!(!targets.is_empty(), "no prune targets given");
        let layers: Vec<String> = targets.iter().map(|t| t.layer.clone()).collect();
        let weights = collect_weights(network, &layers);
        let mut states = BTreeMap::new();
        for t in targets {
            let w = weights.get(&t.layer).unwrap_or_else(|| {
                panic!("prune target {} not found in network", t.layer)
            });
            assert!((0.0..1.0).contains(&t.eta), "eta out of range for {}", t.layer);
            let grid = BlockGrid::for_weight(w, block_shape);
            states.insert(
                t.layer.clone(),
                AdmmLayerState::init(w, grid, t.eta, config.keep_rule),
            );
        }
        AdmmPruner {
            config,
            block_shape,
            states,
        }
    }

    /// The block shape used for pruning.
    pub fn block_shape(&self) -> BlockShape {
        self.block_shape
    }

    /// Immutable access to per-layer ADMM state.
    pub fn states(&self) -> &BTreeMap<String, AdmmLayerState> {
        &self.states
    }

    /// Runs the ADMM training phase (the double loop of Algorithm 1).
    pub fn admm_train(
        &mut self,
        network: &mut dyn Layer,
        trainer: &mut Trainer,
        data: &dyn Dataset,
    ) -> PruneLog {
        self.admm_train_from(network, trainer, data, AdmmProgress::start(), &mut |_| true)
    }

    /// Runs (or resumes) the ADMM training phase from `start`, invoking
    /// `on_tick` after every completed epoch (after the epoch's optional
    /// Z/V update, i.e. at a consistent checkpointable state).
    ///
    /// Semantics chosen for bitwise-exact resume:
    ///
    /// * completed rounds (`ri < start.round`) are skipped entirely;
    /// * a mid-round start resumes at `start.epoch + 1` **without**
    ///   re-applying the dual rescale (the restored `V` already has it);
    /// * a round entered fresh (epoch 0) applies the rescale from the
    ///   previous round's rho, exactly as the uninterrupted run does;
    /// * `start.epoch == epochs_per_round` rolls over to the next round.
    ///
    /// When `on_tick` returns `false` the run stops after the current
    /// epoch; the partial round is still pushed onto the returned log.
    /// A resumed run's log covers only the epochs it executed itself.
    pub fn admm_train_from(
        &mut self,
        network: &mut dyn Layer,
        trainer: &mut Trainer,
        data: &dyn Dataset,
        start: AdmmProgress,
        on_tick: &mut dyn FnMut(AdmmTick<'_>) -> bool,
    ) -> PruneLog {
        let mut log = PruneLog::default();
        let rho_schedule = self.config.rho_schedule.clone();
        let epochs_per_round = self.config.epochs_per_round;
        let mut start = start;
        if start.epoch >= epochs_per_round {
            // The checkpoint closed out its round; continue with the next.
            start.round += 1;
            start.epoch = 0;
        }
        for (ri, &rho) in rho_schedule.iter().enumerate() {
            if ri < start.round {
                continue;
            }
            let first_epoch = if ri == start.round { start.epoch + 1 } else { 1 };
            if ri > 0 && first_epoch == 1 {
                // "Expand rho": preserve the unscaled dual across the
                // penalty change (see AdmmLayerState::rescale_dual).
                // Skipped on a mid-round resume — the restored dual was
                // saved after this rescale already happened.
                let prev = rho_schedule[ri - 1];
                for st in self.states.values_mut() {
                    st.rescale_dual(prev, rho);
                }
            }
            let mut losses = Vec::new();
            for epoch in first_epoch..=epochs_per_round {
                let states = &self.states;
                let mut hook = |p: &mut p3d_nn::Param| {
                    // Param names are "<layer>.weight"; state keys are "<layer>".
                    if let Some(layer) = p.name.strip_suffix(".weight") {
                        if let Some(st) = states.get(layer) {
                            let g = st.penalty_grad(&p.value, rho);
                            p.grad.axpy(1.0, &g);
                        }
                    }
                };
                let stats = trainer.train_epoch(&mut *network, data, Some(&mut hook));
                losses.push(stats.loss);
                if epoch % self.config.epochs_per_admm_update == 0 {
                    self.update_duals(&mut *network);
                }
                let keep_going = on_tick(AdmmTick {
                    progress: AdmmProgress { round: ri, epoch },
                    rho,
                    stats,
                    network: &mut *network,
                    trainer: &mut *trainer,
                    pruner: self,
                });
                if !keep_going {
                    let residual = self.max_primal_residual(&mut *network);
                    log.rounds.push(RoundLog {
                        rho,
                        losses,
                        max_primal_residual: residual,
                    });
                    return log;
                }
            }
            let residual = self.max_primal_residual(&mut *network);
            log.rounds.push(RoundLog {
                rho,
                losses,
                max_primal_residual: residual,
            });
        }
        log
    }

    /// Exports the per-layer ADMM state (`Z`, `V`, grids, projections)
    /// into `out` under `admm.{layer}.*` keys for inclusion in a
    /// training-state checkpoint.
    pub fn export_state(&self, out: &mut BTreeMap<String, Tensor>) {
        for (layer, st) in &self.states {
            st.to_tensors(&format!("admm.{layer}"), out);
        }
    }

    /// Imports state exported by [`AdmmPruner::export_state`], replacing
    /// the freshly-initialised per-layer state, and returns the number of
    /// layers restored.
    ///
    /// # Errors
    ///
    /// `InvalidData` when any targeted layer's records are missing or
    /// malformed, or when the stored grid/eta disagree with this
    /// pruner's configuration (resuming with a different block shape or
    /// pruning ratio would silently change the trajectory).
    pub fn import_state(&mut self, tensors: &BTreeMap<String, Tensor>) -> io::Result<usize> {
        let mut restored = BTreeMap::new();
        for (layer, current) in &self.states {
            let prefix = format!("admm.{layer}");
            let st = AdmmLayerState::from_tensors(&prefix, tensors).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ADMM state for layer {layer} missing or malformed"),
                )
            })?;
            if st.grid != current.grid || st.eta.to_bits() != current.eta.to_bits() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "ADMM state mismatch for layer {layer}: checkpoint grid/eta \
                         disagree with the pruner's configuration"
                    ),
                ));
            }
            restored.insert(layer.clone(), st);
        }
        let n = restored.len();
        self.states = restored;
        Ok(n)
    }

    /// Z-minimisation + dual update for every targeted layer (Eqs. 13, 9).
    pub fn update_duals(&mut self, network: &mut dyn Layer) {
        let layers: Vec<String> = self.states.keys().cloned().collect();
        let weights = collect_weights(network, &layers);
        for (layer, st) in self.states.iter_mut() {
            let w = &weights[layer];
            st.update(w, self.config.keep_rule);
        }
    }

    /// Worst relative primal residual `||W - Z|| / ||W||` over all layers.
    pub fn max_primal_residual(&self, network: &mut dyn Layer) -> f32 {
        let layers: Vec<String> = self.states.keys().cloned().collect();
        let weights = collect_weights(network, &layers);
        self.states
            .iter()
            .map(|(layer, st)| st.primal_residual(&weights[layer]))
            .fold(0.0, f32::max)
    }

    /// Hard pruning: project every targeted weight onto its sparsity set,
    /// install 0/1 retraining masks, and return the block-enable maps.
    pub fn hard_prune(&mut self, network: &mut dyn Layer) -> PrunedModel {
        let mut pruned = PrunedModel {
            block_shape: Some(self.block_shape),
            layers: BTreeMap::new(),
        };
        let states = &self.states;
        let config = &self.config;
        network.visit_params(&mut |p| {
            let Some(layer) = p.name.strip_suffix(".weight").map(str::to_string) else {
                return;
            };
            let Some(st) = states.get(&layer) else { return };
            let norms = st.grid.block_norms_sq(&p.value);
            let kept = config.keep_rule.kept(st.grid.num_blocks(), st.eta);
            let selection = select_blocks(&norms, kept);
            let mask5 = st.grid.mask_from_blocks(&selection.keep);
            // The elementwise mask tensor must match the weight shape.
            p.set_mask(mask5.reshape(p.value.shape()));
            pruned.insert(layer, LayerBlockMask::new(st.grid, selection.keep));
        });
        // From here on the masked retraining forward skips pruned blocks
        // outright (bitwise identical to the dense path on the masked
        // weights — the blocks it skips are exactly zero).
        pruned.install_block_sparse(network);
        pruned
    }

    /// Rebuilds the block-enable maps from the 0/1 masks currently
    /// installed on `network` — used when resuming a *retraining-phase*
    /// checkpoint, where hard pruning already happened before the
    /// interruption (re-running [`AdmmPruner::hard_prune`] would
    /// re-project the weights and could select different blocks).
    ///
    /// Layers whose parameter carries no mask are skipped.
    pub fn pruned_model_from_masks(&self, network: &mut dyn Layer) -> PrunedModel {
        let mut pruned = PrunedModel {
            block_shape: Some(self.block_shape),
            layers: BTreeMap::new(),
        };
        let states = &self.states;
        network.visit_params(&mut |p| {
            let Some(layer) = p.name.strip_suffix(".weight").map(str::to_string) else {
                return;
            };
            let Some(st) = states.get(&layer) else { return };
            if let Some(mask) = &p.mask {
                pruned.insert(layer, crate::magnitude::block_enable_from_mask(mask, &st.grid));
            }
        });
        // Match `hard_prune`: the resumed retraining forward also runs
        // block-sparse. Both paths are bitwise identical to dense, so a
        // resumed run still reproduces an uninterrupted one exactly.
        pruned.install_block_sparse(network);
        pruned
    }

    /// Masked retraining with the paper's warmup + cosine schedule. The
    /// masks installed by [`AdmmPruner::hard_prune`] keep pruned weights
    /// at zero.
    pub fn retrain(
        network: &mut dyn Layer,
        trainer: &mut Trainer,
        data: &dyn Dataset,
        schedule: &LrSchedule,
        epochs: usize,
    ) -> Vec<f32> {
        Self::retrain_from(network, trainer, data, schedule, epochs, 0, &mut |_| true)
    }

    /// Masked retraining resumed at `start_epoch` (the number of epochs
    /// already completed), invoking `on_tick` after every epoch. The
    /// learning rate is always taken from `schedule.lr_at(epoch)`, so a
    /// resumed run lands on the same point of the warmup+cosine curve as
    /// the uninterrupted run. Returning `false` from the callback stops
    /// the run after the current epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn retrain_from(
        network: &mut dyn Layer,
        trainer: &mut Trainer,
        data: &dyn Dataset,
        schedule: &LrSchedule,
        epochs: usize,
        start_epoch: usize,
        on_tick: &mut dyn FnMut(RetrainTick<'_>) -> bool,
    ) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs.saturating_sub(start_epoch));
        for epoch in start_epoch..epochs {
            trainer.optimizer.set_lr(schedule.lr_at(epoch).max(1e-8));
            let stats = trainer.train_epoch(&mut *network, data, None);
            losses.push(stats.loss);
            let keep_going = on_tick(RetrainTick {
                epoch,
                stats,
                network: &mut *network,
                trainer: &mut *trainer,
            });
            if !keep_going {
                break;
            }
        }
        losses
    }

    /// Verifies that every targeted weight in `network` satisfies its
    /// sparsity constraint (used by tests and the bench harness).
    pub fn verify_sparsity(&self, network: &mut dyn Layer) -> bool {
        let layers: Vec<String> = self.states.keys().cloned().collect();
        let weights = collect_weights(network, &layers);
        self.states.iter().all(|(layer, st)| {
            let max_blocks = self.config.keep_rule.kept(st.grid.num_blocks(), st.eta);
            crate::projection::satisfies_sparsity(&weights[layer], &st.grid, max_blocks)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::KeepRule;
    use p3d_models::{build_network, r2plus1d_micro};
    use p3d_nn::{CrossEntropyLoss, Sgd};
    use p3d_video_data::{GeneratorConfig, SyntheticVideo};

    fn micro_setup() -> (p3d_nn::Sequential, SyntheticVideo, Trainer) {
        let spec = r2plus1d_micro(3);
        let net = build_network(&spec, 11);
        let cfg = GeneratorConfig {
            frames: 6,
            height: 16,
            width: 16,
            num_classes: 3,
            noise_std: 0.02,
            speed: (1.0, 2.0),
            radius: (2.0, 3.0),
            distractors: 0,
        };
        let data = SyntheticVideo::generate(&cfg, 24, 5);
        let trainer = Trainer::new(
            CrossEntropyLoss::with_smoothing(0.1),
            Sgd::new(0.02, 0.9, 1e-4),
            8,
            3,
        );
        (net, data, trainer)
    }

    fn micro_targets() -> Vec<PruneTarget> {
        vec![
            PruneTarget {
                layer: "conv2_1a.spatial".into(),
                eta: 0.5,
            },
            PruneTarget {
                layer: "conv2_1b.temporal".into(),
                eta: 0.5,
            },
        ]
    }

    fn micro_config() -> AdmmConfig {
        // The micro test dataset is tiny (3 batches/epoch), so the rho
        // schedule is much more aggressive than the paper's to exert a
        // comparable pull within a few epochs.
        AdmmConfig {
            rho_schedule: vec![1.0, 5.0],
            epochs_per_round: 4,
            epochs_per_admm_update: 2,
            keep_rule: KeepRule::Round,
            epsilon: 0.2,
        }
    }

    #[test]
    fn targets_for_stages_selects_stage_layers() {
        let spec = r2plus1d_micro(3);
        let targets = targets_for_stages(&spec, &[("conv2_x", 0.5)]);
        assert!(!targets.is_empty());
        assert!(targets.iter().all(|t| t.layer.starts_with("conv2_")));
        assert!(targets.iter().all(|t| t.eta == 0.5));
    }

    #[test]
    #[should_panic(expected = "not found in network")]
    fn missing_target_panics() {
        let (mut net, _, _) = micro_setup();
        let _ = AdmmPruner::new(
            &mut net,
            BlockShape::new(4, 4),
            &[PruneTarget {
                layer: "nonexistent".into(),
                eta: 0.5,
            }],
            micro_config(),
        );
    }

    #[test]
    fn admm_train_reduces_primal_residual() {
        let (mut net, data, mut trainer) = micro_setup();
        let mut pruner =
            AdmmPruner::new(&mut net, BlockShape::new(4, 4), &micro_targets(), micro_config());
        let before = pruner.max_primal_residual(&mut net);
        let log = pruner.admm_train(&mut net, &mut trainer, &data);
        let after = pruner.max_primal_residual(&mut net);
        assert_eq!(log.rounds.len(), 2);
        assert!(
            after < before,
            "ADMM did not pull W toward the sparse set: {before} -> {after}"
        );
    }

    #[test]
    fn hard_prune_installs_masks_and_satisfies_sparsity() {
        let (mut net, data, mut trainer) = micro_setup();
        let mut pruner =
            AdmmPruner::new(&mut net, BlockShape::new(4, 4), &micro_targets(), micro_config());
        pruner.admm_train(&mut net, &mut trainer, &data);
        let pruned = pruner.hard_prune(&mut net);
        assert!(pruner.verify_sparsity(&mut net));
        assert_eq!(pruned.layers.len(), 2);
        for mask in pruned.layers.values() {
            assert!(mask.enabled_fraction() <= 0.51);
        }
    }

    #[test]
    fn retraining_preserves_sparsity() {
        let (mut net, data, mut trainer) = micro_setup();
        let mut pruner =
            AdmmPruner::new(&mut net, BlockShape::new(4, 4), &micro_targets(), micro_config());
        pruner.admm_train(&mut net, &mut trainer, &data);
        let _ = pruner.hard_prune(&mut net);
        let schedule = LrSchedule::WarmupCosine {
            base_lr: 0.02,
            warmup_epochs: 1,
            total_epochs: 3,
            min_lr: 1e-4,
        };
        AdmmPruner::retrain(&mut net, &mut trainer, &data, &schedule, 3);
        assert!(
            pruner.verify_sparsity(&mut net),
            "retraining resurrected pruned blocks"
        );
    }
}
