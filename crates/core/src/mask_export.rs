//! Block-enable masks: the bridge between the pruner and the FPGA.
//!
//! The accelerator (Fig. 2) consumes, per convolution layer, a bitmap
//! with one bit per `Tm x Tn` weight block — the *block enable signal*
//! "fetched from a pre-stored array generated for the pruned model". This
//! module defines that artifact and its serialisation.

use crate::blocks::{BlockGrid, BlockShape};
use bytes::{BufMut, Bytes, BytesMut};
use p3d_nn::Layer;
use p3d_tensor::BlockPattern;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The block-enable map of one convolution layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerBlockMask {
    /// The layer's block grid.
    pub grid: BlockGrid,
    /// Keep flags in flat block order (row-major over `(bi, bj)`).
    pub keep: Vec<bool>,
}

impl LayerBlockMask {
    /// Creates a mask.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != grid.num_blocks()`.
    pub fn new(grid: BlockGrid, keep: Vec<bool>) -> Self {
        assert_eq!(keep.len(), grid.num_blocks(), "keep length mismatch");
        LayerBlockMask { grid, keep }
    }

    /// A fully-enabled mask (unpruned layer).
    pub fn dense(grid: BlockGrid) -> Self {
        LayerBlockMask {
            keep: vec![true; grid.num_blocks()],
            grid,
        }
    }

    /// Number of enabled blocks.
    pub fn enabled_blocks(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Fraction of enabled blocks.
    pub fn enabled_fraction(&self) -> f64 {
        self.enabled_blocks() as f64 / self.keep.len() as f64
    }

    /// Whether block `(bi, bj)` is enabled.
    pub fn is_enabled(&self, bi: usize, bj: usize) -> bool {
        self.keep[self.grid.block_index(bi, bj)]
    }

    /// Enabled blocks within block row `bi` (the inner `L3` loop trip
    /// count of the tiled convolution for output tile row `bi`).
    pub fn enabled_in_row(&self, bi: usize) -> usize {
        (0..self.grid.cols())
            .filter(|&bj| self.is_enabled(bi, bj))
            .count()
    }

    /// Weights surviving under this mask.
    pub fn kept_params(&self) -> usize {
        self.grid.kept_params(&self.keep)
    }

    /// Kernel (m, n) pairs surviving — proportional to the surviving MACs.
    pub fn kept_kernels(&self) -> usize {
        self.kept_params() / self.grid.kernel_volume
    }

    /// Packs the keep flags into a little-endian bitmap, 8 blocks per
    /// byte — the "pre-stored array" format the simulator loads.
    pub fn to_bitmap(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.keep.len().div_ceil(8));
        let mut byte = 0u8;
        for (i, &k) in self.keep.iter().enumerate() {
            if k {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                buf.put_u8(byte);
                byte = 0;
            }
        }
        if !self.keep.len().is_multiple_of(8) {
            buf.put_u8(byte);
        }
        buf.freeze()
    }

    /// Lowers this mask to the matrix-coordinate [`BlockPattern`] the
    /// CPU block-sparse GEMM consumes.
    ///
    /// The weight tensor `[M, N, Kd, Kr, Kc]`, viewed row-major as the
    /// `[M, N * kv]` GEMM left operand, maps a `Tm x Tn` channel block
    /// onto a `tm = Tm` by `tk = Tn * kv` matrix block: the `Tn` input
    /// channels of block column `bj` own the contiguous column range
    /// `[bj*Tn*kv, min((bj+1)*Tn, N)*kv)`. Block coordinates and the
    /// row-major keep bitmap carry over one-to-one, so the same enable
    /// bits gate the FPGA simulator's tile skip and the CPU kernel's
    /// block skip.
    pub fn to_block_pattern(&self) -> BlockPattern {
        let kv = self.grid.kernel_volume;
        BlockPattern {
            m: self.grid.m,
            k: self.grid.n * kv,
            tm: self.grid.shape.tm,
            tk: self.grid.shape.tn * kv,
            keep: self.keep.clone(),
        }
    }

    /// Unpacks a bitmap produced by [`LayerBlockMask::to_bitmap`].
    ///
    /// # Panics
    ///
    /// Panics if the bitmap is too short for the grid.
    pub fn from_bitmap(grid: BlockGrid, bitmap: &[u8]) -> Self {
        let n = grid.num_blocks();
        assert!(bitmap.len() * 8 >= n, "bitmap too short");
        let keep = (0..n)
            .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
            .collect();
        LayerBlockMask { grid, keep }
    }
}

/// The pruned model artifact: a block-enable map per (spec) layer name.
///
/// Layers absent from the map are unpruned (all blocks enabled).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrunedModel {
    /// The block shape shared with the FPGA tiling.
    pub block_shape: Option<BlockShape>,
    /// Per-layer masks keyed by spec layer name (e.g.
    /// `"conv2_1a.spatial"`).
    pub layers: BTreeMap<String, LayerBlockMask>,
}

impl PrunedModel {
    /// An empty (fully dense) model description.
    pub fn dense() -> Self {
        PrunedModel::default()
    }

    /// Inserts a layer mask.
    pub fn insert(&mut self, layer: impl Into<String>, mask: LayerBlockMask) {
        if self.block_shape.is_none() {
            self.block_shape = Some(mask.grid.shape);
        }
        self.layers.insert(layer.into(), mask);
    }

    /// The mask for `layer`, if pruned.
    pub fn mask(&self, layer: &str) -> Option<&LayerBlockMask> {
        self.layers.get(layer)
    }

    /// Installs this model's block-enable maps as block-sparse execution
    /// patterns on `network`: every conv layer named in the map compiles
    /// its (masked) weights to block-CSR and runs `forward`/`eval_into`
    /// through the block-skipping GEMM from then on. Layers absent from
    /// the map keep the dense path. Outputs are bitwise identical either
    /// way (the skipped blocks are exactly zero); the sparse path is
    /// just proportionally faster — the CPU analogue of the
    /// accelerator's block-enable gating.
    pub fn install_block_sparse(&self, network: &mut dyn Layer) {
        network.install_block_patterns(&mut |param_name| {
            let layer = param_name.strip_suffix(".weight")?;
            self.layers.get(layer).map(LayerBlockMask::to_block_pattern)
        });
    }

    /// Overall kept fraction of the masked layers' parameters.
    pub fn kept_fraction(&self) -> f64 {
        let (kept, total) = self.layers.values().fold((0usize, 0usize), |(k, t), m| {
            (k + m.kept_params(), t + m.grid.total_params())
        });
        if total == 0 {
            1.0
        } else {
            kept as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_mask() -> LayerBlockMask {
        let grid = BlockGrid::new(4, 6, 2, BlockShape::new(2, 2));
        // 2x3 grid of blocks.
        LayerBlockMask::new(grid, vec![true, false, true, false, false, true])
    }

    #[test]
    fn enabled_counts() {
        let m = demo_mask();
        assert_eq!(m.enabled_blocks(), 3);
        assert!((m.enabled_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(m.enabled_in_row(0), 2);
        assert_eq!(m.enabled_in_row(1), 1);
        assert!(m.is_enabled(0, 0));
        assert!(!m.is_enabled(0, 1));
    }

    #[test]
    fn kept_params_counts_block_sizes() {
        let m = demo_mask();
        // All blocks are 2x2 kernels x volume 2 = 8 weights.
        assert_eq!(m.kept_params(), 3 * 8);
        assert_eq!(m.kept_kernels(), 3 * 4);
    }

    #[test]
    fn bitmap_roundtrip() {
        let m = demo_mask();
        let bits = m.to_bitmap();
        assert_eq!(bits.len(), 1);
        let back = LayerBlockMask::from_bitmap(m.grid, &bits);
        assert_eq!(back, m);
    }

    #[test]
    fn bitmap_roundtrip_long() {
        let grid = BlockGrid::new(16, 16, 1, BlockShape::new(2, 2));
        let keep: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let m = LayerBlockMask::new(grid, keep);
        let back = LayerBlockMask::from_bitmap(grid, &m.to_bitmap());
        assert_eq!(back, m);
    }

    #[test]
    fn dense_mask_everything_enabled() {
        let grid = BlockGrid::new(8, 8, 3, BlockShape::new(4, 4));
        let m = LayerBlockMask::dense(grid);
        assert_eq!(m.enabled_fraction(), 1.0);
        assert_eq!(m.kept_params(), grid.total_params());
    }

    #[test]
    fn pruned_model_kept_fraction() {
        let mut pm = PrunedModel::dense();
        assert_eq!(pm.kept_fraction(), 1.0);
        pm.insert("a", demo_mask());
        assert!((pm.kept_fraction() - 0.5).abs() < 1e-12);
        assert!(pm.mask("a").is_some());
        assert!(pm.mask("b").is_none());
        assert_eq!(pm.block_shape, Some(BlockShape::new(2, 2)));
    }
}
