//! The ADMM state and iteration of Section III (Eqs. 4–13).
//!
//! Per targeted layer the algorithm maintains the auxiliary variable `Z`
//! (a projection of the weights onto the sparsity set) and the scaled
//! dual variable `V`. The W-minimisation step (Eq. 11) is ordinary SGD
//! training with an extra quadratic penalty whose gradient is
//! `rho * (W - Z + V)`; the Z-minimisation step (Eq. 13) is the
//! Euclidean projection; the dual update is `V <- V + W - Z` (Eq. 9).

use crate::blocks::{BlockGrid, BlockShape};
use crate::projection::{project_inplace, KeepRule, ProjectionResult};
use p3d_nn::train_state::{pack_u64s, unpack_u64s};
use p3d_tensor::Tensor;
use std::collections::BTreeMap;

/// Sentinel stored in the meta record when no projection has run yet.
const NO_PROJECTION: u64 = u64::MAX;

/// ADMM hyper-parameters (Algorithm 1).
#[derive(Clone, Debug)]
pub struct AdmmConfig {
    /// The multi-rho schedule: one ADMM *round* per entry. The paper uses
    /// `[1e-4, 1e-3, 1e-2, 1e-1]`.
    pub rho_schedule: Vec<f32>,
    /// Training epochs per round (`epoch_rho`; 50 in the paper).
    pub epochs_per_round: usize,
    /// Epochs between Z/V updates (`epoch_admm`; 10 in the paper).
    pub epochs_per_admm_update: usize,
    /// Rule for deriving the kept-block count from `eta`.
    pub keep_rule: KeepRule,
    /// Convergence threshold `epsilon` on the primal/dual residuals
    /// (Eq. 10), relative to the weight norm.
    pub epsilon: f32,
}

impl AdmmConfig {
    /// The paper's schedule: four rounds with rho = 1e-4..1e-1, 50 epochs
    /// per round, Z/V updates every 10 epochs.
    pub fn paper() -> Self {
        AdmmConfig {
            rho_schedule: vec![1e-4, 1e-3, 1e-2, 1e-1],
            epochs_per_round: 50,
            epochs_per_admm_update: 10,
            keep_rule: KeepRule::Round,
            epsilon: 0.02,
        }
    }

    /// A short schedule for the scaled-down experiments: the same
    /// four-decade rho ramp with fewer epochs.
    pub fn fast() -> Self {
        AdmmConfig {
            rho_schedule: vec![1e-3, 1e-2, 1e-1],
            epochs_per_round: 6,
            epochs_per_admm_update: 2,
            keep_rule: KeepRule::Round,
            epsilon: 0.05,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty rho schedule, zero epochs, or a non-positive
    /// epsilon.
    pub fn validate(&self) {
        assert!(!self.rho_schedule.is_empty(), "empty rho schedule");
        assert!(
            self.rho_schedule.iter().all(|&r| r > 0.0),
            "rho must be positive"
        );
        assert!(self.epochs_per_round > 0, "epochs_per_round must be positive");
        assert!(
            self.epochs_per_admm_update > 0,
            "epochs_per_admm_update must be positive"
        );
        assert!(self.epsilon > 0.0, "epsilon must be positive");
    }
}

/// The ADMM state of one pruned layer.
#[derive(Clone, Debug)]
pub struct AdmmLayerState {
    /// The layer's block grid.
    pub grid: BlockGrid,
    /// Target pruning ratio `eta` (fraction of blocks to zero).
    pub eta: f64,
    /// Auxiliary variable `Z` (lives in the sparsity set).
    pub z: Tensor,
    /// Scaled dual variable `V`.
    pub v: Tensor,
    /// Blocks kept by the last projection.
    pub last_projection: Option<ProjectionResult>,
}

impl AdmmLayerState {
    /// Initialises the state from the current weights:
    /// `Z^0 = Pi_S(W^0)`, `V^0 = 0`.
    ///
    /// (The paper states `Z^0 = W^0`; projecting immediately is
    /// equivalent after the first Z-update and keeps `Z` feasible from
    /// the start.)
    pub fn init(weight: &Tensor, grid: BlockGrid, eta: f64, rule: KeepRule) -> Self {
        let mut z = weight.clone();
        let projection = project_inplace(&mut z, &grid, eta, rule);
        AdmmLayerState {
            grid,
            eta,
            z,
            v: Tensor::zeros(weight.shape()),
            last_projection: Some(projection),
        }
    }

    /// The gradient of the ADMM penalty w.r.t. the weights:
    /// `rho * (W - Z + V)` (Eq. 11). Added to the task gradient by the
    /// training hook.
    pub fn penalty_grad(&self, weight: &Tensor, rho: f32) -> Tensor {
        let mut g = weight - &self.z;
        g += &self.v;
        g.scale(rho);
        g
    }

    /// The penalty value `rho/2 * ||W - Z + V||_F^2` (for monitoring).
    pub fn penalty_value(&self, weight: &Tensor, rho: f32) -> f32 {
        let mut d = weight - &self.z;
        d += &self.v;
        0.5 * rho * d.frobenius_norm_sq()
    }

    /// Z-minimisation and dual update (Eqs. 13 and 9):
    /// `Z <- Pi_S(W + V)`, then `V <- V + W - Z`.
    pub fn update(&mut self, weight: &Tensor, rule: KeepRule) {
        let mut target = weight + &self.v;
        let projection = project_inplace(&mut target, &self.grid, self.eta, rule);
        self.z = target;
        self.last_projection = Some(projection);
        // V += W - Z
        self.v += &(weight - &self.z);
    }

    /// Rescales the dual variable when the penalty parameter changes.
    ///
    /// The scaled dual is `V = U / rho`; Algorithm 1's "Expand rho" step
    /// must preserve the *unscaled* dual `U`, so on a change from
    /// `rho_old` to `rho_new` the scaled dual becomes
    /// `V * rho_old / rho_new`. Without this, growing rho by 10x silently
    /// grows `U` by 10x and the iteration diverges.
    pub fn rescale_dual(&mut self, rho_old: f32, rho_new: f32) {
        assert!(rho_old > 0.0 && rho_new > 0.0, "rho must be positive");
        self.v.scale(rho_old / rho_new);
    }

    /// Exports the state into named tensors under `prefix` for storage in
    /// a training-state checkpoint:
    ///
    /// * `{prefix}.z` / `{prefix}.v` — the ADMM variables (weight-shaped),
    /// * `{prefix}.meta` — exact scalars bit-packed as `u64` lanes:
    ///   `[eta_bits, tm, tn, m, n, kernel_volume, kept_blocks,
    ///   threshold_sq_bits]` (`kept_blocks = u64::MAX` when no projection
    ///   has run),
    /// * `{prefix}.keep` — the last projection's 0/1 keep flags (only
    ///   when a projection has run).
    ///
    /// `eta` and `threshold_sq` are `f64`s stored via `to_bits`, so the
    /// round-trip is lossless.
    pub fn to_tensors(&self, prefix: &str, out: &mut BTreeMap<String, Tensor>) {
        out.insert(format!("{prefix}.z"), self.z.clone());
        out.insert(format!("{prefix}.v"), self.v.clone());
        let (kept, threshold_bits) = match &self.last_projection {
            Some(p) => (p.kept_blocks as u64, p.threshold_sq.to_bits()),
            None => (NO_PROJECTION, 0u64),
        };
        out.insert(
            format!("{prefix}.meta"),
            pack_u64s(&[
                self.eta.to_bits(),
                self.grid.shape.tm as u64,
                self.grid.shape.tn as u64,
                self.grid.m as u64,
                self.grid.n as u64,
                self.grid.kernel_volume as u64,
                kept,
                threshold_bits,
            ]),
        );
        if let Some(p) = &self.last_projection {
            let flags: Vec<f32> = p.keep.iter().map(|&k| if k { 1.0 } else { 0.0 }).collect();
            out.insert(
                format!("{prefix}.keep"),
                Tensor::from_vec([flags.len()], flags),
            );
        }
    }

    /// Reconstructs a state exported by [`AdmmLayerState::to_tensors`].
    ///
    /// Returns `None` when any record is missing or malformed (wrong
    /// lane count, degenerate grid, eta outside `[0, 1)`, `Z`/`V` shape
    /// disagreement, or keep flags of the wrong length) — never panics
    /// on untrusted input.
    pub fn from_tensors(prefix: &str, tensors: &BTreeMap<String, Tensor>) -> Option<AdmmLayerState> {
        let meta = unpack_u64s(tensors.get(&format!("{prefix}.meta"))?)?;
        if meta.len() != 8 {
            return None;
        }
        let eta = f64::from_bits(meta[0]);
        if !(eta.is_finite() && (0.0..1.0).contains(&eta)) {
            return None;
        }
        let as_dim = |x: u64| -> Option<usize> {
            (1..=(1u64 << 32)).contains(&x).then_some(x as usize)
        };
        let (tm, tn) = (as_dim(meta[1])?, as_dim(meta[2])?);
        let (m, n, kernel_volume) = (as_dim(meta[3])?, as_dim(meta[4])?, as_dim(meta[5])?);
        let grid = BlockGrid::new(m, n, kernel_volume, BlockShape::new(tm, tn));
        let z = tensors.get(&format!("{prefix}.z"))?;
        let v = tensors.get(&format!("{prefix}.v"))?;
        let zs = z.shape();
        let shape_ok = zs == v.shape()
            && zs.rank() == 5
            && zs.dim(0) == m
            && zs.dim(1) == n
            && zs.dim(2) * zs.dim(3) * zs.dim(4) == kernel_volume;
        if !shape_ok {
            return None;
        }
        let last_projection = if meta[6] == NO_PROJECTION {
            None
        } else {
            let flags = tensors.get(&format!("{prefix}.keep"))?;
            if flags.data().len() != grid.num_blocks() {
                return None;
            }
            let keep: Vec<bool> = flags.data().iter().map(|&f| f != 0.0).collect();
            let kept_blocks = as_dim(meta[6])?;
            if keep.iter().filter(|&&k| k).count() != kept_blocks {
                return None;
            }
            Some(ProjectionResult {
                keep,
                threshold_sq: f64::from_bits(meta[7]),
                kept_blocks,
            })
        };
        Some(AdmmLayerState {
            grid,
            eta,
            z: z.clone(),
            v: v.clone(),
            last_projection,
        })
    }

    /// Primal residual `||W - Z||_F` relative to `||W||_F` (Eq. 10).
    pub fn primal_residual(&self, weight: &Tensor) -> f32 {
        let num = (weight - &self.z).frobenius_norm();
        num / weight.frobenius_norm().max(1e-12)
    }

    /// Has the layer converged under threshold `epsilon`?
    pub fn converged(&self, weight: &Tensor, epsilon: f32) -> bool {
        self.primal_residual(weight) <= epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockShape;
    use p3d_tensor::TensorRng;

    fn demo_weight(seed: u64) -> (Tensor, BlockGrid) {
        let mut rng = TensorRng::seed(seed);
        let w = rng.uniform_tensor([4, 4, 1, 3, 3], -1.0, 1.0);
        let grid = BlockGrid::for_weight(&w, BlockShape::new(2, 2));
        (w, grid)
    }

    #[test]
    fn init_projects_z_and_zeroes_v() {
        let (w, grid) = demo_weight(1);
        let st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        assert_eq!(st.v.frobenius_norm(), 0.0);
        let norms = grid.block_norms_sq(&st.z);
        assert_eq!(norms.iter().filter(|&&n| n > 0.0).count(), 2);
    }

    #[test]
    fn penalty_grad_is_rho_times_residual() {
        let (w, grid) = demo_weight(2);
        let st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        let g = st.penalty_grad(&w, 0.1);
        let manual = {
            let mut d = &w - &st.z;
            d.scale(0.1);
            d
        };
        assert!(g.allclose(&manual, 1e-6));
    }

    #[test]
    fn penalty_zero_when_w_equals_z_and_v_zero() {
        let (w, grid) = demo_weight(3);
        let mut st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        st.z = w.clone();
        assert_eq!(st.penalty_value(&w, 1.0), 0.0);
        assert!(st.penalty_grad(&w, 1.0).frobenius_norm() < 1e-7);
    }

    #[test]
    fn update_keeps_z_feasible_and_v_tracks_residual() {
        let (w, grid) = demo_weight(4);
        let mut st = AdmmLayerState::init(&w, grid, 0.75, KeepRule::Floor);
        st.update(&w, KeepRule::Floor);
        // Z has exactly 1 nonzero block (floor(0.25*4) = 1).
        let nz = grid
            .block_norms_sq(&st.z)
            .iter()
            .filter(|&&n| n > 0.0)
            .count();
        assert_eq!(nz, 1);
        // After the first update with V0=0: V = W - Z.
        assert!(st.v.allclose(&(&w - &st.z), 1e-6));
    }

    #[test]
    fn iteration_converges_when_w_tracks_z() {
        // Simulate the W-step perfectly minimising the penalty
        // (W <- Z - V): ADMM then converges in a few iterations.
        let (mut w, grid) = demo_weight(5);
        let mut st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        for _ in 0..20 {
            // "Training" drives W toward Z - V.
            let target = &st.z - &st.v;
            w.zip_inplace(&target, |cur, t| cur + 0.5 * (t - cur));
            st.update(&w, KeepRule::Round);
        }
        assert!(
            st.converged(&w, 0.05),
            "residual {} too large",
            st.primal_residual(&w)
        );
        // The converged W is (nearly) block-sparse.
        let norms = grid.block_norms_sq(&w);
        let mut sorted = norms.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(sorted[2] < sorted[1] * 0.01, "pruned blocks not vanishing: {norms:?}");
    }

    #[test]
    fn rescale_dual_preserves_unscaled_dual() {
        let (w, grid) = demo_weight(6);
        let mut st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        st.update(&w, KeepRule::Round); // V = W - Z, nonzero
        let u_before = {
            let mut u = st.v.clone();
            u.scale(0.01); // U = rho * V at rho = 0.01
            u
        };
        st.rescale_dual(0.01, 0.1);
        let u_after = {
            let mut u = st.v.clone();
            u.scale(0.1);
            u
        };
        assert!(u_after.allclose(&u_before, 1e-6));
    }

    #[test]
    fn layer_state_tensor_roundtrip_is_exact() {
        let (w, grid) = demo_weight(7);
        let mut st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        st.update(&w, KeepRule::Round); // nonzero V, fresh projection
        let mut map = BTreeMap::new();
        st.to_tensors("admm.layer", &mut map);
        let back = AdmmLayerState::from_tensors("admm.layer", &map).expect("roundtrip");
        assert_eq!(back.grid, st.grid);
        assert_eq!(back.eta.to_bits(), st.eta.to_bits());
        assert_eq!(back.z.data(), st.z.data());
        assert_eq!(back.v.data(), st.v.data());
        let (a, b) = (
            back.last_projection.as_ref().unwrap(),
            st.last_projection.as_ref().unwrap(),
        );
        assert_eq!(a.keep, b.keep);
        assert_eq!(a.kept_blocks, b.kept_blocks);
        assert_eq!(a.threshold_sq.to_bits(), b.threshold_sq.to_bits());
    }

    #[test]
    fn layer_state_from_tensors_rejects_malformed() {
        let (w, grid) = demo_weight(8);
        let st = AdmmLayerState::init(&w, grid, 0.5, KeepRule::Round);
        let mut map = BTreeMap::new();
        st.to_tensors("a", &mut map);

        // Missing records.
        assert!(AdmmLayerState::from_tensors("other", &map).is_none());
        let mut no_z = map.clone();
        no_z.remove("a.z");
        assert!(AdmmLayerState::from_tensors("a", &no_z).is_none());

        // Shape disagreement between Z and V.
        let mut bad_v = map.clone();
        bad_v.insert("a.v".into(), Tensor::zeros([2, 2, 1, 3, 3]));
        assert!(AdmmLayerState::from_tensors("a", &bad_v).is_none());

        // Corrupt meta: zero grid dimension must not panic BlockGrid::new.
        let mut bad_meta = map.clone();
        bad_meta.insert("a.meta".into(), pack_u64s(&[0.5f64.to_bits(), 0, 2, 4, 4, 9, 2, 0]));
        assert!(AdmmLayerState::from_tensors("a", &bad_meta).is_none());

        // Keep flags inconsistent with the kept-block count.
        let mut bad_keep = map.clone();
        bad_keep.insert("a.keep".into(), Tensor::zeros([4]));
        assert!(AdmmLayerState::from_tensors("a", &bad_keep).is_none());
    }

    #[test]
    fn config_validation() {
        AdmmConfig::paper().validate();
        AdmmConfig::fast().validate();
        let mut bad = AdmmConfig::paper();
        bad.rho_schedule.clear();
        let result = std::panic::catch_unwind(move || bad.validate());
        assert!(result.is_err());
    }

    #[test]
    fn paper_config_matches_section5() {
        let c = AdmmConfig::paper();
        assert_eq!(c.rho_schedule, vec![1e-4, 1e-3, 1e-2, 1e-1]);
        assert_eq!(c.epochs_per_round, 50);
        assert_eq!(c.epochs_per_admm_update, 10);
    }
}
