#![warn(missing_docs)]
//! Hardware-aware blockwise ADMM weight pruning for 3D CNNs — the
//! primary contribution of *"3D CNN Acceleration on FPGA using
//! Hardware-Aware Pruning"* (DAC 2020).
//!
//! The pruning unit is a block of `Tm x Tn` 3D kernels, chosen to match
//! the loop-tiling buffers of the FPGA accelerator, so every pruned block
//! eliminates one load+compute iteration of the tiled convolution.
//! Sparsity is reached with ADMM: SGD training with a quadratic penalty
//! (W-step), Euclidean projection onto the block-sparse set (Z-step), a
//! dual update, a multi-rho schedule, and final masked retraining.
//!
//! # Pipeline
//!
//! ```no_run
//! use p3d_core::{AdmmConfig, AdmmPruner, BlockShape, targets_for_stages};
//! use p3d_models::{build_network, r2plus1d_lite};
//! use p3d_nn::{CrossEntropyLoss, LrSchedule, Sgd, Trainer};
//! use p3d_video_data::{GeneratorConfig, SyntheticVideo};
//!
//! let spec = r2plus1d_lite(10);
//! let mut net = build_network(&spec, 0);
//! let data = SyntheticVideo::generate(&GeneratorConfig::standard(), 200, 1);
//! let mut trainer = Trainer::new(
//!     CrossEntropyLoss::with_smoothing(0.1),
//!     Sgd::new(5e-3, 0.9, 1e-4),
//!     32,
//!     7,
//! );
//! // Prune the second and third residual blocks, as in the paper.
//! let targets = targets_for_stages(&spec, &[("conv2_x", 0.9), ("conv3_x", 0.8)]);
//! let mut pruner = AdmmPruner::new(&mut net, BlockShape::new(4, 4), &targets, AdmmConfig::fast());
//! pruner.admm_train(&mut net, &mut trainer, &data);
//! let pruned = pruner.hard_prune(&mut net);
//! let schedule = LrSchedule::WarmupCosine {
//!     base_lr: 5e-4, warmup_epochs: 2, total_epochs: 10, min_lr: 1e-5,
//! };
//! AdmmPruner::retrain(&mut net, &mut trainer, &data, &schedule, 10);
//! assert!(pruned.kept_fraction() < 0.3);
//! ```

pub mod admm;
pub mod blocks;
pub mod magnitude;
pub mod mask_export;
pub mod projection;
pub mod pruner;
pub mod report;
pub mod resume;

pub use admm::{AdmmConfig, AdmmLayerState};
pub use blocks::{BlockGrid, BlockShape};
pub use magnitude::{
    block_enable_from_mask, channel_prune, magnitude_block_prune, unstructured_prune,
};
pub use mask_export::{LayerBlockMask, PrunedModel};
pub use projection::{project, project_inplace, satisfies_sparsity, select_blocks, KeepRule, ProjectionResult};
pub use pruner::{
    targets_for_stages, AdmmProgress, AdmmPruner, AdmmTick, PruneLog, PruneTarget, RetrainTick,
    RoundLog,
};
pub use report::{PruningReport, StageRow};
pub use resume::{
    capture_admm_train_state, capture_retrain_state, restore_admm_train_state,
    restore_retrain_state, ADMM_PROGRESS_KEY, RETRAIN_PROGRESS_KEY,
};
