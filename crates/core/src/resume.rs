//! One-file capture/restore of complete ADMM pruning runs.
//!
//! The ADMM pipeline has two interruptible phases — the ADMM training
//! double loop and masked retraining — and each needs a different state
//! set to resume bitwise-identically:
//!
//! * **ADMM training**: model parameters + BN statistics, SGD velocity
//!   and learning rate, the shuffle-RNG stream, per-layer `Z`/`V`/grid
//!   state, and the `(round, epoch)` position in the double loop.
//! * **Masked retraining**: model parameters + BN statistics + the 0/1
//!   pruning masks, trainer state, the LR schedule, and the epoch count.
//!
//! Both are packed into one [`TrainState`] (and therefore one atomic,
//! checksummed `P3DCKPT2` file). The helpers here are what the bench
//! drivers' `--save-every`/`--resume` flags and the kill-and-resume
//! integration tests use.

use crate::pruner::{AdmmProgress, AdmmPruner};
use p3d_nn::{Layer, LrSchedule, TrainState, Trainer};
use std::io;

/// Key holding the `(round, epoch)` position of the ADMM double loop.
pub const ADMM_PROGRESS_KEY: &str = "progress.admm";
/// Key holding the completed-epoch count of masked retraining.
pub const RETRAIN_PROGRESS_KEY: &str = "progress.retrain";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Captures everything needed to resume an interrupted ADMM training
/// run at `progress` (the position just completed).
pub fn capture_admm_train_state(
    network: &mut dyn Layer,
    trainer: &Trainer,
    pruner: &AdmmPruner,
    progress: AdmmProgress,
) -> TrainState {
    let mut state = TrainState::new();
    state.capture_model(network);
    state.capture_trainer(trainer);
    pruner.export_state(&mut state.ckpt.tensors);
    state.set_u64s(
        ADMM_PROGRESS_KEY,
        &[progress.round as u64, progress.epoch as u64],
    );
    state
}

/// Restores a state captured by [`capture_admm_train_state`] into a
/// freshly-built network, trainer and pruner, returning the position to
/// hand to [`AdmmPruner::admm_train_from`].
///
/// # Errors
///
/// `InvalidData` when the checkpoint does not exactly cover the model
/// (missing or shape-mismatched tensors), the trainer state is absent or
/// inconsistent (e.g. a different batch size), the ADMM state disagrees
/// with the pruner's configuration, or the progress record is missing.
pub fn restore_admm_train_state(
    state: &TrainState,
    network: &mut dyn Layer,
    trainer: &mut Trainer,
    pruner: &mut AdmmPruner,
) -> io::Result<AdmmProgress> {
    let report = state.restore_model(network);
    if !report.mismatched.is_empty() || !report.missing.is_empty() {
        return Err(bad(format!(
            "checkpoint does not cover the model: missing {:?}, mismatched {:?}",
            report.missing, report.mismatched
        )));
    }
    state.restore_trainer(trainer)?;
    pruner.import_state(&state.ckpt.tensors)?;
    let p = state
        .u64s(ADMM_PROGRESS_KEY)
        .filter(|v| v.len() == 2)
        .ok_or_else(|| bad("progress.admm missing or malformed"))?;
    Ok(AdmmProgress {
        round: p[0] as usize,
        epoch: p[1] as usize,
    })
}

/// Captures everything needed to resume interrupted masked retraining
/// after `epochs_done` completed epochs (pruning masks included — they
/// travel as `{param}.mask` tensors and are reinstalled on restore).
pub fn capture_retrain_state(
    network: &mut dyn Layer,
    trainer: &Trainer,
    schedule: &LrSchedule,
    epochs_done: usize,
) -> TrainState {
    let mut state = TrainState::new();
    state.capture_model(network);
    state.capture_trainer(trainer);
    state.capture_schedule(schedule, epochs_done);
    state.set_u64s(RETRAIN_PROGRESS_KEY, &[epochs_done as u64]);
    state
}

/// Restores a state captured by [`capture_retrain_state`], returning the
/// schedule and the epoch to hand to [`AdmmPruner::retrain_from`] as
/// `start_epoch`.
///
/// # Errors
///
/// `InvalidData` under the same conditions as
/// [`restore_admm_train_state`], or when the schedule record is absent.
pub fn restore_retrain_state(
    state: &TrainState,
    network: &mut dyn Layer,
    trainer: &mut Trainer,
) -> io::Result<(LrSchedule, usize)> {
    let report = state.restore_model(network);
    if !report.mismatched.is_empty() || !report.missing.is_empty() {
        return Err(bad(format!(
            "checkpoint does not cover the model: missing {:?}, mismatched {:?}",
            report.missing, report.mismatched
        )));
    }
    state.restore_trainer(trainer)?;
    let (schedule, _sched_epoch) = state
        .schedule()
        .ok_or_else(|| bad("sched.params / sched.epoch missing or malformed"))?;
    let done = state
        .u64s(RETRAIN_PROGRESS_KEY)
        .and_then(|v| v.first().copied())
        .ok_or_else(|| bad("progress.retrain missing or malformed"))?;
    Ok((schedule, done as usize))
}
