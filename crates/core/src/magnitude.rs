//! Baseline pruning schemes for the ablation studies: one-shot blockwise
//! magnitude pruning (no ADMM), unstructured elementwise pruning, and
//! channel pruning. All three produce the same artifacts as the ADMM
//! pruner (elementwise masks + block-enable maps) so the FPGA model can
//! compare them at equal sparsity.

use crate::blocks::{BlockGrid, BlockShape};
use crate::mask_export::{LayerBlockMask, PrunedModel};
use crate::projection::{select_blocks, KeepRule};
use crate::pruner::PruneTarget;
use p3d_nn::Layer;
use p3d_tensor::Tensor;

/// Derives a block-enable map from an arbitrary elementwise 0/1 mask:
/// a block is enabled iff it contains at least one surviving weight.
///
/// This is how *unstructured* sparsity translates to the tiled
/// accelerator: a block can only be skipped when every weight in it is
/// zero — the crux of the paper's argument for tiling-aligned pruning.
pub fn block_enable_from_mask(mask: &Tensor, grid: &BlockGrid) -> LayerBlockMask {
    let data = mask.data();
    let mut keep = vec![false; grid.num_blocks()];
    for bi in 0..grid.rows() {
        for bj in 0..grid.cols() {
            let mut any = false;
            grid.for_each_offset(bi, bj, |off| {
                if data[off] != 0.0 {
                    any = true;
                }
            });
            keep[grid.block_index(bi, bj)] = any;
        }
    }
    LayerBlockMask::new(*grid, keep)
}

fn for_target_weights(
    network: &mut dyn Layer,
    targets: &[PruneTarget],
    mut f: impl FnMut(&PruneTarget, &mut p3d_nn::Param),
) {
    network.visit_params(&mut |p| {
        if let Some(layer) = p.name.strip_suffix(".weight") {
            if let Some(t) = targets.iter().find(|t| t.layer == layer) {
                f(t, p);
            }
        }
    });
}

/// One-shot blockwise magnitude pruning: project every target weight
/// directly (no ADMM training), install masks, return block maps.
///
/// This is the paper's implicit baseline — the accuracy gap between this
/// and the ADMM pipeline at equal sparsity is what the ADMM machinery
/// buys.
pub fn magnitude_block_prune(
    network: &mut dyn Layer,
    block_shape: BlockShape,
    targets: &[PruneTarget],
    rule: KeepRule,
) -> PrunedModel {
    let mut pruned = PrunedModel {
        block_shape: Some(block_shape),
        layers: Default::default(),
    };
    for_target_weights(network, targets, |t, p| {
        let grid = BlockGrid::for_weight(&p.value, block_shape);
        let norms = grid.block_norms_sq(&p.value);
        let kept = rule.kept(grid.num_blocks(), t.eta);
        let sel = select_blocks(&norms, kept);
        let mask = grid.mask_from_blocks(&sel.keep).reshape(p.value.shape());
        p.set_mask(mask);
        pruned.insert(t.layer.clone(), LayerBlockMask::new(grid, sel.keep));
    });
    // Retraining/eval after a block prune runs the block-skipping GEMM.
    pruned.install_block_sparse(network);
    pruned
}

/// Unstructured elementwise magnitude pruning at the same weight
/// sparsity: zero the `eta` fraction of smallest-magnitude weights,
/// regardless of block structure.
///
/// Returns the *resulting* block-enable maps — which are almost fully
/// dense, demonstrating why unstructured sparsity yields no tile-skipping
/// speedup.
pub fn unstructured_prune(
    network: &mut dyn Layer,
    block_shape: BlockShape,
    targets: &[PruneTarget],
) -> PrunedModel {
    let mut pruned = PrunedModel {
        block_shape: Some(block_shape),
        layers: Default::default(),
    };
    for_target_weights(network, targets, |t, p| {
        let n = p.value.len();
        let prune_count = ((t.eta * n as f64) as usize).min(n.saturating_sub(1));
        let mut order: Vec<usize> = (0..n).collect();
        let vals = p.value.data().to_vec();
        order.sort_by(|&a, &b| {
            vals[a]
                .abs()
                .partial_cmp(&vals[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut mask = Tensor::ones(p.value.shape());
        for &idx in order.iter().take(prune_count) {
            mask.data_mut()[idx] = 0.0;
        }
        let grid = BlockGrid::for_weight(&p.value, block_shape);
        let block_map = block_enable_from_mask(&mask, &grid);
        p.set_mask(mask);
        pruned.insert(t.layer.clone(), block_map);
    });
    // Installing the (nearly dense) block maps is still lossless — a
    // block is disabled only when every weight in it is zero — and lets
    // the ablation measure exactly how little unstructured sparsity
    // converts into block skips.
    pruned.install_block_sparse(network);
    pruned
}

/// Channel (filter) pruning at approximately the same weight sparsity:
/// zero the `eta` fraction of output channels with the smallest L2 norm.
///
/// Returns block-enable maps: an entire block row disables only when all
/// of its `Tm` channels are pruned, so channel pruning converts to tile
/// skipping only at coarse granularity.
pub fn channel_prune(
    network: &mut dyn Layer,
    block_shape: BlockShape,
    targets: &[PruneTarget],
) -> PrunedModel {
    let mut pruned = PrunedModel {
        block_shape: Some(block_shape),
        layers: Default::default(),
    };
    for_target_weights(network, targets, |t, p| {
        let s = p.value.shape();
        assert_eq!(s.rank(), 5, "channel pruning expects conv weights");
        let (m, rest) = (s.dim(0), s.len() / s.dim(0));
        let mut norms: Vec<(usize, f64)> = (0..m)
            .map(|ch| {
                let base = ch * rest;
                let sq: f64 = p.value.data()[base..base + rest]
                    .iter()
                    .map(|&x| (x as f64) * (x as f64))
                    .sum();
                (ch, sq)
            })
            .collect();
        norms.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let prune_count = ((t.eta * m as f64).round() as usize).min(m.saturating_sub(1));
        let mut mask = Tensor::ones(s);
        for &(ch, _) in norms.iter().take(prune_count) {
            let base = ch * rest;
            mask.data_mut()[base..base + rest].fill(0.0);
        }
        let grid = BlockGrid::for_weight(&p.value, block_shape);
        let block_map = block_enable_from_mask(&mask, &grid);
        p.set_mask(mask);
        pruned.insert(t.layer.clone(), block_map);
    });
    // Whole pruned channels disable block rows once all Tm of their
    // channels are gone; the sparse path skips exactly those.
    pruned.install_block_sparse(network);
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_models::{build_network, r2plus1d_micro};

    fn setup() -> (p3d_nn::Sequential, Vec<PruneTarget>) {
        let spec = r2plus1d_micro(3);
        let net = build_network(&spec, 21);
        let targets = vec![PruneTarget {
            layer: "conv2_1a.spatial".into(),
            eta: 0.5,
        }];
        (net, targets)
    }

    #[test]
    fn block_enable_from_dense_mask_is_dense() {
        let grid = BlockGrid::new(4, 4, 2, BlockShape::new(2, 2));
        let mask = Tensor::ones([4, 4, 2, 1, 1]);
        let be = block_enable_from_mask(&mask, &grid);
        assert_eq!(be.enabled_fraction(), 1.0);
    }

    #[test]
    fn block_enable_detects_zero_blocks() {
        let grid = BlockGrid::new(4, 4, 2, BlockShape::new(2, 2));
        let mut mask = Tensor::ones([4, 4, 2, 1, 1]);
        grid.zero_block(&mut mask, 0, 0);
        let be = block_enable_from_mask(&mask, &grid);
        assert!(!be.is_enabled(0, 0));
        assert_eq!(be.enabled_blocks(), 3);
    }

    #[test]
    fn magnitude_block_prune_achieves_block_sparsity() {
        let (mut net, targets) = setup();
        let pm = magnitude_block_prune(&mut net, BlockShape::new(4, 4), &targets, KeepRule::Round);
        let mask = pm.mask("conv2_1a.spatial").unwrap();
        assert!(mask.enabled_fraction() <= 0.5 + 1e-9);
    }

    #[test]
    fn unstructured_same_weight_sparsity_but_dense_blocks() {
        let (mut net, targets) = setup();
        let pm = unstructured_prune(&mut net, BlockShape::new(4, 4), &targets);
        // At 50% random-ish elementwise sparsity essentially every block
        // retains at least one weight -> no blocks can be skipped.
        let mask = pm.mask("conv2_1a.spatial").unwrap();
        assert!(
            mask.enabled_fraction() > 0.9,
            "unstructured sparsity unexpectedly produced skippable blocks"
        );
        // But the weights themselves are 50% zero.
        let mut zeros = 0usize;
        let mut total = 0usize;
        net.visit_params(&mut |p| {
            if p.name == "conv2_1a.spatial.weight" {
                zeros = p.value.count_zeros();
                total = p.value.len();
            }
        });
        assert!((zeros as f64 / total as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn channel_prune_zeroes_whole_channels() {
        let (mut net, targets) = setup();
        let _ = channel_prune(&mut net, BlockShape::new(2, 4), &targets);
        let mut ok = false;
        net.visit_params(&mut |p| {
            if p.name == "conv2_1a.spatial.weight" {
                let s = p.value.shape();
                let (m, rest) = (s.dim(0), s.len() / s.dim(0));
                let zero_channels = (0..m)
                    .filter(|&ch| {
                        p.value.data()[ch * rest..(ch + 1) * rest]
                            .iter()
                            .all(|&x| x == 0.0)
                    })
                    .count();
                ok = zero_channels == m / 2;
            }
        });
        assert!(ok, "expected exactly half the channels zeroed");
    }
}
