//! Euclidean projection onto the blockwise sparsity set (Eq. 13).
//!
//! The projection of a tensor onto `S_i` (at most `E_i` non-zero blocks,
//! Eq. 1) keeps the `E_i` blocks with the largest L2 norm and zeroes the
//! rest — exactly the paper's Z-minimisation step: sort block norms,
//! take the percentile threshold `zeta_i`, zero everything below it.

use crate::blocks::BlockGrid;
use p3d_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// How the kept-block count `E_i` is derived from `(1 - eta) * B`.
///
/// Equation (1) is an inequality (`E_i <= (1-eta) * B`), which leaves the
/// rounding open; the choice affects the achieved pruning rate on layers
/// whose block count is small. [`KeepRule::Round`] is the default and
/// lands closest to the paper's reported 9.85x / 4.85x stage rates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeepRule {
    /// `E = floor((1-eta) * B)` — strictly satisfies Eq. 1.
    Floor,
    /// `E = round((1-eta) * B)` — closest to the paper's reported rates.
    #[default]
    Round,
    /// `E = ceil((1-eta) * B)` — most conservative.
    Ceil,
}

impl KeepRule {
    /// The number of blocks kept for `total` blocks at pruning ratio
    /// `eta`. Always at least 1 (a layer is never pruned away entirely)
    /// and at most `total`.
    pub fn kept(&self, total: usize, eta: f64) -> usize {
        assert!((0.0..=1.0).contains(&eta), "eta must be in [0, 1]");
        let raw = (1.0 - eta) * total as f64;
        let k = match self {
            KeepRule::Floor => raw.floor(),
            KeepRule::Round => raw.round(),
            KeepRule::Ceil => raw.ceil(),
        } as usize;
        k.clamp(1, total)
    }
}

/// The outcome of a projection: which blocks survived.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProjectionResult {
    /// Keep flags in flat block order (`true` = block survives).
    pub keep: Vec<bool>,
    /// The threshold `zeta` on squared block norms (norms `<` zeta are
    /// pruned). Zero when nothing is pruned.
    pub threshold_sq: f64,
    /// Number of kept blocks `E_i`.
    pub kept_blocks: usize,
}

/// Selects the blocks to keep: the `kept` largest by squared norm.
/// Deterministic under ties (lower block index wins).
pub fn select_blocks(norms_sq: &[f64], kept: usize) -> ProjectionResult {
    assert!(kept >= 1 && kept <= norms_sq.len(), "kept out of range");
    let mut order: Vec<usize> = (0..norms_sq.len()).collect();
    // Descending by norm, ascending by index on ties.
    order.sort_by(|&a, &b| {
        norms_sq[b]
            .partial_cmp(&norms_sq[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut keep = vec![false; norms_sq.len()];
    for &idx in order.iter().take(kept) {
        keep[idx] = true;
    }
    let threshold_sq = if kept == norms_sq.len() {
        0.0
    } else {
        norms_sq[order[kept - 1]]
    };
    ProjectionResult {
        keep,
        threshold_sq,
        kept_blocks: kept,
    }
}

/// Projects `tensor` onto the sparsity set in place, returning the
/// surviving blocks. This is Eq. 13 applied to `W + V`.
pub fn project_inplace(
    tensor: &mut Tensor,
    grid: &BlockGrid,
    eta: f64,
    rule: KeepRule,
) -> ProjectionResult {
    let norms = grid.block_norms_sq(tensor);
    let kept = rule.kept(grid.num_blocks(), eta);
    let result = select_blocks(&norms, kept);
    for (idx, &keep) in result.keep.iter().enumerate() {
        if !keep {
            let (bi, bj) = grid.block_coords(idx);
            grid.zero_block(tensor, bi, bj);
        }
    }
    result
}

/// Non-destructive variant of [`project_inplace`].
pub fn project(
    tensor: &Tensor,
    grid: &BlockGrid,
    eta: f64,
    rule: KeepRule,
) -> (Tensor, ProjectionResult) {
    let mut out = tensor.clone();
    let result = project_inplace(&mut out, grid, eta, rule);
    (out, result)
}

/// Verifies membership in the sparsity set `S_i` (Eq. 1): the number of
/// non-zero blocks is at most `max_blocks`.
pub fn satisfies_sparsity(tensor: &Tensor, grid: &BlockGrid, max_blocks: usize) -> bool {
    let norms = grid.block_norms_sq(tensor);
    norms.iter().filter(|&&n| n > 0.0).count() <= max_blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockShape;
    use p3d_tensor::TensorRng;

    #[test]
    fn keep_rules() {
        assert_eq!(KeepRule::Floor.kept(24, 0.9), 2);
        assert_eq!(KeepRule::Round.kept(24, 0.9), 2);
        assert_eq!(KeepRule::Ceil.kept(24, 0.9), 3);
        assert_eq!(KeepRule::Round.kept(18, 0.9), 2);
        // Never zero.
        assert_eq!(KeepRule::Floor.kept(2, 0.9), 1);
        // Never more than total.
        assert_eq!(KeepRule::Ceil.kept(4, 0.0), 4);
    }

    #[test]
    fn select_keeps_largest() {
        let norms = vec![1.0, 9.0, 4.0, 16.0];
        let r = select_blocks(&norms, 2);
        assert_eq!(r.keep, vec![false, true, false, true]);
        assert_eq!(r.threshold_sq, 9.0);
        assert_eq!(r.kept_blocks, 2);
    }

    #[test]
    fn select_ties_deterministic() {
        let norms = vec![5.0, 5.0, 5.0, 5.0];
        let r = select_blocks(&norms, 2);
        assert_eq!(r.keep, vec![true, true, false, false]);
    }

    #[test]
    fn projection_achieves_sparsity() {
        let mut rng = TensorRng::seed(3);
        let mut w = rng.uniform_tensor([8, 8, 1, 3, 3], -1.0, 1.0);
        let grid = BlockGrid::for_weight(&w, BlockShape::new(4, 2));
        let r = project_inplace(&mut w, &grid, 0.75, KeepRule::Floor);
        assert_eq!(r.kept_blocks, 2); // floor(0.25 * 8) = 2
        assert!(satisfies_sparsity(&w, &grid, 2));
        // Pruned weights are exactly zero; kept blocks untouched.
        let zeros = w.count_zeros();
        assert_eq!(zeros, grid.total_params() - grid.kept_params(&r.keep));
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = TensorRng::seed(4);
        let w = rng.uniform_tensor([4, 4, 1, 2, 2], -1.0, 1.0);
        let grid = BlockGrid::for_weight(&w, BlockShape::new(2, 2));
        let (once, r1) = project(&w, &grid, 0.5, KeepRule::Round);
        let (twice, r2) = project(&once, &grid, 0.5, KeepRule::Round);
        assert_eq!(once, twice);
        assert_eq!(r1.keep, r2.keep);
    }

    #[test]
    fn projection_minimises_distance() {
        // Among all subsets of the right size, the projection must keep
        // the largest-norm blocks, i.e. minimise ||W - Z||_F.
        let w = Tensor::from_vec(
            [2, 2, 1, 1, 1],
            vec![0.1, 2.0, -3.0, 0.5],
        );
        let grid = BlockGrid::for_weight(&w, BlockShape::new(1, 1));
        let (z, r) = project(&w, &grid, 0.5, KeepRule::Round);
        // Keeps |2.0| and |-3.0| blocks.
        assert_eq!(r.keep, vec![false, true, true, false]);
        let dist = (&w - &z).frobenius_norm_sq();
        assert!((dist - (0.1f32 * 0.1 + 0.5 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn eta_zero_keeps_everything() {
        let mut rng = TensorRng::seed(5);
        let w = rng.uniform_tensor([4, 4, 1, 1, 1], -1.0, 1.0);
        let grid = BlockGrid::for_weight(&w, BlockShape::new(2, 2));
        let (z, r) = project(&w, &grid, 0.0, KeepRule::Round);
        assert_eq!(z, w);
        assert!(r.keep.iter().all(|&k| k));
        assert_eq!(r.threshold_sq, 0.0);
    }
}
