//! Blockwise partitioning of 5-D convolution weight tensors.
//!
//! The paper's pruning unit (Fig. 1): a weight tensor
//! `W in R^{M x N x Kd x Kr x Kc}` is viewed as an `M x N` grid of 3D
//! kernels and divided into blocks of `Tm x Tn` kernels — precisely the
//! granularity of the FPGA weight buffer — giving
//! `ceil(M/Tm) x ceil(N/Tn)` blocks. Edge blocks are smaller when `Tm`/`Tn`
//! do not divide `M`/`N`.

use p3d_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The block size `(Tm, Tn)` shared by the pruner and the FPGA design.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockShape {
    /// Output-channel tile `Tm`.
    pub tm: usize,
    /// Input-channel tile `Tn`.
    pub tn: usize,
}

impl BlockShape {
    /// Creates a block shape.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(tm: usize, tn: usize) -> Self {
        assert!(tm > 0 && tn > 0, "block shape must be positive");
        BlockShape { tm, tn }
    }
}

/// The block grid of one conv weight tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockGrid {
    /// Output channels `M`.
    pub m: usize,
    /// Input channels `N`.
    pub n: usize,
    /// Kernel volume `Kd * Kr * Kc`.
    pub kernel_volume: usize,
    /// Block shape.
    pub shape: BlockShape,
}

impl BlockGrid {
    /// Builds the grid for a `[M, N, Kd, Kr, Kc]` weight tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-5.
    pub fn for_weight(weight: &Tensor, shape: BlockShape) -> Self {
        let s = weight.shape();
        assert_eq!(s.rank(), 5, "expected [M, N, Kd, Kr, Kc], got {s}");
        BlockGrid {
            m: s.dim(0),
            n: s.dim(1),
            kernel_volume: s.dim(2) * s.dim(3) * s.dim(4),
            shape,
        }
    }

    /// Builds a grid from raw dimensions.
    pub fn new(m: usize, n: usize, kernel_volume: usize, shape: BlockShape) -> Self {
        assert!(m > 0 && n > 0 && kernel_volume > 0, "degenerate grid");
        BlockGrid {
            m,
            n,
            kernel_volume,
            shape,
        }
    }

    /// Block rows `ceil(M/Tm)`.
    pub fn rows(&self) -> usize {
        self.m.div_ceil(self.shape.tm)
    }

    /// Block columns `ceil(N/Tn)`.
    pub fn cols(&self) -> usize {
        self.n.div_ceil(self.shape.tn)
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.rows() * self.cols()
    }

    /// The output-channel range `[start, end)` of block row `bi`.
    pub fn row_range(&self, bi: usize) -> (usize, usize) {
        assert!(bi < self.rows(), "block row {bi} out of range");
        let start = bi * self.shape.tm;
        (start, (start + self.shape.tm).min(self.m))
    }

    /// The input-channel range `[start, end)` of block column `bj`.
    pub fn col_range(&self, bj: usize) -> (usize, usize) {
        assert!(bj < self.cols(), "block column {bj} out of range");
        let start = bj * self.shape.tn;
        (start, (start + self.shape.tn).min(self.n))
    }

    /// Number of weights in block `(bi, bj)` — smaller for edge blocks.
    pub fn block_len(&self, bi: usize, bj: usize) -> usize {
        let (m0, m1) = self.row_range(bi);
        let (n0, n1) = self.col_range(bj);
        (m1 - m0) * (n1 - n0) * self.kernel_volume
    }

    /// Flat block index of `(bi, bj)` in row-major block order.
    pub fn block_index(&self, bi: usize, bj: usize) -> usize {
        bi * self.cols() + bj
    }

    /// Inverse of [`BlockGrid::block_index`].
    pub fn block_coords(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.num_blocks(), "block index out of range");
        (idx / self.cols(), idx % self.cols())
    }

    /// Calls `f` with the flat tensor offset of every weight in block
    /// `(bi, bj)`.
    pub fn for_each_offset(&self, bi: usize, bj: usize, mut f: impl FnMut(usize)) {
        let (m0, m1) = self.row_range(bi);
        let (n0, n1) = self.col_range(bj);
        let kv = self.kernel_volume;
        for m in m0..m1 {
            for n in n0..n1 {
                let base = (m * self.n + n) * kv;
                for off in base..base + kv {
                    f(off);
                }
            }
        }
    }

    /// The squared L2 norm of every block, in flat block order.
    pub fn block_norms_sq(&self, weight: &Tensor) -> Vec<f64> {
        assert_eq!(
            weight.len(),
            self.m * self.n * self.kernel_volume,
            "weight length does not match grid"
        );
        let data = weight.data();
        let kv = self.kernel_volume;
        // Per-kernel squared norms first, then aggregate per block.
        let mut kernel_sq = vec![0.0f64; self.m * self.n];
        for (k, sq) in kernel_sq.iter_mut().enumerate() {
            let base = k * kv;
            *sq = data[base..base + kv]
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum();
        }
        let mut out = vec![0.0f64; self.num_blocks()];
        for bi in 0..self.rows() {
            let (m0, m1) = self.row_range(bi);
            for bj in 0..self.cols() {
                let (n0, n1) = self.col_range(bj);
                let mut sum = 0.0f64;
                for m in m0..m1 {
                    for n in n0..n1 {
                        sum += kernel_sq[m * self.n + n];
                    }
                }
                out[self.block_index(bi, bj)] = sum;
            }
        }
        out
    }

    /// Zeroes every weight of block `(bi, bj)` in place.
    pub fn zero_block(&self, weight: &mut Tensor, bi: usize, bj: usize) {
        let data = weight.data_mut();
        self.for_each_offset(bi, bj, |off| data[off] = 0.0);
    }

    /// Builds a 0/1 elementwise mask from a per-block keep vector.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != num_blocks()`.
    pub fn mask_from_blocks(&self, keep: &[bool]) -> Tensor {
        assert_eq!(keep.len(), self.num_blocks(), "keep vector length mismatch");
        let mut mask = Tensor::zeros([self.m, self.n, self.kernel_volume, 1, 1]);
        let data = mask.data_mut();
        for bi in 0..self.rows() {
            for bj in 0..self.cols() {
                if keep[self.block_index(bi, bj)] {
                    self.for_each_offset(bi, bj, |off| data[off] = 1.0);
                }
            }
        }
        mask
    }

    /// Number of weights covered by kept blocks.
    pub fn kept_params(&self, keep: &[bool]) -> usize {
        assert_eq!(keep.len(), self.num_blocks(), "keep vector length mismatch");
        let mut total = 0;
        for bi in 0..self.rows() {
            for bj in 0..self.cols() {
                if keep[self.block_index(bi, bj)] {
                    total += self.block_len(bi, bj);
                }
            }
        }
        total
    }

    /// Total weight count `M * N * kernel_volume`.
    pub fn total_params(&self) -> usize {
        self.m * self.n * self.kernel_volume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_tensor::TensorRng;

    fn grid_4x6() -> BlockGrid {
        // M=4, N=6, kernel 2; blocks of 2x4 -> 2x2 grid with edge cols.
        BlockGrid::new(4, 6, 2, BlockShape::new(2, 4))
    }

    #[test]
    fn grid_dimensions() {
        let g = grid_4x6();
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.row_range(0), (0, 2));
        assert_eq!(g.col_range(1), (4, 6)); // edge block: 2 wide, not 4
        assert_eq!(g.block_len(0, 0), 2 * 4 * 2);
        assert_eq!(g.block_len(0, 1), 2 * 2 * 2);
        assert_eq!(g.total_params(), 48);
    }

    #[test]
    fn paper_block_counts() {
        // conv2 spatial layer: M=144, N=64 with (Tm,Tn)=(64,8):
        // ceil(144/64) x ceil(64/8) = 3 x 8 = 24 blocks (Section III-A).
        let g = BlockGrid::new(144, 64, 9, BlockShape::new(64, 8));
        assert_eq!(g.num_blocks(), 24);
        // Edge row covers channels 128..144.
        assert_eq!(g.row_range(2), (128, 144));
    }

    #[test]
    fn offsets_cover_tensor_exactly_once() {
        let g = grid_4x6();
        let mut seen = vec![0usize; g.total_params()];
        for bi in 0..g.rows() {
            for bj in 0..g.cols() {
                g.for_each_offset(bi, bj, |off| seen[off] += 1);
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "offsets not a partition");
    }

    #[test]
    fn block_norms_known_values() {
        let g = BlockGrid::new(2, 2, 1, BlockShape::new(1, 1));
        let w = Tensor::from_vec([2, 2, 1, 1, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let norms = g.block_norms_sq(&w);
        assert_eq!(norms, vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn block_norms_sum_to_frobenius() {
        let mut rng = TensorRng::seed(5);
        let w = rng.uniform_tensor([6, 5, 2, 3, 3], -1.0, 1.0);
        let g = BlockGrid::for_weight(&w, BlockShape::new(4, 2));
        let total: f64 = g.block_norms_sq(&w).iter().sum();
        assert!((total - w.frobenius_norm_sq() as f64).abs() < 1e-3);
    }

    #[test]
    fn zero_block_zeroes_only_that_block() {
        let g = grid_4x6();
        let mut w = Tensor::ones([4, 6, 2, 1, 1]);
        g.zero_block(&mut w, 1, 1);
        assert_eq!(w.count_zeros(), g.block_len(1, 1));
        // Norm of the zeroed block is 0, others positive.
        let norms = g.block_norms_sq(&w);
        assert_eq!(norms[g.block_index(1, 1)], 0.0);
        assert!(norms[0] > 0.0);
    }

    #[test]
    fn mask_matches_kept_params() {
        let g = grid_4x6();
        let keep = vec![true, false, false, true];
        let mask = g.mask_from_blocks(&keep);
        let ones = mask.data().iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, g.kept_params(&keep));
        assert_eq!(ones, g.block_len(0, 0) + g.block_len(1, 1));
    }

    #[test]
    fn coords_roundtrip() {
        let g = grid_4x6();
        for idx in 0..g.num_blocks() {
            let (bi, bj) = g.block_coords(idx);
            assert_eq!(g.block_index(bi, bj), idx);
        }
    }
}
