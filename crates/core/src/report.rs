//! Pruning reports: the "after pruning" columns and rate columns of the
//! paper's Table II, computed from a [`NetworkSpec`] and a
//! [`PrunedModel`].

use crate::mask_export::PrunedModel;
use p3d_models::{NetworkSpec, SpecError};

/// One stage row of Table II.
#[derive(Clone, Debug, PartialEq)]
pub struct StageRow {
    /// Stage label (`"conv2_x"`, ...).
    pub stage: String,
    /// Conv parameters before pruning.
    pub params_before: usize,
    /// Conv parameters after pruning.
    pub params_after: usize,
    /// Conv ops (2 x MACs) before pruning.
    pub ops_before: usize,
    /// Conv ops after pruning (skipped blocks execute no MACs).
    pub ops_after: usize,
    /// `true` if any layer of the stage is pruned.
    pub pruned: bool,
}

impl StageRow {
    /// Parameter pruning rate `before / after` (1.0 for unpruned stages).
    pub fn param_rate(&self) -> f64 {
        self.params_before as f64 / self.params_after.max(1) as f64
    }

    /// Operation pruning rate `before / after`.
    pub fn ops_rate(&self) -> f64 {
        self.ops_before as f64 / self.ops_after.max(1) as f64
    }
}

/// The full pruning report (Table II).
#[derive(Clone, Debug, PartialEq)]
pub struct PruningReport {
    /// Network name.
    pub network: String,
    /// Per-stage rows in network order.
    pub stages: Vec<StageRow>,
}

impl PruningReport {
    /// Builds the report.
    ///
    /// Layers present in `pruned` use their block-enable maps: surviving
    /// parameters are counted blockwise (edge blocks at true size) and
    /// surviving ops proportionally to surviving `(m, n)` kernel pairs.
    pub fn build(spec: &NetworkSpec, pruned: &PrunedModel) -> Result<Self, SpecError> {
        let insts = spec.conv_instances()?;
        let order = spec.stages()?;
        let mut stages: Vec<StageRow> = order
            .iter()
            .map(|s| StageRow {
                stage: s.clone(),
                params_before: 0,
                params_after: 0,
                ops_before: 0,
                ops_after: 0,
                pruned: false,
            })
            .collect();
        for inst in &insts {
            let row = stages
                .iter_mut()
                .find(|r| r.stage == inst.spec.stage)
                .expect("stage present");
            let params = inst.spec.params();
            let ops = inst.ops();
            row.params_before += params;
            row.ops_before += ops;
            match pruned.mask(&inst.spec.name) {
                Some(mask) => {
                    row.pruned = true;
                    row.params_after += mask.kept_params();
                    // Ops scale with surviving kernel pairs: every kernel
                    // contributes kernel_volume MACs per output position.
                    let kept_kernels = mask.kept_kernels();
                    let total_kernels = inst.spec.out_channels * inst.spec.in_channels;
                    row.ops_after +=
                        (ops as u128 * kept_kernels as u128 / total_kernels as u128) as usize;
                }
                None => {
                    row.params_after += params;
                    row.ops_after += ops;
                }
            }
        }
        Ok(PruningReport {
            network: spec.name.clone(),
            stages,
        })
    }

    /// Whole-model totals `(params_before, params_after, ops_before,
    /// ops_after)`.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        self.stages.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.params_before,
                acc.1 + r.params_after,
                acc.2 + r.ops_before,
                acc.3 + r.ops_after,
            )
        })
    }

    /// Whole-model operation pruning rate (the paper reports 3.18x).
    pub fn total_ops_rate(&self) -> f64 {
        let (_, _, before, after) = self.totals();
        before as f64 / after.max(1) as f64
    }

    /// Whole-model parameter pruning rate (the paper reports 1.05x).
    pub fn total_param_rate(&self) -> f64 {
        let (before, after, _, _) = self.totals();
        before as f64 / after.max(1) as f64
    }

    /// Renders the report in the layout of Table II.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>22} {:>9} {:>22} {:>9}\n",
            "Stage", "Params (M) bef/aft", "Rate", "Ops (G) bef/aft", "Rate"
        ));
        for r in &self.stages {
            let (params, prate, ops, orate) = if r.pruned {
                (
                    format!(
                        "{:.3}/{:.3}",
                        r.params_before as f64 / 1e6,
                        r.params_after as f64 / 1e6
                    ),
                    format!("{:.2}x", r.param_rate()),
                    format!(
                        "{:.2}/{:.2}",
                        r.ops_before as f64 / 1e9,
                        r.ops_after as f64 / 1e9
                    ),
                    format!("{:.2}x", r.ops_rate()),
                )
            } else {
                (
                    format!("{:.3}", r.params_before as f64 / 1e6),
                    "N/A".into(),
                    format!("{:.2}", r.ops_before as f64 / 1e9),
                    "N/A".into(),
                )
            };
            out.push_str(&format!(
                "{:<10} {:>22} {:>9} {:>22} {:>9}\n",
                r.stage, params, prate, ops, orate
            ));
        }
        let (pb, pa, ob, oa) = self.totals();
        out.push_str(&format!(
            "{:<10} {:>22} {:>9} {:>22} {:>9}\n",
            "Total",
            format!("{:.2}/{:.2}", pb as f64 / 1e6, pa as f64 / 1e6),
            format!("{:.2}x", self.total_param_rate()),
            format!("{:.2}/{:.2}", ob as f64 / 1e9, oa as f64 / 1e9),
            format!("{:.2}x", self.total_ops_rate()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{BlockGrid, BlockShape};
    use crate::mask_export::LayerBlockMask;
    use crate::projection::KeepRule;
    use p3d_models::r2plus1d::r2plus1d_18;

    /// Builds the paper's pruned model analytically: every conv2_x layer
    /// at eta=0.9 and every conv3_x layer at eta=0.8, keeping the
    /// highest-index blocks (which blocks survive does not matter for
    /// the counts when blocks are equal-sized; edge blocks make small
    /// differences that the rate tolerances absorb).
    fn paper_pruned(shape: BlockShape, rule: KeepRule) -> (PruningReport, PrunedModel) {
        let spec = r2plus1d_18(101);
        let mut pm = PrunedModel {
            block_shape: Some(shape),
            layers: Default::default(),
        };
        for inst in spec.conv_instances().unwrap() {
            let eta = match inst.spec.stage.as_str() {
                "conv2_x" => 0.9,
                "conv3_x" => 0.8,
                _ => continue,
            };
            let grid = BlockGrid::new(
                inst.spec.out_channels,
                inst.spec.in_channels,
                inst.spec.kernel.0 * inst.spec.kernel.1 * inst.spec.kernel.2,
                shape,
            );
            let kept = rule.kept(grid.num_blocks(), eta);
            let mut keep = vec![false; grid.num_blocks()];
            for k in keep.iter_mut().take(kept) {
                *k = true;
            }
            pm.insert(inst.spec.name.clone(), LayerBlockMask::new(grid, keep));
        }
        (PruningReport::build(&spec, &pm).unwrap(), pm)
    }

    #[test]
    fn table2_rates_reproduce() {
        // Paper Table II with (Tm, Tn) = (64, 8): conv2_x 9.85x params,
        // conv3_x 4.85x, total ops 3.18x. Block-count rounding makes the
        // exact rates rule-dependent; Round lands within ~25%.
        let (report, _) = paper_pruned(BlockShape::new(64, 8), KeepRule::Round);
        let conv2 = report.stages.iter().find(|r| r.stage == "conv2_x").unwrap();
        let conv3 = report.stages.iter().find(|r| r.stage == "conv3_x").unwrap();
        assert!(
            (7.0..13.0).contains(&conv2.param_rate()),
            "conv2_x rate {} not ~10x",
            conv2.param_rate()
        );
        assert!(
            (4.0..6.5).contains(&conv3.param_rate()),
            "conv3_x rate {} not ~5x",
            conv3.param_rate()
        );
        let total = report.total_ops_rate();
        assert!(
            (2.8..3.7).contains(&total),
            "total ops rate {total} not ~3.18x"
        );
        // Whole-model parameter rate is tiny (conv4/conv5 dominate): 1.05x.
        let prate = report.total_param_rate();
        assert!((1.02..1.10).contains(&prate), "param rate {prate}");
    }

    #[test]
    fn unpruned_stages_marked_na() {
        let (report, _) = paper_pruned(BlockShape::new(64, 8), KeepRule::Round);
        let conv1 = report.stages.iter().find(|r| r.stage == "conv1").unwrap();
        assert!(!conv1.pruned);
        assert_eq!(conv1.params_before, conv1.params_after);
        let conv5 = report.stages.iter().find(|r| r.stage == "conv5_x").unwrap();
        assert!(!conv5.pruned);
    }

    #[test]
    fn dense_model_rates_are_one() {
        let spec = r2plus1d_18(101);
        let report = PruningReport::build(&spec, &PrunedModel::dense()).unwrap();
        assert!((report.total_ops_rate() - 1.0).abs() < 1e-12);
        assert!((report.total_param_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_with_na() {
        let (report, _) = paper_pruned(BlockShape::new(64, 8), KeepRule::Round);
        let t = report.to_table();
        assert!(t.contains("N/A"));
        assert!(t.contains("conv2_x"));
        assert!(t.contains("Total"));
    }

    #[test]
    fn tn16_configuration_also_works() {
        let (report, _) = paper_pruned(BlockShape::new(64, 16), KeepRule::Round);
        assert!(report.total_ops_rate() > 2.5);
    }
}
