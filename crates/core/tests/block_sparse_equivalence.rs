//! Block-sparse execution must be invisible except for speed.
//!
//! After pruning installs block-enable maps, `Conv3d` runs its forward
//! through the block-CSR kernel (`gemm_bs_into`), which skips pruned
//! `Tm x Tn` blocks outright. Because the skipped blocks are exactly
//! zero in the masked weights and the enabled `k` ranges are visited in
//! the dense kernel's canonical order, every activation — and therefore
//! every gradient, every optimizer step, and every logit — must be
//! **bitwise identical** to a network that kept the dense path.
//!
//! These tests build two networks from the same seed, prune both with
//! the same deterministic scheme, strip the sparse patterns from one,
//! and drive both through forward/backward/update lockstep.

use p3d_core::{magnitude_block_prune, BlockShape, KeepRule, PruneTarget};
use p3d_models::{build_network, r2plus1d_micro};
use p3d_nn::{Layer, LayerExt, Mode, Sequential};
use p3d_tensor::parallel::set_thread_override;
use p3d_tensor::{Tensor, TensorRng};

fn targets() -> Vec<PruneTarget> {
    vec![
        PruneTarget {
            layer: "conv2_1a.spatial".into(),
            eta: 0.7,
        },
        PruneTarget {
            layer: "conv2_1b.spatial".into(),
            eta: 0.5,
        },
    ]
}

/// Builds a pruned network; `sparse` controls whether the block-sparse
/// execution patterns stay installed.
fn pruned_net(seed: u64, sparse: bool) -> Sequential {
    let spec = r2plus1d_micro(4);
    let mut net = build_network(&spec, seed);
    let pm = magnitude_block_prune(&mut net, BlockShape::new(4, 4), &targets(), KeepRule::Round);
    assert!(
        pm.kept_fraction() < 0.9,
        "pruning did not bite; test would be vacuous"
    );
    if !sparse {
        // Strip the patterns installed by the pruner: dense reference.
        net.install_block_patterns(&mut |_| None);
    }
    net
}

fn snapshot(net: &mut Sequential) -> Vec<(String, Tensor)> {
    net.snapshot_params()
}

#[test]
fn forward_bitwise_identical_to_dense() {
    let mut dense = pruned_net(77, false);
    let mut sparse = pruned_net(77, true);
    let mut rng = TensorRng::seed(5);
    for threads in [1, 3] {
        set_thread_override(Some(threads));
        let x = rng.uniform_tensor([2, 1, 6, 16, 16], -1.0, 1.0);
        let yd = dense.forward(&x, Mode::Eval);
        let ys = sparse.forward(&x, Mode::Eval);
        assert_eq!(
            yd.data(),
            ys.data(),
            "eval forward diverged at {threads} threads"
        );
    }
    set_thread_override(None);
}

#[test]
fn train_step_bitwise_identical_to_dense() {
    let mut dense = pruned_net(123, false);
    let mut sparse = pruned_net(123, true);
    let mut rng = TensorRng::seed(9);
    set_thread_override(Some(2));
    for step in 0..3 {
        let x = rng.uniform_tensor([2, 1, 6, 16, 16], -1.0, 1.0);
        let yd = dense.forward(&x, Mode::Train);
        let ys = sparse.forward(&x, Mode::Train);
        assert_eq!(yd.data(), ys.data(), "train forward diverged at step {step}");

        let g = rng.uniform_tensor(yd.shape(), -0.1, 0.1);
        let gd = dense.backward(&g);
        let gs = sparse.backward(&g);
        assert_eq!(gd.data(), gs.data(), "input grads diverged at step {step}");

        // SGD-style update + mask re-application, applied identically.
        for net in [&mut dense, &mut sparse] {
            net.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.05, &g);
                p.apply_mask();
                p.zero_grad();
            });
        }
        let sd = snapshot(&mut dense);
        let ss = snapshot(&mut sparse);
        for ((nd, vd), (ns, vs)) in sd.iter().zip(&ss) {
            assert_eq!(nd, ns);
            assert_eq!(
                vd.data(),
                vs.data(),
                "param {nd} diverged after update {step}"
            );
        }
    }
    set_thread_override(None);
}

#[test]
fn reinstalling_none_restores_dense_path() {
    // install(None) then install(map) round-trips: still bitwise equal.
    let mut net = pruned_net(31, true);
    let mut rng = TensorRng::seed(2);
    let x = rng.uniform_tensor([1, 1, 6, 16, 16], -1.0, 1.0);
    let with_sparse = net.forward(&x, Mode::Eval);
    net.install_block_patterns(&mut |_| None);
    let without = net.forward(&x, Mode::Eval);
    assert_eq!(with_sparse.data(), without.data());
}
