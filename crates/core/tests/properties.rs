//! Property-based tests for the blockwise pruning machinery.

use p3d_core::{
    project, select_blocks, BlockGrid, BlockShape, KeepRule, LayerBlockMask,
};
use p3d_tensor::TensorRng;
use proptest::prelude::*;

fn grid_strategy() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
    // (M, N, kernel_volume, Tm, Tn)
    (1usize..24, 1usize..24, 1usize..12, 1usize..9, 1usize..9)
}

proptest! {
    #[test]
    fn blocks_partition_the_tensor((m, n, kv, tm, tn) in grid_strategy()) {
        let grid = BlockGrid::new(m, n, kv, BlockShape::new(tm, tn));
        // Sum of block lengths equals total parameters.
        let mut sum = 0usize;
        for bi in 0..grid.rows() {
            for bj in 0..grid.cols() {
                sum += grid.block_len(bi, bj);
            }
        }
        prop_assert_eq!(sum, grid.total_params());
        prop_assert_eq!(grid.num_blocks(), grid.rows() * grid.cols());
    }

    #[test]
    fn block_norms_account_for_all_mass(
        (m, n, kv, tm, tn) in grid_strategy(),
        seed in 0u64..1000,
    ) {
        let grid = BlockGrid::new(m, n, kv, BlockShape::new(tm, tn));
        let mut rng = TensorRng::seed(seed);
        let w = rng.uniform_tensor([m, n, kv, 1, 1], -1.0, 1.0);
        let norms = grid.block_norms_sq(&w);
        let total: f64 = norms.iter().sum();
        prop_assert!((total - w.frobenius_norm_sq() as f64).abs() < 1e-2 * total.max(1.0));
    }

    #[test]
    fn keep_rules_ordered((total, eta_pct) in (1usize..200, 0usize..100)) {
        let eta = eta_pct as f64 / 100.0;
        let f = KeepRule::Floor.kept(total, eta);
        let r = KeepRule::Round.kept(total, eta);
        let c = KeepRule::Ceil.kept(total, eta);
        prop_assert!(f <= r && r <= c, "{f} {r} {c}");
        prop_assert!((1..=total).contains(&f));
        prop_assert!((1..=total).contains(&c));
        // Ceil never violates Eq.1 by more than one block.
        prop_assert!(c as f64 <= (1.0 - eta) * total as f64 + 1.0);
    }

    #[test]
    fn selection_keeps_exactly_k(norms in prop::collection::vec(0.0f64..100.0, 1..64), k_seed in 0usize..64) {
        let k = (k_seed % norms.len()) + 1;
        let r = select_blocks(&norms, k.min(norms.len()));
        prop_assert_eq!(r.keep.iter().filter(|&&x| x).count(), r.kept_blocks);
        // Every kept block's norm >= every pruned block's norm.
        let kept_min = r.keep.iter().zip(&norms).filter(|(k, _)| **k).map(|(_, &n)| n).fold(f64::INFINITY, f64::min);
        let pruned_max = r.keep.iter().zip(&norms).filter(|(k, _)| !**k).map(|(_, &n)| n).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(kept_min >= pruned_max || r.keep.iter().all(|&x| x));
    }

    #[test]
    fn projection_is_idempotent_and_feasible(
        (m, n, kv, tm, tn) in grid_strategy(),
        eta_pct in 0usize..95,
        seed in 0u64..500,
    ) {
        let eta = eta_pct as f64 / 100.0;
        let grid = BlockGrid::new(m, n, kv, BlockShape::new(tm, tn));
        let mut rng = TensorRng::seed(seed);
        let w = rng.uniform_tensor([m, n, kv, 1, 1], -1.0, 1.0);
        let (z1, r1) = project(&w, &grid, eta, KeepRule::Round);
        let (z2, r2) = project(&z1, &grid, eta, KeepRule::Round);
        prop_assert_eq!(&z1, &z2);
        prop_assert_eq!(r1.kept_blocks, r2.kept_blocks);
        // Projection never increases any entry's magnitude.
        for (a, b) in z1.data().iter().zip(w.data()) {
            prop_assert!(a.abs() <= b.abs() + 1e-7);
        }
        // Distance property: z is no farther than zeroing any other set
        // of the same size (spot-check against full zeroing).
        let dist = (&w - &z1).frobenius_norm_sq();
        prop_assert!(dist <= w.frobenius_norm_sq() + 1e-5);
    }

    #[test]
    fn bitmap_roundtrip_arbitrary(
        (m, n, kv, tm, tn) in grid_strategy(),
        seed in 0u64..500,
    ) {
        let grid = BlockGrid::new(m, n, kv, BlockShape::new(tm, tn));
        let mut rng = TensorRng::seed(seed);
        let keep: Vec<bool> = (0..grid.num_blocks()).map(|_| rng.below(2) == 1).collect();
        let mask = LayerBlockMask::new(grid, keep.clone());
        let back = LayerBlockMask::from_bitmap(grid, &mask.to_bitmap());
        prop_assert_eq!(back.keep, keep);
    }

    #[test]
    fn enabled_rows_sum_to_enabled_blocks(
        (m, n, kv, tm, tn) in grid_strategy(),
        seed in 0u64..500,
    ) {
        let grid = BlockGrid::new(m, n, kv, BlockShape::new(tm, tn));
        let mut rng = TensorRng::seed(seed);
        let keep: Vec<bool> = (0..grid.num_blocks()).map(|_| rng.below(3) > 0).collect();
        let mask = LayerBlockMask::new(grid, keep);
        let by_rows: usize = (0..grid.rows()).map(|bi| mask.enabled_in_row(bi)).sum();
        prop_assert_eq!(by_rows, mask.enabled_blocks());
    }

    #[test]
    fn mask_kept_params_matches_elementwise(
        (m, n, kv, tm, tn) in grid_strategy(),
        seed in 0u64..500,
    ) {
        let grid = BlockGrid::new(m, n, kv, BlockShape::new(tm, tn));
        let mut rng = TensorRng::seed(seed);
        let keep: Vec<bool> = (0..grid.num_blocks()).map(|_| rng.below(2) == 1).collect();
        let mask_tensor = grid.mask_from_blocks(&keep);
        let ones = mask_tensor.data().iter().filter(|&&x| x == 1.0).count();
        prop_assert_eq!(ones, grid.kept_params(&keep));
    }
}

/// Projection optimality on exhaustive small cases: the kept set found by
/// the projection minimises ||W - Z||_F over all sets of the same size.
#[test]
fn projection_is_optimal_exhaustively() {
    let mut rng = TensorRng::seed(9);
    for _ in 0..20 {
        let w = rng.uniform_tensor([4, 2, 3, 1, 1], -1.0, 1.0);
        let grid = BlockGrid::for_weight(&w, BlockShape::new(2, 1));
        let (z, r) = project(&w, &grid, 0.5, KeepRule::Round);
        let dist = (&w - &z).frobenius_norm_sq();
        let norms = grid.block_norms_sq(&w);
        let b = grid.num_blocks();
        // Enumerate all subsets of size kept_blocks.
        for subset in 0u32..(1 << b) {
            if subset.count_ones() as usize != r.kept_blocks {
                continue;
            }
            let removed: f64 = (0..b)
                .filter(|&i| subset & (1 << i) == 0)
                .map(|i| norms[i])
                .sum();
            assert!(
                dist as f64 <= removed + 1e-4,
                "projection suboptimal: {dist} > {removed}"
            );
        }
    }
}
