//! Kill-and-resume equivalence for the ADMM pipeline.
//!
//! The invariant under test — the whole point of the `TrainState`
//! checkpoints — is *bitwise* equivalence: a run killed at any epoch and
//! resumed from its saved state (through a real file on disk, so the
//! atomic-save + checksummed-read path is exercised too) must produce
//! exactly the weights, duals, and losses of the run that was never
//! killed. "Close" is not good enough; a resume that drifts by one ULP
//! silently changes which blocks survive pruning.
//!
//! Kill points cover the interesting positions of the ADMM double loop:
//! mid-round (the restored dual must NOT be rescaled again), the last
//! epoch of a round (the rollover must apply the next round's rescale
//! exactly once), and mid-second-round (after a rescale already
//! happened). A separate test covers the masked-retraining phase, where
//! the pruning masks and the LR-schedule position must travel too.

use p3d_core::{
    capture_admm_train_state, capture_retrain_state, restore_admm_train_state,
    restore_retrain_state, AdmmConfig, AdmmProgress, AdmmPruner, BlockShape, KeepRule, PruneTarget,
};
use p3d_nn::{Checkpoint, CrossEntropyLoss, Layer, LrSchedule, Sgd, TrainState, Trainer};
use p3d_video_data::{GeneratorConfig, SyntheticVideo};
use std::path::PathBuf;

fn micro_data() -> SyntheticVideo {
    let cfg = GeneratorConfig {
        frames: 6,
        height: 16,
        width: 16,
        num_classes: 3,
        noise_std: 0.02,
        speed: (1.0, 2.0),
        radius: (2.0, 3.0),
        distractors: 0,
    };
    SyntheticVideo::generate(&cfg, 24, 5)
}

fn micro_net(seed: u64) -> p3d_nn::Sequential {
    p3d_models::build_network(&p3d_models::r2plus1d_micro(3), seed)
}

fn micro_trainer(seed: u64) -> Trainer {
    Trainer::new(
        CrossEntropyLoss::with_smoothing(0.1),
        Sgd::new(0.02, 0.9, 1e-4),
        8,
        seed,
    )
}

fn micro_targets() -> Vec<PruneTarget> {
    vec![
        PruneTarget {
            layer: "conv2_1a.spatial".into(),
            eta: 0.5,
        },
        PruneTarget {
            layer: "conv2_1b.temporal".into(),
            eta: 0.5,
        },
    ]
}

fn micro_config() -> AdmmConfig {
    AdmmConfig {
        rho_schedule: vec![1.0, 5.0],
        epochs_per_round: 3,
        epochs_per_admm_update: 1,
        keep_rule: KeepRule::Round,
        epsilon: 0.2,
    }
}

fn tmp_state_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("p3d-resume-test-{}-{tag}.state", std::process::id()))
}

/// Bitwise network equality via captured checkpoints (float `==` would
/// miss mask tensors and choke on any NaN lanes).
fn assert_nets_bits_eq(a: &mut dyn Layer, b: &mut dyn Layer, what: &str) {
    let ca = Checkpoint::capture(a);
    let cb = Checkpoint::capture(b);
    assert_eq!(
        ca.tensors.keys().collect::<Vec<_>>(),
        cb.tensors.keys().collect::<Vec<_>>(),
        "{what}: tensor sets differ"
    );
    for (name, ta) in &ca.tensors {
        let tb = &cb.tensors[name];
        assert_eq!(ta.shape(), tb.shape(), "{what}: shape of {name}");
        let same = ta
            .data()
            .iter()
            .zip(tb.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{what}: data bits of {name} differ");
    }
}

fn assert_pruners_bits_eq(a: &AdmmPruner, b: &AdmmPruner, what: &str) {
    let mut ta = std::collections::BTreeMap::new();
    let mut tb = std::collections::BTreeMap::new();
    a.export_state(&mut ta);
    b.export_state(&mut tb);
    assert_eq!(
        ta.keys().collect::<Vec<_>>(),
        tb.keys().collect::<Vec<_>>(),
        "{what}: ADMM state keys differ"
    );
    for (name, x) in &ta {
        let y = &tb[name];
        assert_eq!(x.shape(), y.shape(), "{what}: shape of {name}");
        let same = x
            .data()
            .iter()
            .zip(y.data())
            .all(|(p, q)| p.to_bits() == q.to_bits());
        assert!(same, "{what}: ADMM tensor {name} differs");
    }
}

fn bits(losses: &[f32]) -> Vec<u32> {
    losses.iter().map(|l| l.to_bits()).collect()
}

/// Runs ADMM training to completion twice — once uninterrupted, once
/// killed after `(kill_round, kill_epoch)` and resumed through a state
/// file into *differently seeded* fresh objects — and demands bitwise
/// identity of weights, duals, and the loss trace.
fn check_admm_kill_point(kill_round: usize, kill_epoch: usize, data: &SyntheticVideo) {
    let what = format!("kill at round {kill_round}, epoch {kill_epoch}");

    // Reference: never interrupted.
    let mut ref_net = micro_net(11);
    let mut ref_trainer = micro_trainer(3);
    let mut ref_pruner = AdmmPruner::new(&mut ref_net, BlockShape::new(4, 4), &micro_targets(), micro_config());
    let ref_log = ref_pruner.admm_train(&mut ref_net, &mut ref_trainer, data);
    let ref_losses: Vec<f32> = ref_log.rounds.iter().flat_map(|r| r.losses.clone()).collect();

    // Interrupted: identical seeds, killed at the chosen epoch. The tick
    // fires after the epoch's dual update, i.e. at the exact state a
    // `--save-every` checkpoint of a real driver would capture.
    let path = tmp_state_path(&format!("admm-{kill_round}-{kill_epoch}"));
    let mut net1 = micro_net(11);
    let mut trainer1 = micro_trainer(3);
    let mut pruner1 = AdmmPruner::new(&mut net1, BlockShape::new(4, 4), &micro_targets(), micro_config());
    let mut part1_losses = Vec::new();
    let log1 = pruner1.admm_train_from(
        &mut net1,
        &mut trainer1,
        data,
        AdmmProgress::start(),
        &mut |t| {
            part1_losses.push(t.stats.loss);
            if t.progress.round == kill_round && t.progress.epoch == kill_epoch {
                let st = capture_admm_train_state(t.network, t.trainer, t.pruner, t.progress);
                st.save(&path).expect("save state file");
                return false; // simulated crash
            }
            true
        },
    );
    assert!(
        !log1.rounds.is_empty() && path.exists(),
        "{what}: kill point never reached"
    );

    // Resume into freshly built, differently seeded objects: every bit
    // must come from the state file, none from the fresh initialisation.
    let loaded = TrainState::load(&path).expect("load state file");
    let mut net2 = micro_net(77);
    let mut trainer2 = micro_trainer(99);
    let mut pruner2 = AdmmPruner::new(&mut net2, BlockShape::new(4, 4), &micro_targets(), micro_config());
    let start = restore_admm_train_state(&loaded, &mut net2, &mut trainer2, &mut pruner2)
        .expect("restore state");
    assert_eq!((start.round, start.epoch), (kill_round, kill_epoch), "{what}");
    let log2 = pruner2.admm_train_from(
        &mut net2,
        &mut trainer2,
        data,
        start,
        &mut |t| {
            part1_losses.push(t.stats.loss);
            true
        },
    );

    // Bitwise identity of everything observable.
    assert_nets_bits_eq(&mut ref_net, &mut net2, &what);
    assert_pruners_bits_eq(&ref_pruner, &pruner2, &what);
    assert_eq!(bits(&ref_losses), bits(&part1_losses), "{what}: loss trace");
    // The continuation's own log must also match the reference tail.
    let cont_losses: Vec<f32> = log2.rounds.iter().flat_map(|r| r.losses.clone()).collect();
    let done = ref_losses.len() - cont_losses.len();
    assert_eq!(
        bits(&ref_losses[done..]),
        bits(&cont_losses),
        "{what}: continuation log"
    );

    // Pruning decisions downstream must agree too.
    let ref_model = ref_pruner.hard_prune(&mut ref_net);
    let res_model = pruner2.hard_prune(&mut net2);
    assert_eq!(
        ref_model.kept_fraction().to_bits(),
        res_model.kept_fraction().to_bits(),
        "{what}: kept fraction"
    );
    assert_nets_bits_eq(&mut ref_net, &mut net2, &format!("{what}, after hard prune"));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn admm_resume_is_bitwise_identical_at_every_interesting_kill_point() {
    let data = micro_data();
    // Mid-round, end-of-round (rollover must rescale duals exactly
    // once), and mid-second-round (post-rescale state must round-trip).
    check_admm_kill_point(0, 2, &data);
    check_admm_kill_point(0, 3, &data);
    check_admm_kill_point(1, 1, &data);
}

#[test]
fn retrain_resume_is_bitwise_identical_and_keeps_masks() {
    let data = micro_data();
    let schedule = LrSchedule::WarmupCosine {
        base_lr: 0.02,
        warmup_epochs: 1,
        total_epochs: 4,
        min_lr: 1e-5,
    };

    // Shared setup: a briefly trained, hard-pruned network.
    let prepare = || {
        let mut net = micro_net(11);
        let mut trainer = micro_trainer(3);
        trainer.train_epoch(&mut net, &data, None);
        let mut pruner =
            AdmmPruner::new(&mut net, BlockShape::new(4, 4), &micro_targets(), micro_config());
        let _ = pruner.hard_prune(&mut net);
        (net, trainer, pruner)
    };

    // Reference: 4 uninterrupted masked-retraining epochs.
    let (mut ref_net, mut ref_trainer, ref_pruner) = prepare();
    let ref_losses = AdmmPruner::retrain(&mut ref_net, &mut ref_trainer, &data, &schedule, 4);

    // Interrupted after 2 epochs; state goes through a real file.
    let path = tmp_state_path("retrain");
    let (mut net1, mut trainer1, _) = prepare();
    let mut losses = Vec::new();
    AdmmPruner::retrain_from(&mut net1, &mut trainer1, &data, &schedule, 4, 0, &mut |t| {
        losses.push(t.stats.loss);
        if t.epoch == 1 {
            capture_retrain_state(t.network, t.trainer, &schedule, t.epoch + 1)
                .save(&path)
                .expect("save retrain state");
            return false;
        }
        true
    });

    // Fresh, differently seeded, *unpruned* objects: the masks must be
    // reinstalled purely from the `{param}.mask` tensors in the file.
    let loaded = TrainState::load(&path).expect("load retrain state");
    let mut net2 = micro_net(77);
    let mut trainer2 = micro_trainer(99);
    let (restored_schedule, done) =
        restore_retrain_state(&loaded, &mut net2, &mut trainer2).expect("restore retrain state");
    assert_eq!(done, 2);
    assert_eq!(restored_schedule.lr_at(3).to_bits(), schedule.lr_at(3).to_bits());
    let cont = AdmmPruner::retrain_from(
        &mut net2,
        &mut trainer2,
        &data,
        &restored_schedule,
        4,
        done,
        &mut |t| {
            losses.push(t.stats.loss);
            true
        },
    );
    assert_eq!(cont.len(), 2);

    assert_nets_bits_eq(&mut ref_net, &mut net2, "retrain resume");
    assert_eq!(bits(&ref_losses), bits(&losses), "retrain loss trace");
    // The masks survived the file round-trip: sparsity still holds.
    assert!(
        ref_pruner.verify_sparsity(&mut net2),
        "restored network violates the pruning constraint"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn restore_into_wrong_architecture_is_rejected() {
    let data = micro_data();
    let mut net = micro_net(11);
    let mut trainer = micro_trainer(3);
    let mut pruner =
        AdmmPruner::new(&mut net, BlockShape::new(4, 4), &micro_targets(), micro_config());
    let mut state = None;
    pruner.admm_train_from(&mut net, &mut trainer, &data, AdmmProgress::start(), &mut |t| {
        state = Some(capture_admm_train_state(t.network, t.trainer, t.pruner, t.progress));
        false
    });
    let state = state.expect("one tick");

    // Wrong model: different class count changes the head shape.
    let mut other = p3d_models::build_network(&p3d_models::r2plus1d_micro(5), 1);
    let mut other_trainer = micro_trainer(3);
    let mut other_pruner =
        AdmmPruner::new(&mut other, BlockShape::new(4, 4), &micro_targets(), micro_config());
    let err = restore_admm_train_state(&state, &mut other, &mut other_trainer, &mut other_pruner);
    assert!(err.is_err(), "architecture mismatch must be rejected");

    // Wrong trainer: different batch size changes the data order.
    let mut same = micro_net(11);
    let mut fat_trainer = Trainer::new(
        CrossEntropyLoss::with_smoothing(0.1),
        Sgd::new(0.02, 0.9, 1e-4),
        16, // batch size differs from the captured 8
        3,
    );
    let mut same_pruner =
        AdmmPruner::new(&mut same, BlockShape::new(4, 4), &micro_targets(), micro_config());
    let err = restore_admm_train_state(&state, &mut same, &mut fat_trainer, &mut same_pruner);
    assert!(err.is_err(), "batch-size mismatch must be rejected");

    // Wrong pruner: different block shape cannot adopt the saved grids.
    let mut same2 = micro_net(11);
    let mut same2_trainer = micro_trainer(3);
    let mut wide_pruner =
        AdmmPruner::new(&mut same2, BlockShape::new(8, 4), &micro_targets(), micro_config());
    let err = restore_admm_train_state(&state, &mut same2, &mut same2_trainer, &mut wide_pruner);
    assert!(err.is_err(), "block-shape mismatch must be rejected");
}
