//! The performance model of Section IV-B (Eqs. 19–25), extended with
//! block-enable awareness: pruned blocks skip their entire
//! load-and-compute iteration of loop L3, which is exactly how the
//! paper's hardware converts blockwise sparsity into wall-clock speedup.

use crate::config::{AcceleratorConfig, Ports, Tiling};
use p3d_core::{LayerBlockMask, PrunedModel};
use p3d_models::{ConvInstance, NetworkSpec, Node};
use serde::{Deserialize, Serialize};

/// Whether the design overlaps transfers with compute (Section IV-A:
/// "the double buffering technique is utilized to reduce the latency").
/// `Off` exists for the ablation bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DoubleBuffering {
    /// Transfers overlap compute: `t_L3 = max(t_wgt, t_in, t_comp)`.
    On,
    /// Fully serial: `t_L3 = t_wgt + t_in + t_comp`.
    Off,
}

/// Which term dominates `t_L3` for a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Weight loading dominates.
    WeightLoad,
    /// Input-feature loading dominates.
    InputLoad,
    /// The MAC array dominates (the desired regime).
    Compute,
}

/// Latency breakdown of one convolution layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerLatency {
    /// Layer name.
    pub name: String,
    /// Stage label.
    pub stage: String,
    /// Total cycles (Eq. 25, block-enable aware).
    pub cycles: u64,
    /// The `t_L3` bottleneck.
    pub bottleneck: Bottleneck,
    /// `(t_wgt, t_in, t_comp, t_out)` per-iteration cycle counts.
    pub terms: (u64, u64, u64, u64),
    /// Output-volume tiles `ceil(D/Td) * ceil(R/Tr) * ceil(C/Tc)`.
    pub spatial_tiles: u64,
    /// Weight blocks skipped thanks to pruning.
    pub blocks_skipped: u64,
    /// Weight blocks total (`ceil(M/Tm) * ceil(N/Tn)`).
    pub blocks_total: u64,
}

/// Latency of a whole network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkLatency {
    /// Per-conv-layer breakdown in execution order.
    pub layers: Vec<LayerLatency>,
    /// Cycles spent streaming fully-connected weights (memory-bound).
    pub fc_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
}

impl NetworkLatency {
    /// Milliseconds at the configuration's clock.
    pub fn ms(&self, config: &AcceleratorConfig) -> f64 {
        config.cycles_to_ms(self.total_cycles)
    }

    /// Throughput in GOPS for a given total operation count.
    pub fn gops(&self, total_ops: f64, config: &AcceleratorConfig) -> f64 {
        total_ops / (self.ms(config) * 1e6)
    }
}

/// Per-iteration transfer/compute cycle counts for one layer
/// (Eqs. 19–22).
pub fn iteration_terms(inst: &ConvInstance, tiling: &Tiling, ports: &Ports) -> (u64, u64, u64, u64) {
    let (kd, kr, kc) = inst.spec.kernel;
    let (sd, sr, sc) = inst.spec.stride;
    let t = tiling;
    let t_wgt = (t.tm * t.tn * kd * kr * kc).div_ceil(ports.wgt) as u64;
    let tdp = (t.td - 1) * sd + kd;
    let trp = (t.tr - 1) * sr + kr;
    let tcp = (t.tc - 1) * sc + kc;
    let t_in = (t.tn * tdp * trp * tcp).div_ceil(ports.input) as u64;
    let t_comp = (kd * kr * kc * t.td * t.tr * t.tc) as u64;
    let t_out = (t.tm * t.td * t.tr * t.tc).div_ceil(ports.output) as u64;
    (t_wgt, t_in, t_comp, t_out)
}

/// Per-iteration cycle terms for a tile of *actual* extents
/// `(td, tr, tc)` (edge tiles are smaller than the tiling: the HLS loop
/// bounds are runtime values, so partial tiles cost partial cycles).
/// Weight loads are tile-independent.
pub fn tile_terms(
    inst: &ConvInstance,
    tiling: &Tiling,
    ports: &Ports,
    actual: (usize, usize, usize),
) -> (u64, u64, u64, u64) {
    let (kd, kr, kc) = inst.spec.kernel;
    let (sd, sr, sc) = inst.spec.stride;
    let (td, tr, tc) = actual;
    let t_wgt = (tiling.tm * tiling.tn * kd * kr * kc).div_ceil(ports.wgt) as u64;
    let tdp = (td - 1) * sd + kd;
    let trp = (tr - 1) * sr + kr;
    let tcp = (tc - 1) * sc + kc;
    let t_in = (tiling.tn * tdp * trp * tcp).div_ceil(ports.input) as u64;
    let t_comp = (kd * kr * kc * td * tr * tc) as u64;
    let t_out = (tiling.tm * td * tr * tc).div_ceil(ports.output) as u64;
    (t_wgt, t_in, t_comp, t_out)
}

/// Latency of one convolution layer (Eqs. 23–25), with optional
/// block-enable mask. Edge tiles are charged their actual (smaller)
/// extents.
///
/// # Panics
///
/// Panics if the mask's grid does not match the layer dimensions.
pub fn conv_latency(
    inst: &ConvInstance,
    config: &AcceleratorConfig,
    mask: Option<&LayerBlockMask>,
    buffering: DoubleBuffering,
) -> LayerLatency {
    let t = &config.tiling;
    let (m, n) = (inst.output.0, inst.input.0);
    let (d, r, c) = (inst.output.1, inst.output.2, inst.output.3);
    let rows = m.div_ceil(t.tm);
    let cols = n.div_ceil(t.tn);
    if let Some(mask) = mask {
        assert_eq!(
            (mask.grid.rows(), mask.grid.cols()),
            (rows, cols),
            "mask grid mismatch for {}",
            inst.spec.name
        );
    }

    let spatial_tiles = (d.div_ceil(t.td) * r.div_ceil(t.tr) * c.div_ceil(t.tc)) as u64;
    let mut cycles: u64 = 0;
    let mut skipped: u64 = 0;
    let mut last_t_out: u64 = 0;
    for d0 in (0..d).step_by(t.td) {
        for r0 in (0..r).step_by(t.tr) {
            for c0 in (0..c).step_by(t.tc) {
                let actual = (
                    t.td.min(d - d0),
                    t.tr.min(r - r0),
                    t.tc.min(c - c0),
                );
                let (t_wgt, t_in, t_comp, t_out) =
                    tile_terms(inst, t, &config.ports, actual);
                last_t_out = t_out;
                let t_l3 = match buffering {
                    DoubleBuffering::On => t_wgt.max(t_in).max(t_comp),
                    DoubleBuffering::Off => t_wgt + t_in + t_comp,
                };
                for bi in 0..rows {
                    let enabled = match mask {
                        Some(mask) => mask.enabled_in_row(bi),
                        None => cols,
                    } as u64;
                    skipped += cols as u64 - enabled;
                    cycles += match buffering {
                        DoubleBuffering::On => {
                            if enabled == 0 {
                                t_out
                            } else {
                                // Eq. 24: the pipeline drains one extra
                                // t_comp, and the store must fit under the
                                // next row's work.
                                (t_l3 * enabled + t_comp).max(t_out)
                            }
                        }
                        DoubleBuffering::Off => t_l3 * enabled + t_out,
                    };
                }
            }
        }
    }

    // Eq. 25: the final store is not overlapped under double buffering.
    if buffering == DoubleBuffering::On {
        cycles += last_t_out;
    }

    // For reporting, classify the bottleneck from the full-tile terms.
    let (t_wgt, t_in, t_comp, _) = iteration_terms(inst, t, &config.ports);

    let bottleneck = if t_comp >= t_wgt && t_comp >= t_in {
        Bottleneck::Compute
    } else if t_wgt >= t_in {
        Bottleneck::WeightLoad
    } else {
        Bottleneck::InputLoad
    };

    LayerLatency {
        name: inst.spec.name.clone(),
        stage: inst.spec.stage.clone(),
        cycles,
        bottleneck,
        terms: iteration_terms(inst, t, &config.ports),
        spatial_tiles,
        blocks_skipped: skipped,
        blocks_total: (rows * cols) as u64 * spatial_tiles,
    }
}

/// End-to-end network latency: every conv layer through the tiled engine
/// plus FC weight streaming (FC layers are memory-bound: their weights
/// are used once each, so cycles = weights / p_wgt).
pub fn network_latency(
    spec: &NetworkSpec,
    config: &AcceleratorConfig,
    pruned: &PrunedModel,
    buffering: DoubleBuffering,
) -> NetworkLatency {
    let instances = spec.conv_instances().expect("spec must shape-check");
    let layers: Vec<LayerLatency> = instances
        .iter()
        .map(|inst| conv_latency(inst, config, pruned.mask(&inst.spec.name), buffering))
        .collect();

    let mut fc_cycles = 0u64;
    collect_fc(&spec.nodes, &mut |out_f, in_f| {
        let weights = out_f * in_f;
        let load = weights.div_ceil(config.ports.wgt) as u64;
        let compute = weights.div_ceil(config.tiling.macs_per_cycle()) as u64;
        fc_cycles += load.max(compute);
    });

    let total_cycles = layers.iter().map(|l| l.cycles).sum::<u64>() + fc_cycles;
    NetworkLatency {
        layers,
        fc_cycles,
        total_cycles,
    }
}

fn collect_fc(nodes: &[Node], f: &mut impl FnMut(usize, usize)) {
    for node in nodes {
        match node {
            Node::Linear {
                out_features,
                in_features,
                ..
            } => f(*out_features, *in_features),
            Node::Residual { main, shortcut } => {
                collect_fc(main, f);
                if let Some(s) = shortcut {
                    collect_fc(s, f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_core::{BlockGrid, BlockShape};
    use p3d_models::c3d::c3d;
    use p3d_models::r2plus1d::r2plus1d_18;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_tn8()
    }

    fn c3d_conv2a() -> ConvInstance {
        c3d(101)
            .conv_instances()
            .unwrap()
            .into_iter()
            .find(|i| i.spec.name == "conv2a")
            .unwrap()
    }

    #[test]
    fn iteration_terms_conv2a() {
        // conv2a: 3x3x3 stride 1. t_comp = 27*4*14*14 = 21168.
        // t_wgt = 64*8*27/4 = 3456. t_in = 8*6*16*16/4 = 3072.
        let inst = c3d_conv2a();
        let (t_wgt, t_in, t_comp, t_out) = iteration_terms(&inst, &cfg().tiling, &cfg().ports);
        assert_eq!(t_comp, 21168);
        assert_eq!(t_wgt, 3456);
        assert_eq!(t_in, 3072);
        assert_eq!(t_out, (64 * 784) / 4);
    }

    #[test]
    fn conv2a_is_compute_bound_and_latency_matches_hand_calc() {
        let inst = c3d_conv2a();
        let lat = conv_latency(&inst, &cfg(), None, DoubleBuffering::On);
        assert_eq!(lat.bottleneck, Bottleneck::Compute);
        // Hand calculation: t_L2 = 21168*8 + 21168 = 190512 per block row;
        // rows = ceil(128/64) = 2; spatial tiles = 4*4*4 = 64.
        // total = 64 * 2 * 190512 + t_out.
        let expected = 64u64 * 2 * 190_512 + 12_544;
        assert_eq!(lat.cycles, expected);
        assert_eq!(lat.spatial_tiles, 64);
        assert_eq!(lat.blocks_skipped, 0);
    }

    #[test]
    fn pruned_rows_skip_l3_iterations() {
        let inst = c3d_conv2a();
        // Mask: keep 2 of 8 column blocks in row 0, all in row 1.
        let grid = BlockGrid::new(128, 64, 27, BlockShape::new(64, 8));
        let mut keep = vec![true; grid.num_blocks()];
        for bj in 2..8 {
            keep[grid.block_index(0, bj)] = false;
        }
        let mask = LayerBlockMask::new(grid, keep);
        let lat = conv_latency(&inst, &cfg(), Some(&mask), DoubleBuffering::On);
        let dense = conv_latency(&inst, &cfg(), None, DoubleBuffering::On);
        // Row 0: 2 iterations instead of 8.
        let expected = 64u64 * ((21_168 * 2 + 21_168) + (21_168 * 8 + 21_168)) + 12_544;
        assert_eq!(lat.cycles, expected);
        assert!(lat.cycles < dense.cycles);
        assert_eq!(lat.blocks_skipped, 6 * 64);
    }

    #[test]
    fn fully_pruned_row_still_stores() {
        let inst = c3d_conv2a();
        let grid = BlockGrid::new(128, 64, 27, BlockShape::new(64, 8));
        let mut keep = vec![true; grid.num_blocks()];
        for bj in 0..8 {
            keep[grid.block_index(0, bj)] = false;
        }
        let mask = LayerBlockMask::new(grid, keep);
        let lat = conv_latency(&inst, &cfg(), Some(&mask), DoubleBuffering::On);
        let expected = 64u64 * (12_544 + (21_168 * 8 + 21_168)) + 12_544;
        assert_eq!(lat.cycles, expected);
    }

    #[test]
    fn double_buffering_always_helps() {
        let spec = r2plus1d_18(101);
        let on = network_latency(&spec, &cfg(), &PrunedModel::dense(), DoubleBuffering::On);
        let off = network_latency(&spec, &cfg(), &PrunedModel::dense(), DoubleBuffering::Off);
        assert!(off.total_cycles > on.total_cycles);
        // The paper's whole point of overlapping: meaningful gain.
        assert!(off.total_cycles as f64 > 1.1 * on.total_cycles as f64);
    }

    #[test]
    fn c3d_latency_in_paper_regime() {
        // Paper Table IV: unpruned C3D on our accelerator, Tn=8: 826 ms.
        // The analytic model should land in the high-hundreds of ms.
        let spec = c3d(101);
        let lat = network_latency(&spec, &cfg(), &PrunedModel::dense(), DoubleBuffering::On);
        let ms = lat.ms(&cfg());
        assert!(
            (500.0..1100.0).contains(&ms),
            "C3D latency {ms} ms out of regime"
        );
    }

    #[test]
    fn r2plus1d_unpruned_slower_than_c3d() {
        // Paper: unpruned R(2+1)D 1044 ms vs C3D 826 ms at Tn=8 (R(2+1)D
        // has more ops: 83 G vs 77 G, and less regular kernels).
        let r = network_latency(
            &r2plus1d_18(101),
            &cfg(),
            &PrunedModel::dense(),
            DoubleBuffering::On,
        );
        let c = network_latency(&c3d(101), &cfg(), &PrunedModel::dense(), DoubleBuffering::On);
        assert!(r.total_cycles > c.total_cycles);
    }

    #[test]
    fn tn16_faster_than_tn8() {
        // Table IV: 487 vs 826 ms (C3D), 234 vs 386 (pruned R(2+1)D).
        let spec = c3d(101);
        let l8 = network_latency(&spec, &cfg(), &PrunedModel::dense(), DoubleBuffering::On);
        let cfg16 = AcceleratorConfig::paper_tn16();
        let l16 = network_latency(&spec, &cfg16, &PrunedModel::dense(), DoubleBuffering::On);
        let ratio = l8.total_cycles as f64 / l16.total_cycles as f64;
        assert!(
            (1.4..2.1).contains(&ratio),
            "Tn=16 speedup {ratio} out of expected range"
        );
    }

    #[test]
    fn fc_cycles_counted() {
        let spec = c3d(101);
        let lat = network_latency(&spec, &cfg(), &PrunedModel::dense(), DoubleBuffering::On);
        // fc6 alone has 8192*4096 weights at 4 words/cycle.
        assert!(lat.fc_cycles >= (8192 * 4096 / 4) as u64);
    }
}
