//! The resource model of Section IV-B (Eqs. 14–18) plus the
//! partition-aware BRAM counting and DSP/LUT/FF estimates calibrated to
//! Table III.

use crate::config::{AcceleratorConfig, Board, Tiling};
use p3d_models::ConvInstance;
use serde::{Deserialize, Serialize};

/// `K_size`: the largest kernel volume over the network's conv layers
/// (Eq. 17, first line). Buffers are sized for the worst layer so one
/// bitstream serves the whole network.
pub fn k_size(instances: &[ConvInstance]) -> usize {
    instances
        .iter()
        .map(|i| i.spec.kernel.0 * i.spec.kernel.1 * i.spec.kernel.2)
        .max()
        .unwrap_or(1)
}

/// `I_size`: the largest input-tile volume over the network's conv
/// layers (Eq. 17, second line): `prod_x ((T_x - 1) * S_x + K_x)`.
pub fn i_size(instances: &[ConvInstance], tiling: &Tiling) -> usize {
    instances
        .iter()
        .map(|i| {
            let td = (tiling.td - 1) * i.spec.stride.0 + i.spec.kernel.0;
            let tr = (tiling.tr - 1) * i.spec.stride.1 + i.spec.kernel.1;
            let tc = (tiling.tc - 1) * i.spec.stride.2 + i.spec.kernel.2;
            td * tr * tc
        })
        .max()
        .unwrap_or(1)
}

/// Buffer sizes in 16-bit words (Eqs. 14–16, including double buffering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferWords {
    /// Output buffer `B_out = 2 * Tm * Td * Tr * Tc`.
    pub output: usize,
    /// Input buffer `B_in = 2 * Tn * I_size`.
    pub input: usize,
    /// Weight buffer `B_wgt = 2 * Tm * Tn * K_size`.
    pub weight: usize,
}

impl BufferWords {
    /// Computes the three buffer sizes for a network and tiling.
    pub fn for_network(instances: &[ConvInstance], tiling: &Tiling) -> Self {
        BufferWords {
            output: 2 * tiling.tm * tiling.out_tile_volume(),
            input: 2 * tiling.tn * i_size(instances, tiling),
            weight: 2 * tiling.tm * tiling.tn * k_size(instances),
        }
    }

    /// Total words.
    pub fn total(&self) -> usize {
        self.output + self.input + self.weight
    }
}

/// Estimated resource usage of one accelerator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// DSP slices: `Tm * Tn` MAC units plus a calibrated overhead for
    /// address generation and post-processing.
    pub dsps: usize,
    /// BRAM36 count under Eq. 18's aggregate-capacity model.
    pub bram36_aggregate: usize,
    /// BRAM36 count under the partition-aware model (see
    /// [`estimate_resources`]); this is the one comparable to Table III.
    pub bram36_partitioned: f64,
    /// Estimated LUTs (linear fit to Table III).
    pub luts: usize,
    /// Estimated flip-flops (linear fit to Table III).
    pub ffs: usize,
    /// The buffer words behind the BRAM numbers.
    pub buffers: BufferWords,
}

/// DSP overhead beyond the `Tm x Tn` MAC array, calibrated to Table III
/// (695 - 512 = 183 and 1215 - 1024 = 191 suggest ~187).
pub const DSP_OVERHEAD: usize = 187;

/// Half a BRAM36 (one BRAM18) in bits.
const BRAM18_BITS: usize = 18 * 1024;
/// A full BRAM36 in bits.
const BRAM36_BITS: usize = 36 * 1024;

fn banked_bram36(banks: usize, bits_per_bank: usize) -> f64 {
    // Vivado maps a bank of <= 18 Kb to half a BRAM36; larger banks take
    // ceil(bits / 36Kb) full BRAM36s (cascaded).
    if bits_per_bank <= BRAM18_BITS {
        banks as f64 * 0.5
    } else {
        (banks * bits_per_bank.div_ceil(BRAM36_BITS)) as f64
    }
}

/// Estimates the resources of `config` for the given network.
///
/// Two BRAM numbers are produced:
///
/// * **aggregate** — Eq. 18 verbatim: total bits over 36 Kb blocks. A
///   lower bound that ignores banking.
/// * **partitioned** — models the array partitioning the design needs
///   for parallel access (Section IV-A: "array partition is performed in
///   corresponding dimensions of the buffers"): the weight buffer is
///   split into `2 x Tm x Tn` banks (double buffering x full unroll),
///   the output buffer into `2 x Tm` banks, the input buffer into
///   `2 x Tn` banks, plus a single-buffered `Tm`-banked shortcut buffer
///   for the residual additions of R(2+1)D. Each bank occupies at least
///   half a BRAM36 — this granularity, not raw capacity, is what makes
///   Table III's BRAM count (710.5 of 912) so much larger than Eq. 18
///   suggests.
pub fn estimate_resources(instances: &[ConvInstance], config: &AcceleratorConfig) -> ResourceEstimate {
    let t = &config.tiling;
    let buffers = BufferWords::for_network(instances, t);
    let bits = config.data_bits;

    let bram_aggregate = (buffers.total() * bits).div_ceil(BRAM36_BITS);

    let ks = k_size(instances);
    let is = i_size(instances, t);
    let weight_banks = 2 * t.tm * t.tn;
    let output_banks = 2 * t.tm;
    let input_banks = 2 * t.tn;
    let shortcut_banks = t.tm;
    let partitioned = banked_bram36(weight_banks, ks * bits)
        + banked_bram36(output_banks, t.out_tile_volume() * bits)
        + banked_bram36(input_banks, is * bits)
        + banked_bram36(shortcut_banks, t.out_tile_volume() * bits);

    let macs = t.macs_per_cycle();
    ResourceEstimate {
        dsps: macs + DSP_OVERHEAD,
        bram36_aggregate: bram_aggregate,
        bram36_partitioned: partitioned,
        // Linear fits through Table III's two design points:
        // LUT: 74k @ 512 MACs, 148k @ 1024 -> ~144.5 LUT/MAC.
        luts: (144.5 * macs as f64) as usize,
        // FF: 51k @ 512, 76k @ 1024 -> 48.8 FF/MAC + 26k base.
        ffs: (48.8 * macs as f64 + 26_000.0) as usize,
        buffers,
    }
}

/// Whether the estimate fits a board. BRAM uses the partitioned number
/// with a 1.35x tolerance: Vivado maps small banks that exceed the BRAM
/// budget to distributed (LUT) RAM, which is exactly what the paper's
/// `(64,16)` design point does — it reports 100% BRAM (912/912) although
/// a pure-BRAM banking of its buffers needs ~1.3x that.
pub fn fits(est: &ResourceEstimate, board: &Board) -> bool {
    est.dsps <= board.dsps
        && est.bram36_partitioned <= board.bram36 as f64 * 1.35
        && est.luts <= board.luts
        && est.ffs <= board.ffs
}

/// Utilisation percentages against a board (DSP, BRAM, LUT, FF).
pub fn utilization(est: &ResourceEstimate, board: &Board) -> (f64, f64, f64, f64) {
    (
        est.dsps as f64 / board.dsps as f64 * 100.0,
        est.bram36_partitioned / board.bram36 as f64 * 100.0,
        est.luts as f64 / board.luts as f64 * 100.0,
        est.ffs as f64 / board.ffs as f64 * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use p3d_models::r2plus1d::r2plus1d_18;

    fn r2p1d_instances() -> Vec<ConvInstance> {
        r2plus1d_18(101).conv_instances().unwrap()
    }

    #[test]
    fn k_and_i_size_for_r2plus1d() {
        let insts = r2p1d_instances();
        // Largest kernel volume: the 1x7x7 stem -> 49.
        assert_eq!(k_size(&insts), 49);
        // Largest input tile: the 1x1x1 shortcut convs with stride
        // (2,2,2): ((4-1)*2+1) x ((14-1)*2+1)^2 = 7 x 27 x 27 = 5103
        // (the 1x7x7 stem needs 4 x 33 x 33 = 4356, slightly less).
        let t = Tiling::paper_tn8();
        assert_eq!(i_size(&insts, &t), 7 * 27 * 27);
    }

    #[test]
    fn buffer_words_equations() {
        let insts = r2p1d_instances();
        let t = Tiling::paper_tn8();
        let b = BufferWords::for_network(&insts, &t);
        assert_eq!(b.output, 2 * 64 * 784);
        assert_eq!(b.input, 2 * 8 * 5103);
        assert_eq!(b.weight, 2 * 64 * 8 * 49);
        assert_eq!(b.total(), b.output + b.input + b.weight);
    }

    #[test]
    fn dsp_estimate_matches_table3() {
        let insts = r2p1d_instances();
        let est8 = estimate_resources(&insts, &AcceleratorConfig::paper_tn8());
        let est16 = estimate_resources(&insts, &AcceleratorConfig::paper_tn16());
        // Paper: 695 and 1215.
        assert!((est8.dsps as i64 - 695).abs() <= 10, "dsp8 {}", est8.dsps);
        assert!((est16.dsps as i64 - 1215).abs() <= 15, "dsp16 {}", est16.dsps);
    }

    #[test]
    fn bram_partitioned_near_table3() {
        let insts = r2p1d_instances();
        let est8 = estimate_resources(&insts, &AcceleratorConfig::paper_tn8());
        // Paper: 710.5 of 912. The partition-aware model must land in the
        // right regime (hundreds of BRAMs, dominated by banking).
        assert!(
            (550.0..850.0).contains(&est8.bram36_partitioned),
            "bram {}",
            est8.bram36_partitioned
        );
        // And hugely exceed the aggregate-capacity lower bound.
        assert!(est8.bram36_partitioned > 3.0 * est8.bram36_aggregate as f64);
    }

    #[test]
    fn tn16_saturates_bram() {
        let insts = r2p1d_instances();
        let est16 = estimate_resources(&insts, &AcceleratorConfig::paper_tn16());
        let board = Board::zcu102();
        // Paper reports 912/912 = 100%: the larger design saturates BRAM.
        assert!(
            est16.bram36_partitioned >= board.bram36 as f64 * 0.95,
            "bram16 {}",
            est16.bram36_partitioned
        );
    }

    #[test]
    fn both_paper_designs_fit_zcu102() {
        let insts = r2p1d_instances();
        let board = Board::zcu102();
        for cfg in [AcceleratorConfig::paper_tn8(), AcceleratorConfig::paper_tn16()] {
            let est = estimate_resources(&insts, &cfg);
            assert!(fits(&est, &board), "{:?} does not fit", cfg.tiling);
        }
    }

    #[test]
    fn utilization_percentages() {
        let insts = r2p1d_instances();
        let est = estimate_resources(&insts, &AcceleratorConfig::paper_tn8());
        let (dsp, _bram, lut, ff) = utilization(&est, &Board::zcu102());
        // Table III: 28% DSP, 27% LUT, 9% FF.
        assert!((dsp - 28.0).abs() < 2.0, "dsp% {dsp}");
        assert!((lut - 27.0).abs() < 3.0, "lut% {lut}");
        assert!((ff - 9.0).abs() < 2.0, "ff% {ff}");
    }

    #[test]
    fn bigger_tiling_needs_more_of_everything() {
        let insts = r2p1d_instances();
        let e8 = estimate_resources(&insts, &AcceleratorConfig::paper_tn8());
        let e16 = estimate_resources(&insts, &AcceleratorConfig::paper_tn16());
        assert!(e16.dsps > e8.dsps);
        assert!(e16.bram36_partitioned > e8.bram36_partitioned);
        assert!(e16.luts > e8.luts);
        assert!(e16.ffs > e8.ffs);
    }
}
