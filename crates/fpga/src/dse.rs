//! Design-space exploration over the tiling parameters (Section IV-B:
//! "the tiling size parameters need to be chosen delicately for
//! efficient resource utilization").

use crate::config::{AcceleratorConfig, Board, Ports, Tiling};
use crate::latency::{network_latency, DoubleBuffering};
use crate::resources::{estimate_resources, fits, ResourceEstimate};
use p3d_core::PrunedModel;
use p3d_models::NetworkSpec;
use serde::{Deserialize, Serialize};

/// The search space.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidate `Tm` values.
    pub tm: Vec<usize>,
    /// Candidate `Tn` values.
    pub tn: Vec<usize>,
    /// Candidate `Td` values.
    pub td: Vec<usize>,
    /// Candidate `Tr` values.
    pub tr: Vec<usize>,
    /// Candidate `Tc` values.
    pub tc: Vec<usize>,
}

impl SearchSpace {
    /// The space explored in the reproduction, a superset of the paper's
    /// two published points.
    pub fn standard() -> Self {
        SearchSpace {
            tm: vec![16, 32, 64, 128],
            tn: vec![4, 8, 16, 32],
            td: vec![2, 4, 8],
            tr: vec![7, 14, 28],
            tc: vec![7, 14, 28],
        }
    }

    /// Total number of candidate tilings.
    pub fn len(&self) -> usize {
        self.tm.len() * self.tn.len() * self.td.len() * self.tr.len() * self.tc.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn candidates(&self) -> Vec<Tiling> {
        let mut out = Vec::with_capacity(self.len());
        for &tm in &self.tm {
            for &tn in &self.tn {
                for &td in &self.td {
                    for &tr in &self.tr {
                        for &tc in &self.tc {
                            out.push(Tiling::new(tm, tn, td, tr, tc));
                        }
                    }
                }
            }
        }
        out
    }
}

/// One evaluated design point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The tiling.
    pub tiling: Tiling,
    /// Resource estimate.
    pub resources: ResourceEstimate,
    /// End-to-end cycles for the evaluated network.
    pub cycles: u64,
    /// Latency in milliseconds at the evaluated clock.
    pub ms: f64,
}

/// Exhaustively evaluates every feasible tiling for `spec` (with block
/// masks from `pruned`), returning design points sorted by latency.
/// Evaluation is parallelised across candidates via the workspace-wide
/// [`p3d_tensor::parallel`] layer (`P3D_THREADS` applies here too).
///
/// An empty search space — any axis with no candidates — returns an
/// empty result immediately. (Previously the chunking arithmetic
/// degenerated on an empty candidate list.)
pub fn explore(
    spec: &NetworkSpec,
    pruned: &PrunedModel,
    space: &SearchSpace,
    board: &Board,
    freq_mhz: f64,
) -> Vec<DesignPoint> {
    if space.is_empty() {
        return Vec::new();
    }
    let instances = spec.conv_instances().expect("spec must shape-check");
    let candidates = space.candidates();

    // One candidate per task; results come back in candidate order, so
    // the final sort (stable) is deterministic run-to-run.
    let evaluated: Vec<Option<DesignPoint>> =
        p3d_tensor::parallel::parallel_map(candidates.len(), |i| {
            let tiling = candidates[i];
            // Pruned block masks only apply when the tiling's (Tm, Tn)
            // equals the pruning block shape — the co-design constraint
            // of the paper.
            let mask_applicable = pruned
                .block_shape
                .map(|b| b.tm == tiling.tm && b.tn == tiling.tn)
                .unwrap_or(false);
            let effective = if mask_applicable {
                pruned.clone()
            } else {
                PrunedModel::dense()
            };
            let config = AcceleratorConfig {
                ports: Ports::for_tiling(&tiling),
                tiling,
                freq_mhz,
                data_bits: 16,
            };
            let est = estimate_resources(&instances, &config);
            if !fits(&est, board) {
                return None;
            }
            let lat = network_latency(spec, &config, &effective, DoubleBuffering::On);
            Some(DesignPoint {
                tiling,
                ms: config.cycles_to_ms(lat.total_cycles),
                cycles: lat.total_cycles,
                resources: est,
            })
        });

    let mut results: Vec<DesignPoint> = evaluated.into_iter().flatten().collect();
    results.sort_by_key(|a| a.cycles);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3d_models::r2plus1d::r2plus1d_18;

    fn tiny_space() -> SearchSpace {
        SearchSpace {
            tm: vec![32, 64],
            tn: vec![8, 16],
            td: vec![4],
            tr: vec![14],
            tc: vec![14],
        }
    }

    #[test]
    fn space_enumeration() {
        let s = SearchSpace::standard();
        assert_eq!(s.len(), 4 * 4 * 3 * 3 * 3);
        assert!(!s.is_empty());
        assert_eq!(tiny_space().candidates().len(), 4);
    }

    #[test]
    fn explore_returns_sorted_feasible_points() {
        let spec = r2plus1d_18(101);
        let points = explore(
            &spec,
            &PrunedModel::dense(),
            &tiny_space(),
            &Board::zcu102(),
            150.0,
        );
        assert!(!points.is_empty(), "no feasible designs found");
        for w in points.windows(2) {
            assert!(w[0].cycles <= w[1].cycles, "not sorted by latency");
        }
        for p in &points {
            assert!(p.resources.dsps <= Board::zcu102().dsps);
        }
    }

    #[test]
    fn more_parallelism_is_faster_when_feasible() {
        let spec = r2plus1d_18(101);
        let points = explore(
            &spec,
            &PrunedModel::dense(),
            &tiny_space(),
            &Board::zcu102(),
            150.0,
        );
        let find = |tm: usize, tn: usize| {
            points
                .iter()
                .find(|p| p.tiling.tm == tm && p.tiling.tn == tn)
                .map(|p| p.cycles)
        };
        if let (Some(c8), Some(c16)) = (find(64, 8), find(64, 16)) {
            assert!(c16 < c8, "Tn=16 should beat Tn=8");
        } else {
            panic!("expected both paper points to be feasible");
        }
    }

    #[test]
    fn empty_search_space_returns_no_points() {
        // Regression: an empty candidate list used to degenerate the
        // chunking arithmetic; now it early-returns.
        let spec = r2plus1d_18(101);
        let empty = SearchSpace {
            tm: vec![],
            tn: vec![8],
            td: vec![4],
            tr: vec![14],
            tc: vec![14],
        };
        assert!(empty.is_empty());
        let points = explore(
            &spec,
            &PrunedModel::dense(),
            &empty,
            &Board::zcu102(),
            150.0,
        );
        assert!(points.is_empty());
    }

    #[test]
    fn infeasible_board_yields_nothing() {
        let spec = r2plus1d_18(101);
        let tiny_board = Board {
            name: "tiny".into(),
            dsps: 10,
            bram36: 4,
            luts: 1000,
            ffs: 1000,
        };
        let points = explore(
            &spec,
            &PrunedModel::dense(),
            &tiny_space(),
            &tiny_board,
            150.0,
        );
        assert!(points.is_empty());
    }
}
