//! Accelerator and board configuration.

use p3d_core::BlockShape;
use serde::{Deserialize, Serialize};

/// The five-dimensional tiling `(Tm, Tn, Td, Tr, Tc)` of Section IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Output-channel tile `Tm`.
    pub tm: usize,
    /// Input-channel tile `Tn`.
    pub tn: usize,
    /// Temporal tile `Td`.
    pub td: usize,
    /// Height tile `Tr`.
    pub tr: usize,
    /// Width tile `Tc`.
    pub tc: usize,
}

impl Tiling {
    /// Creates a tiling.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(tm: usize, tn: usize, td: usize, tr: usize, tc: usize) -> Self {
        assert!(
            tm > 0 && tn > 0 && td > 0 && tr > 0 && tc > 0,
            "tiling factors must be positive"
        );
        Tiling { tm, tn, td, tr, tc }
    }

    /// The paper's primary configuration: `(64, 8, 4, 14, 14)`.
    pub fn paper_tn8() -> Self {
        Tiling::new(64, 8, 4, 14, 14)
    }

    /// The paper's larger configuration: `(64, 16, 4, 14, 14)`.
    pub fn paper_tn16() -> Self {
        Tiling::new(64, 16, 4, 14, 14)
    }

    /// The weight-block shape this tiling induces — identical to the
    /// pruner's [`BlockShape`], the central co-design point of the paper.
    pub fn block_shape(&self) -> BlockShape {
        BlockShape::new(self.tm, self.tn)
    }

    /// Output-tile volume `Td * Tr * Tc`.
    pub fn out_tile_volume(&self) -> usize {
        self.td * self.tr * self.tc
    }

    /// Parallel MACs per cycle, `Tm * Tn` (one DSP each).
    pub fn macs_per_cycle(&self) -> usize {
        self.tm * self.tn
    }
}

/// Memory-port widths in 16-bit words per cycle for weights, input
/// features and output features (`p_wgt`, `p_in`, `p_out` in Eqs. 19–21).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ports {
    /// Weight-load words per cycle.
    pub wgt: usize,
    /// Input-feature words per cycle.
    pub input: usize,
    /// Output-store words per cycle.
    pub output: usize,
}

impl Ports {
    /// Creates a port configuration.
    ///
    /// # Panics
    ///
    /// Panics if any width is zero.
    pub fn new(wgt: usize, input: usize, output: usize) -> Self {
        assert!(wgt > 0 && input > 0 && output > 0, "port widths must be positive");
        Ports { wgt, input, output }
    }

    /// The calibration used throughout the reproduction: 4 words/cycle on
    /// the weight and output streams (a 64-bit AXI beat of 16-bit words),
    /// and `Tn/2` words/cycle on the input stream — the input buffer is
    /// partitioned into `Tn` banks (Section IV-A), so its fill bandwidth
    /// scales with `Tn`. With these widths the compute/transfer balance
    /// reproduces the paper's compute-bound behaviour on `3x3` spatial
    /// layers, its transfer-bound behaviour on `Kx1x1` temporal layers,
    /// and the relative gain of the `(64,16)` over the `(64,8)` design.
    pub fn for_tiling(tiling: &Tiling) -> Self {
        Ports::new(4, (tiling.tn / 2).max(1), 4)
    }

    /// The port calibration of the paper's `(64, 8)` design.
    pub fn paper() -> Self {
        Ports::new(4, 4, 4)
    }
}

/// An FPGA board's resource budget.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Board {
    /// Board name.
    pub name: String,
    /// DSP slices.
    pub dsps: usize,
    /// 36 Kb BRAM blocks.
    pub bram36: usize,
    /// Look-up tables.
    pub luts: usize,
    /// Flip-flops.
    pub ffs: usize,
}

impl Board {
    /// Xilinx ZCU102 (Zynq UltraScale+): the paper's board
    /// (Table III "Available" row).
    pub fn zcu102() -> Self {
        Board {
            name: "ZCU102".into(),
            dsps: 2520,
            bram36: 912,
            luts: 274_000,
            ffs: 548_000,
        }
    }

    /// Xilinx ZC706, the board of the F-C3D baseline [13].
    pub fn zc706() -> Self {
        Board {
            name: "ZC706".into(),
            dsps: 900,
            bram36: 545,
            luts: 218_600,
            ffs: 437_200,
        }
    }
}

/// The full accelerator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Loop tiling.
    pub tiling: Tiling,
    /// Memory port widths.
    pub ports: Ports,
    /// Clock frequency in MHz (the paper synthesises at 150 MHz).
    pub freq_mhz: f64,
    /// Data width in bits (16-bit fixed point).
    pub data_bits: usize,
}

impl AcceleratorConfig {
    /// The paper's `(Tm, Tn) = (64, 8)` design at 150 MHz.
    pub fn paper_tn8() -> Self {
        AcceleratorConfig {
            tiling: Tiling::paper_tn8(),
            ports: Ports::paper(),
            freq_mhz: 150.0,
            data_bits: 16,
        }
    }

    /// The paper's `(Tm, Tn) = (64, 16)` design at 150 MHz.
    pub fn paper_tn16() -> Self {
        let tiling = Tiling::paper_tn16();
        AcceleratorConfig {
            ports: Ports::for_tiling(&tiling),
            tiling,
            freq_mhz: 150.0,
            data_bits: 16,
        }
    }

    /// Converts cycles to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_mhz * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tilings() {
        let t8 = Tiling::paper_tn8();
        assert_eq!((t8.tm, t8.tn, t8.td, t8.tr, t8.tc), (64, 8, 4, 14, 14));
        assert_eq!(t8.macs_per_cycle(), 512);
        assert_eq!(t8.out_tile_volume(), 784);
        assert_eq!(Tiling::paper_tn16().macs_per_cycle(), 1024);
    }

    #[test]
    fn tiling_block_shape_matches_pruner() {
        let t = Tiling::paper_tn8();
        let b = t.block_shape();
        assert_eq!((b.tm, b.tn), (64, 8));
    }

    #[test]
    fn zcu102_budgets_match_table3() {
        let b = Board::zcu102();
        assert_eq!(b.dsps, 2520);
        assert_eq!(b.bram36, 912);
        assert_eq!(b.luts, 274_000);
        assert_eq!(b.ffs, 548_000);
    }

    #[test]
    fn cycles_to_ms_at_150mhz() {
        let cfg = AcceleratorConfig::paper_tn8();
        // 150e6 cycles = 1 second = 1000 ms.
        assert!((cfg.cycles_to_ms(150_000_000) - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tiling_rejected() {
        let _ = Tiling::new(0, 8, 4, 14, 14);
    }
}
