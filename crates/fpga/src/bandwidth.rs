//! Off-chip traffic and roofline analysis.
//!
//! The latency model says how long each layer takes; this module says
//! *why*: how many words cross the DRAM boundary per layer (weights are
//! re-loaded once per output-volume tile, inputs once per output-channel
//! block row — the cost of the paper's tiling order), the arithmetic
//! intensity that results, and the bandwidth the accelerator must
//! sustain to hit the modelled latency.

use crate::config::AcceleratorConfig;
use crate::latency::{conv_latency, DoubleBuffering};
use p3d_core::{LayerBlockMask, PrunedModel};
use p3d_models::{ConvInstance, NetworkSpec};
use serde::{Deserialize, Serialize};

/// Off-chip traffic of one layer, in 16-bit words.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// Weight words loaded (skipped blocks load nothing).
    pub weight_words: u64,
    /// Input-feature words loaded.
    pub input_words: u64,
    /// Output-feature words stored.
    pub output_words: u64,
}

impl Traffic {
    /// Total words moved.
    pub fn total_words(&self) -> u64 {
        self.weight_words + self.input_words + self.output_words
    }

    /// Total bytes moved for a given word width.
    pub fn total_bytes(&self, data_bits: usize) -> u64 {
        self.total_words() * (data_bits as u64 / 8)
    }
}

/// Traffic + derived roofline quantities for one layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerTraffic {
    /// Layer name.
    pub name: String,
    /// Stage label.
    pub stage: String,
    /// Word counts.
    pub traffic: Traffic,
    /// MACs executed (after block skipping).
    pub macs: u64,
    /// Modelled cycles (double-buffered).
    pub cycles: u64,
}

impl LayerTraffic {
    /// Arithmetic intensity in MACs per byte moved.
    pub fn intensity(&self, data_bits: usize) -> f64 {
        self.macs as f64 / self.traffic.total_bytes(data_bits).max(1) as f64
    }

    /// Average bandwidth (bytes/s) needed to sustain the modelled
    /// latency at `freq_mhz`.
    pub fn required_bandwidth(&self, config: &AcceleratorConfig) -> f64 {
        let seconds = self.cycles as f64 / (config.freq_mhz * 1e6);
        self.traffic.total_bytes(config.data_bits) as f64 / seconds.max(1e-12)
    }
}

/// Traffic of one convolution under the tiled schedule.
///
/// Loop order (Algorithm 2): output-volume tiles outermost, then output
/// blocks, then input blocks. Consequences:
///
/// * every *enabled* weight block is loaded once per output-volume tile,
/// * the input tile is re-loaded for every enabled `(m, n)` block,
/// * each output element is stored exactly once.
pub fn conv_traffic(
    inst: &ConvInstance,
    config: &AcceleratorConfig,
    mask: Option<&LayerBlockMask>,
) -> LayerTraffic {
    let t = &config.tiling;
    let (m, n) = (inst.output.0, inst.input.0);
    let (d, r, c) = (inst.output.1, inst.output.2, inst.output.3);
    let (kd, kr, kc) = inst.spec.kernel;
    let (sd, sr, sc) = inst.spec.stride;
    let kv = kd * kr * kc;
    let rows = m.div_ceil(t.tm);
    let cols = n.div_ceil(t.tn);

    let mut traffic = Traffic::default();
    let mut macs = 0u64;
    for d0 in (0..d).step_by(t.td) {
        for r0 in (0..r).step_by(t.tr) {
            for c0 in (0..c).step_by(t.tc) {
                let (ad, ar, ac) = (t.td.min(d - d0), t.tr.min(r - r0), t.tc.min(c - c0));
                let in_tile =
                    ((ad - 1) * sd + kd) * ((ar - 1) * sr + kr) * ((ac - 1) * sc + kc);
                for bi in 0..rows {
                    let (m0, m1) = (bi * t.tm, ((bi + 1) * t.tm).min(m));
                    for bj in 0..cols {
                        if let Some(mask) = mask {
                            if !mask.is_enabled(bi, bj) {
                                continue;
                            }
                        }
                        let (n0, n1) = (bj * t.tn, ((bj + 1) * t.tn).min(n));
                        traffic.weight_words += ((m1 - m0) * (n1 - n0) * kv) as u64;
                        traffic.input_words += ((n1 - n0) * in_tile) as u64;
                        macs += ((m1 - m0) * (n1 - n0) * kv * ad * ar * ac) as u64;
                    }
                    traffic.output_words += ((m1 - m0) * ad * ar * ac) as u64;
                }
            }
        }
    }
    let lat = conv_latency(inst, config, mask, DoubleBuffering::On);
    LayerTraffic {
        name: inst.spec.name.clone(),
        stage: inst.spec.stage.clone(),
        traffic,
        macs,
        cycles: lat.cycles,
    }
}

/// Traffic of every conv layer of a network.
pub fn network_traffic(
    spec: &NetworkSpec,
    config: &AcceleratorConfig,
    pruned: &PrunedModel,
) -> Vec<LayerTraffic> {
    spec.conv_instances()
        .expect("spec must shape-check")
        .iter()
        .map(|inst| conv_traffic(inst, config, pruned.mask(&inst.spec.name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use p3d_core::{BlockGrid, BlockShape};
    use p3d_models::r2plus1d::r2plus1d_18;

    fn conv2a() -> ConvInstance {
        p3d_models::c3d::c3d(101)
            .conv_instances()
            .unwrap()
            .into_iter()
            .find(|i| i.spec.name == "conv2a")
            .unwrap()
    }

    #[test]
    fn weights_reloaded_per_volume_tile() {
        let inst = conv2a();
        let cfg = AcceleratorConfig::paper_tn8();
        let t = conv_traffic(&inst, &cfg, None);
        // conv2a: 64 volume tiles, weights 128*64*27.
        let weight_count = 128 * 64 * 27u64;
        assert_eq!(t.traffic.weight_words, 64 * weight_count);
        // Each output element stored once.
        assert_eq!(t.traffic.output_words, (128 * 16 * 56 * 56) as u64);
        assert_eq!(t.macs, inst.macs() as u64);
    }

    #[test]
    fn input_reuse_scales_with_output_blocks() {
        let inst = conv2a();
        let cfg = AcceleratorConfig::paper_tn8();
        let t = conv_traffic(&inst, &cfg, None);
        // Input tile loaded once per (m-row, n-block) pair: rows = 2.
        // Total input words = tiles * rows * Tn_total * in_tile where
        // in_tile = 6*16*16 for the 3^3 stride-1 kernel at (4,14,14).
        let expected = 64u64 * 2 * 64 * (6 * 16 * 16) as u64;
        assert_eq!(t.traffic.input_words, expected);
    }

    #[test]
    fn pruning_cuts_weight_and_input_traffic_not_output() {
        let inst = conv2a();
        let cfg = AcceleratorConfig::paper_tn8();
        let grid = BlockGrid::new(128, 64, 27, BlockShape::new(64, 8));
        let keep: Vec<bool> = (0..grid.num_blocks()).map(|i| i % 2 == 0).collect();
        let mask = p3d_core::LayerBlockMask::new(grid, keep);
        let dense = conv_traffic(&inst, &cfg, None);
        let sparse = conv_traffic(&inst, &cfg, Some(&mask));
        assert_eq!(sparse.traffic.weight_words * 2, dense.traffic.weight_words);
        assert_eq!(sparse.traffic.input_words * 2, dense.traffic.input_words);
        assert_eq!(sparse.traffic.output_words, dense.traffic.output_words);
        assert!(sparse.macs < dense.macs);
    }

    #[test]
    fn temporal_layers_have_lower_intensity() {
        // The Kx1x1 temporal convolutions do fewer MACs per byte than the
        // 1xKxK spatial ones — the reason they are transfer-bound.
        let spec = r2plus1d_18(101);
        let cfg = AcceleratorConfig::paper_tn8();
        let all = network_traffic(&spec, &cfg, &p3d_core::PrunedModel::dense());
        let spatial = all
            .iter()
            .find(|l| l.name == "conv2_1a.spatial")
            .unwrap()
            .intensity(16);
        let temporal = all
            .iter()
            .find(|l| l.name == "conv2_1a.temporal")
            .unwrap()
            .intensity(16);
        assert!(
            spatial > temporal,
            "spatial {spatial} should out-reuse temporal {temporal}"
        );
    }

    #[test]
    fn required_bandwidth_is_finite_and_positive() {
        let spec = r2plus1d_18(101);
        let cfg = AcceleratorConfig::paper_tn8();
        let all = network_traffic(&spec, &cfg, &p3d_core::PrunedModel::dense());
        for l in &all {
            let bw = l.required_bandwidth(&cfg);
            assert!(bw.is_finite() && bw > 0.0, "{}: {bw}", l.name);
            // Sanity: nothing requires more than ~10 GB/s at 150 MHz with
            // these port widths (4+4+4 words/cycle x 2 B x 150 MHz = 3.6 GB/s
            // peak; overlap can't exceed the sum of port rates).
            assert!(bw < 10e9, "{}: {bw}", l.name);
        }
    }
}
