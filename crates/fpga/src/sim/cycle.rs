//! The **cycle-approximate** tiled convolution engine (Algorithm 2)
//! with block-enable skipping.
//!
//! This engine walks the exact tile loop nest of the hardware — volume
//! tiles, output-channel blocks, input-channel blocks — accumulating
//! per-tile cycle terms alongside the arithmetic, which makes it the
//! reference for latency-model validation (`sim_cycles_match_latency_model`).
//! Serving goes through [`crate::sim::functional`] instead: the same
//! Q7.8 arithmetic with the tile walk stripped out and the inner loops
//! vectorized, proven **bitwise identical** to this engine (both paths
//! accumulate every contribution of an output element exactly in a wide
//! integer register before a single round-and-saturate, and exact
//! integer addition is order-independent).

use crate::config::AcceleratorConfig;
use crate::latency::tile_terms;
use p3d_core::LayerBlockMask;
use p3d_models::ConvInstance;
use p3d_tensor::fixed::MacAccumulator;
use p3d_tensor::{FixedTensor, Shape};
use serde::{Deserialize, Serialize};

/// Execution statistics of one simulated convolution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvStats {
    /// Cycle count accumulated from the executed loop structure
    /// (independent reconstruction of Eqs. 23–25).
    pub cycles: u64,
    /// MACs actually executed (skipped blocks execute none).
    pub macs: u64,
    /// Weight blocks skipped by the block-enable signal.
    pub blocks_skipped: u64,
    /// Words loaded into the weight buffer.
    pub weight_words: u64,
    /// Words loaded into the input buffer.
    pub input_words: u64,
    /// Words stored from the output buffer.
    pub output_words: u64,
    /// Output words whose wide accumulator clipped at a Q7.8 rail
    /// (`Fixed16::MAX`/`MIN`) when quantised back — the accelerator's
    /// saturation-anomaly signal. A healthy clip rails (almost) nowhere;
    /// a rate above a few percent means the fixed-point datapath is
    /// destroying information and the serving layer should degrade to
    /// the f32 backend for that clip.
    pub saturated_words: u64,
}

impl ConvStats {
    /// Fraction of stored output words that saturated (`0.0` when no
    /// words were stored).
    pub fn saturation_rate(&self) -> f64 {
        if self.output_words == 0 {
            0.0
        } else {
            self.saturated_words as f64 / self.output_words as f64
        }
    }
}

/// Runs one convolution layer through the tiled engine.
///
/// * `weights` — `[M, N, Kd, Kr, Kc]` in Q7.8,
/// * `input` — `[N, Di, Hi, Wi]` in Q7.8 (one clip; the engine is
///   batch-less like the hardware),
/// * `mask` — optional block-enable map; disabled blocks are neither
///   loaded nor computed (Fig. 2),
/// * returns the `[M, Do, Ho, Wo]` output **accumulators quantised to
///   Q7.8** plus statistics.
///
/// Allocates a fresh tile-accumulator scratch; batch loops that run many
/// clips should use [`run_conv_with_scratch`] to reuse one.
///
/// # Panics
///
/// Panics on any shape mismatch between `inst`, `weights` and `input`.
pub fn run_conv(
    inst: &ConvInstance,
    weights: &FixedTensor,
    input: &FixedTensor,
    mask: Option<&LayerBlockMask>,
    config: &AcceleratorConfig,
) -> (FixedTensor, ConvStats) {
    let mut scratch = Vec::new();
    run_conv_with_scratch(inst, weights, input, mask, config, &mut scratch)
}

/// [`run_conv`] with a caller-owned tile-accumulator scratch.
///
/// The engine previously allocated one `Vec<MacAccumulator>` per (volume
/// tile x output-channel block) — for a whole-network forward that is
/// thousands of short-lived heap allocations per clip, and the dominant
/// allocator churn of the batched sim backend. Passing `scratch` lets
/// every tile of every layer of every clip reuse one buffer: the vector
/// is cleared and refilled with `MacAccumulator::new()` per tile, so the
/// arithmetic (and therefore the output) is bitwise identical to the
/// allocating path.
pub fn run_conv_with_scratch(
    inst: &ConvInstance,
    weights: &FixedTensor,
    input: &FixedTensor,
    mask: Option<&LayerBlockMask>,
    config: &AcceleratorConfig,
    scratch: &mut Vec<MacAccumulator>,
) -> (FixedTensor, ConvStats) {
    let (n_ch, di, hi, wi) = inst.input;
    let (m_ch, od, oh, ow) = inst.output;
    let (kd, kr, kc) = inst.spec.kernel;
    let (sd, sr, sc) = inst.spec.stride;
    let (pd, pr, pc) = inst.spec.pad;
    assert_eq!(
        weights.shape().dims(),
        &[m_ch, n_ch, kd, kr, kc],
        "weight shape mismatch for {}",
        inst.spec.name
    );
    assert_eq!(
        input.shape().dims(),
        &[n_ch, di, hi, wi],
        "input shape mismatch for {}",
        inst.spec.name
    );

    let t = &config.tiling;
    let rows = m_ch.div_ceil(t.tm);
    let cols = n_ch.div_ceil(t.tn);
    if let Some(mask) = mask {
        assert_eq!(
            (mask.grid.rows(), mask.grid.cols()),
            (rows, cols),
            "mask grid mismatch for {}",
            inst.spec.name
        );
    }

    let w_data = weights.data();
    let i_data = input.data();
    let mut out = FixedTensor::zeros(Shape::d4(m_ch, od, oh, ow));
    let mut stats = ConvStats::default();
    let mut last_t_out = 0u64;

    // Loop nest of Algorithm 2: output-volume tiles, then output-channel
    // blocks, then input-channel blocks.
    for d0 in (0..od).step_by(t.td) {
        for r0 in (0..oh).step_by(t.tr) {
            for c0 in (0..ow).step_by(t.tc) {
                let d1 = (d0 + t.td).min(od);
                let r1 = (r0 + t.tr).min(oh);
                let c1 = (c0 + t.tc).min(ow);
                let (t_wgt, t_in, t_comp, t_out) = tile_terms(
                    inst,
                    t,
                    &config.ports,
                    (d1 - d0, r1 - r0, c1 - c0),
                );
                for bi in 0..rows {
                    let m0 = bi * t.tm;
                    let m1 = (m0 + t.tm).min(m_ch);
                    // One wide accumulator per output element of the tile
                    // (the DSP accumulation register + adder tree).
                    let tile_len = (m1 - m0) * (d1 - d0) * (r1 - r0) * (c1 - c0);
                    scratch.clear();
                    scratch.resize(tile_len, MacAccumulator::new());
                    let acc = &mut *scratch;
                    let mut enabled_blocks = 0u64;

                    for bj in 0..cols {
                        let enabled = mask.map(|m| m.is_enabled(bi, bj)).unwrap_or(true);
                        if !enabled {
                            stats.blocks_skipped += 1;
                            continue; // skip load AND compute (Fig. 2)
                        }
                        enabled_blocks += 1;
                        let n0 = bj * t.tn;
                        let n1 = (n0 + t.tn).min(n_ch);
                        stats.weight_words += ((m1 - m0) * (n1 - n0) * kd * kr * kc) as u64;
                        // The MAC array executes every kernel tap for
                        // every output position (padding taps multiply
                        // zeros); count them all, like t_comp does.
                        stats.macs += ((m1 - m0)
                            * (n1 - n0)
                            * kd
                            * kr
                            * kc
                            * (d1 - d0)
                            * (r1 - r0)
                            * (c1 - c0)) as u64;
                        // Input tile covers the receptive field of the
                        // output tile.
                        stats.input_words +=
                            ((n1 - n0)
                                * ((d1 - d0 - 1) * sd + kd)
                                * ((r1 - r0 - 1) * sr + kr)
                                * ((c1 - c0 - 1) * sc + kc)) as u64;

                        // Compute(): the MAC array.
                        let mut ai = 0usize;
                        for m in m0..m1 {
                            let w_m = m * n_ch;
                            for d in d0..d1 {
                                for r in r0..r1 {
                                    for c in c0..c1 {
                                        let a = &mut acc[ai];
                                        ai += 1;
                                        for n in n0..n1 {
                                            let w_base = (w_m + n) * kd * kr * kc;
                                            let i_base = n * di * hi * wi;
                                            for kdi in 0..kd {
                                                let dz = (d * sd + kdi) as isize - pd as isize;
                                                if dz < 0 || dz as usize >= di {
                                                    continue;
                                                }
                                                for kri in 0..kr {
                                                    let hz =
                                                        (r * sr + kri) as isize - pr as isize;
                                                    if hz < 0 || hz as usize >= hi {
                                                        continue;
                                                    }
                                                    let i_row = i_base
                                                        + dz as usize * hi * wi
                                                        + hz as usize * wi;
                                                    let w_row =
                                                        w_base + (kdi * kr + kri) * kc;
                                                    for kci in 0..kc {
                                                        let wz = (c * sc + kci) as isize
                                                            - pc as isize;
                                                        if wz < 0 || wz as usize >= wi {
                                                            continue;
                                                        }
                                                        a.mac(
                                                            w_data[w_row + kci],
                                                            i_data[i_row + wz as usize],
                                                        );
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }

                    // Store O_buf (post-processing happens downstream).
                    let mut ai = 0usize;
                    for m in m0..m1 {
                        for d in d0..d1 {
                            for r in r0..r1 {
                                for c in c0..c1 {
                                    let a = acc[ai];
                                    if a.saturates() {
                                        stats.saturated_words += 1;
                                    }
                                    out.set(&[m, d, r, c], a.finish());
                                    ai += 1;
                                }
                            }
                        }
                    }
                    stats.output_words += tile_len as u64;

                    // Cycle accounting mirroring Eq. 24 from the observed
                    // enabled-block count.
                    let t_l3 = t_wgt.max(t_in).max(t_comp);
                    stats.cycles += if enabled_blocks == 0 {
                        t_out
                    } else {
                        (t_l3 * enabled_blocks + t_comp).max(t_out)
                    };
                    last_t_out = t_out;
                }
            }
        }
    }
    stats.cycles += last_t_out; // Eq. 25: final non-overlapped store.
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{conv_latency, DoubleBuffering};
    use p3d_core::{BlockGrid, BlockShape, LayerBlockMask};
    use p3d_models::{Conv3dSpec, ConvInstance};
    use p3d_tensor::{Fixed16, Tensor, TensorRng};

    fn small_inst() -> ConvInstance {
        ConvInstance {
            spec: Conv3dSpec {
                name: "t".into(),
                stage: "s".into(),
                out_channels: 4,
                in_channels: 6,
                kernel: (1, 3, 3),
                stride: (1, 1, 1),
                pad: (0, 1, 1),
                bias: false,
            },
            input: (6, 2, 8, 8),
            output: (4, 2, 8, 8),
        }
    }

    fn small_cfg() -> AcceleratorConfig {
        AcceleratorConfig {
            tiling: crate::config::Tiling::new(2, 2, 2, 4, 4),
            ports: crate::config::Ports::new(2, 2, 2),
            freq_mhz: 150.0,
            data_bits: 16,
        }
    }

    /// f32 reference convolution for the same geometry.
    fn reference(inst: &ConvInstance, w: &Tensor, x: &Tensor) -> Tensor {
        let (n_ch, di, hi, wi) = inst.input;
        let (m_ch, od, oh, ow) = inst.output;
        let (kd, kr, kc) = inst.spec.kernel;
        let (sd, sr, sc) = inst.spec.stride;
        let (pd, pr, pc) = inst.spec.pad;
        let mut out = Tensor::zeros([m_ch, od, oh, ow]);
        for m in 0..m_ch {
            for d in 0..od {
                for r in 0..oh {
                    for c in 0..ow {
                        let mut acc = 0.0f32;
                        for n in 0..n_ch {
                            for kdi in 0..kd {
                                let dz = (d * sd + kdi) as isize - pd as isize;
                                if dz < 0 || dz as usize >= di {
                                    continue;
                                }
                                for kri in 0..kr {
                                    let hz = (r * sr + kri) as isize - pr as isize;
                                    if hz < 0 || hz as usize >= hi {
                                        continue;
                                    }
                                    for kci in 0..kc {
                                        let wz = (c * sc + kci) as isize - pc as isize;
                                        if wz < 0 || wz as usize >= wi {
                                            continue;
                                        }
                                        acc += w.get(&[m, n, kdi, kri, kci])
                                            * x.get(&[
                                                n,
                                                dz as usize,
                                                hz as usize,
                                                wz as usize,
                                            ]);
                                    }
                                }
                            }
                        }
                        out.set(&[m, d, r, c], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_f32_reference_within_quantization() {
        let inst = small_inst();
        let mut rng = TensorRng::seed(1);
        let w = rng.uniform_tensor([4, 6, 1, 3, 3], -0.3, 0.3);
        let x = rng.uniform_tensor([6, 2, 8, 8], 0.0, 1.0);
        let (out, stats) = run_conv(
            &inst,
            &FixedTensor::quantize(&w),
            &FixedTensor::quantize(&x),
            None,
            &small_cfg(),
        );
        let reference = reference(&inst, &w, &x);
        // Error budget: input+weight quantisation propagates through
        // n*k^2 = 54 MACs; each operand error <= 1/512.
        let out_f = out.dequantize();
        let max_err = out_f
            .data()
            .iter()
            .zip(reference.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.06, "max error {max_err}");
        assert_eq!(stats.macs, inst.macs() as u64);
        assert_eq!(stats.blocks_skipped, 0);
    }

    #[test]
    fn block_skipping_is_lossless_on_pruned_weights() {
        // Zero an entire weight block, then simulate (a) densely and
        // (b) with the block disabled: identical outputs, fewer MACs.
        let inst = small_inst();
        let mut rng = TensorRng::seed(2);
        let mut w = rng.uniform_tensor([4, 6, 1, 3, 3], -0.3, 0.3);
        let grid = BlockGrid::for_weight(&w, BlockShape::new(2, 2));
        grid.zero_block(&mut w, 0, 1);
        grid.zero_block(&mut w, 1, 2);
        let mut keep = vec![true; grid.num_blocks()];
        keep[grid.block_index(0, 1)] = false;
        keep[grid.block_index(1, 2)] = false;
        let mask = LayerBlockMask::new(grid, keep);

        let x = rng.uniform_tensor([6, 2, 8, 8], 0.0, 1.0);
        let qw = FixedTensor::quantize(&w);
        let qx = FixedTensor::quantize(&x);
        let (dense, s_dense) = run_conv(&inst, &qw, &qx, None, &small_cfg());
        let (sparse, s_sparse) = run_conv(&inst, &qw, &qx, Some(&mask), &small_cfg());
        assert_eq!(dense, sparse, "skipping zero blocks changed the output");
        assert!(s_sparse.macs < s_dense.macs);
        assert!(s_sparse.cycles < s_dense.cycles);
        assert!(s_sparse.weight_words < s_dense.weight_words);
        assert_eq!(s_sparse.blocks_skipped, 2 * 4); // 2 blocks x 4 volume tiles... spatial tiles
    }

    #[test]
    fn sim_cycles_match_latency_model() {
        let inst = small_inst();
        let mut rng = TensorRng::seed(3);
        let w = rng.uniform_tensor([4, 6, 1, 3, 3], -0.3, 0.3);
        let x = rng.uniform_tensor([6, 2, 8, 8], 0.0, 1.0);
        let cfg = small_cfg();
        let (_, stats) = run_conv(
            &inst,
            &FixedTensor::quantize(&w),
            &FixedTensor::quantize(&x),
            None,
            &cfg,
        );
        let model = conv_latency(&inst, &cfg, None, DoubleBuffering::On);
        assert_eq!(stats.cycles, model.cycles);
    }

    #[test]
    fn sim_cycles_match_latency_model_with_mask() {
        let inst = small_inst();
        let grid = BlockGrid::new(4, 6, 9, BlockShape::new(2, 2));
        let keep: Vec<bool> = (0..grid.num_blocks()).map(|i| i % 2 == 0).collect();
        let mask = LayerBlockMask::new(grid, keep);
        let mut rng = TensorRng::seed(4);
        let w = rng.uniform_tensor([4, 6, 1, 3, 3], -0.3, 0.3);
        let x = rng.uniform_tensor([6, 2, 8, 8], 0.0, 1.0);
        let cfg = small_cfg();
        let (_, stats) = run_conv(
            &inst,
            &FixedTensor::quantize(&w),
            &FixedTensor::quantize(&x),
            Some(&mask),
            &cfg,
        );
        let model = conv_latency(&inst, &cfg, Some(&mask), DoubleBuffering::On);
        assert_eq!(stats.cycles, model.cycles);
        assert_eq!(stats.blocks_skipped, model.blocks_skipped);
    }

    #[test]
    fn saturation_counter_flags_railed_outputs_only() {
        let inst = small_inst();
        let mut rng = TensorRng::seed(6);
        // Healthy magnitudes: nothing rails, the counter stays at zero.
        let w = rng.uniform_tensor([4, 6, 1, 3, 3], -0.3, 0.3);
        let x = rng.uniform_tensor([6, 2, 8, 8], 0.0, 1.0);
        let (_, calm) = run_conv(
            &inst,
            &FixedTensor::quantize(&w),
            &FixedTensor::quantize(&x),
            None,
            &small_cfg(),
        );
        assert_eq!(calm.saturated_words, 0);
        assert_eq!(calm.saturation_rate(), 0.0);

        // Storm magnitudes: every interior output accumulates tens of
        // products near 127*127 — far outside Q7.8 — and must be
        // counted at the rail.
        let w_big = Tensor::full([4, 6, 1, 3, 3], 100.0);
        let x_big = Tensor::full([6, 2, 8, 8], 100.0);
        let (out, storm) = run_conv(
            &inst,
            &FixedTensor::quantize(&w_big),
            &FixedTensor::quantize(&x_big),
            None,
            &small_cfg(),
        );
        assert_eq!(
            storm.saturated_words, storm.output_words,
            "every output word should rail under the storm"
        );
        assert!((storm.saturation_rate() - 1.0).abs() < 1e-12);
        assert!(out.data().iter().all(|&v| v == Fixed16::MAX || v == Fixed16::MIN));
    }

    #[test]
    fn identity_conv_in_fixed_point() {
        let inst = ConvInstance {
            spec: Conv3dSpec {
                name: "id".into(),
                stage: "s".into(),
                out_channels: 1,
                in_channels: 1,
                kernel: (1, 1, 1),
                stride: (1, 1, 1),
                pad: (0, 0, 0),
                bias: false,
            },
            input: (1, 2, 3, 3),
            output: (1, 2, 3, 3),
        };
        let mut w = FixedTensor::zeros([1, 1, 1, 1, 1]);
        w.data_mut()[0] = Fixed16::ONE;
        let mut rng = TensorRng::seed(5);
        let x = FixedTensor::quantize(&rng.uniform_tensor([1, 2, 3, 3], -1.0, 1.0));
        let (out, _) = run_conv(&inst, &w, &x, None, &small_cfg());
        assert_eq!(out.data(), x.data());
    }
}
