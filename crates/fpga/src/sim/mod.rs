//! A functional simulator of the accelerator of Fig. 2: the tiled
//! convolution engine (Algorithm 2) with double buffering, the
//! `Tm x Tn` MAC array with wide accumulation, the block enable signal
//! that skips pruned weight blocks, and the post-processing unit
//! (bias / batch norm / shortcut / ReLU / pooling).
//!
//! The simulator has two convolution engines producing bitwise-equal
//! results:
//!
//! * [`cycle`] — the **cycle-approximate** tile-loop engine that walks
//!   Algorithm 2's exact loop nest and accounts cycles alongside the
//!   arithmetic; kept for latency-model validation,
//! * [`functional`] — the **fast functional** path serving goes
//!   through: flat i64 accumulation, hoisted padding tests, AVX2
//!   integer kernels (with a bitwise-identical scalar fallback), and
//!   statistics reproduced analytically from the same tile walk.
//!
//! The simulator computes real outputs in the paper's Q7.8 fixed point,
//! so it validates three things the analytic models cannot:
//!
//! 1. skipping pruned blocks is *functionally* lossless (pruned weights
//!    are zero, so the skipped MACs contribute nothing),
//! 2. 16-bit fixed point reproduces the f32 reference within
//!    quantisation error,
//! 3. the cycle counts of the latency equations correspond to the loop
//!    structure actually executed.

pub mod cycle;
pub mod functional;
pub mod network;
pub mod post;

pub use cycle::{run_conv, run_conv_with_scratch, ConvStats};
pub use functional::{run_conv_functional, run_conv_functional_with_scratch};
pub use network::{QuantizedNetwork, SimOutput, SimPath, SimScratch};
pub use post::PostProcessor;
