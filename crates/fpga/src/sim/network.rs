//! Whole-network fixed-point inference on the simulated accelerator.
//!
//! [`QuantizedNetwork`] extracts the parameters of a trained `p3d-nn`
//! network, quantises them to Q7.8 (folding batch-norm running statistics
//! into per-channel scale/shift pairs, as the real post-processing unit
//! does), and executes the network spec layer by layer through the tiled
//! convolution engine with block-enable maps.

use crate::config::AcceleratorConfig;
use crate::sim::cycle::{run_conv_with_scratch, ConvStats};
use crate::sim::functional::run_conv_functional_with_scratch;
use crate::sim::post::PostProcessor;
use p3d_core::PrunedModel;
use p3d_models::{build::bn_names, ConvInstance, NetworkSpec, Node};
use p3d_nn::Layer;
use p3d_tensor::fixed::MacAccumulator;
use p3d_tensor::{Fixed16, FixedTensor, Tensor};
use std::collections::BTreeMap;

/// Which convolution engine a simulated forward runs on.
///
/// The two engines are **bitwise identical** in both outputs and
/// statistics (pinned by the `conv_differential` and determinism
/// suites); the choice only trades speed for loop-level fidelity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimPath {
    /// The fast functional Q7.8 path (flat i64 accumulation, AVX2
    /// integer kernels, analytic statistics) — the serving default.
    #[default]
    Functional,
    /// The cycle-approximate tile-loop engine that executes Algorithm
    /// 2's exact loop nest; kept for latency-model validation.
    CycleApproximate,
}

/// Reusable per-worker scratch for repeated simulated forwards.
///
/// Holds the tile-accumulator buffer the cycle engine fills per (volume
/// tile x channel block) and the flat i64 accumulator of the functional
/// engine. One `SimScratch` per serving worker turns per-layer
/// allocations into buffer reuse across every layer of every clip;
/// outputs are bitwise identical to the scratch-free path.
#[derive(Default)]
pub struct SimScratch {
    acc: Vec<MacAccumulator>,
    acc64: Vec<i64>,
}

impl SimScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        SimScratch::default()
    }
}

/// Result of one simulated forward pass.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Classifier logits (dequantised).
    pub logits: Vec<f32>,
    /// Predicted class.
    pub prediction: usize,
    /// Aggregate convolution-engine statistics.
    pub stats: ConvStats,
    /// Cycles spent streaming FC weights.
    pub fc_cycles: u64,
}

impl SimOutput {
    /// Total cycles (conv engine + FC streaming).
    pub fn total_cycles(&self) -> u64 {
        self.stats.cycles + self.fc_cycles
    }

    /// Fraction of conv-output words that clipped at a Q7.8 rail over
    /// the whole forward — the clip-level saturation-anomaly signal the
    /// serving layer's degradation ladder keys on.
    pub fn saturation_rate(&self) -> f64 {
        self.stats.saturation_rate()
    }
}

/// A network quantised for the simulated accelerator.
pub struct QuantizedNetwork {
    spec: NetworkSpec,
    instances: Vec<ConvInstance>,
    conv_weights: BTreeMap<String, FixedTensor>,
    conv_bias: BTreeMap<String, Vec<Fixed16>>,
    /// Folded `(scale, shift)` per batch-norm node, in document order.
    bn_folded: Vec<(Vec<Fixed16>, Vec<Fixed16>)>,
    linears: BTreeMap<String, (FixedTensor, Vec<Fixed16>)>,
    config: AcceleratorConfig,
}

enum Feat {
    Map(FixedTensor),
    Vector(Vec<Fixed16>),
}

impl QuantizedNetwork {
    /// Extracts and quantises all parameters of `net` (built from `spec`
    /// by `p3d_models::build_network`).
    ///
    /// # Panics
    ///
    /// Panics if a spec layer's parameters cannot be found in the
    /// network — i.e. `net` was not built from `spec`.
    pub fn from_network(
        spec: &NetworkSpec,
        net: &mut dyn Layer,
        config: AcceleratorConfig,
    ) -> Self {
        let mut params: BTreeMap<String, Tensor> = BTreeMap::new();
        net.visit_params(&mut |p| {
            params.insert(p.name.clone(), p.value.clone());
        });
        let mut state: BTreeMap<String, Tensor> = BTreeMap::new();
        net.export_state(&mut |name, t| {
            state.insert(name.to_string(), t.clone());
        });

        let instances = spec.conv_instances().expect("spec must shape-check");
        let mut conv_weights = BTreeMap::new();
        let mut conv_bias = BTreeMap::new();
        for inst in &instances {
            let name = &inst.spec.name;
            let w = params
                .get(&format!("{name}.weight"))
                .unwrap_or_else(|| panic!("missing weights for {name}"));
            conv_weights.insert(name.clone(), FixedTensor::quantize(w));
            if inst.spec.bias {
                let b = params
                    .get(&format!("{name}.bias"))
                    .unwrap_or_else(|| panic!("missing bias for {name}"));
                conv_bias.insert(
                    name.clone(),
                    b.data().iter().map(|&v| Fixed16::from_f32(v)).collect(),
                );
            }
        }

        let eps = 1e-5f32;
        let mut bn_folded = Vec::new();
        for (bn_name, channels) in bn_names(spec) {
            let gamma = params
                .get(&format!("{bn_name}.gamma"))
                .unwrap_or_else(|| panic!("missing {bn_name}.gamma"));
            let beta = &params[&format!("{bn_name}.beta")];
            let rm = &state[&format!("{bn_name}.running_mean")];
            let rv = &state[&format!("{bn_name}.running_var")];
            assert_eq!(gamma.len(), channels, "bn channel mismatch");
            let mut scale = Vec::with_capacity(channels);
            let mut shift = Vec::with_capacity(channels);
            for c in 0..channels {
                let s = gamma.data()[c] / (rv.data()[c] + eps).sqrt();
                scale.push(Fixed16::from_f32(s));
                shift.push(Fixed16::from_f32(beta.data()[c] - s * rm.data()[c]));
            }
            bn_folded.push((scale, shift));
        }

        let mut linears = BTreeMap::new();
        collect_linears(&spec.nodes, &mut |name, out_f, in_f| {
            let w = params
                .get(&format!("{name}.weight"))
                .unwrap_or_else(|| panic!("missing weights for {name}"));
            assert_eq!(w.shape().dims(), &[out_f, in_f], "linear shape mismatch");
            let b = params
                .get(&format!("{name}.bias"))
                .map(|b| b.data().iter().map(|&v| Fixed16::from_f32(v)).collect())
                .unwrap_or_else(|| vec![Fixed16::ZERO; out_f]);
            linears.insert(name.to_string(), (FixedTensor::quantize(w), b));
        });

        QuantizedNetwork {
            spec: spec.clone(),
            instances,
            conv_weights,
            conv_bias,
            bn_folded,
            linears,
            config,
        }
    }

    /// The accelerator configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one clip `[C, D, H, W]` (f32, quantised on the way in) with
    /// block-enable maps from `pruned`, on the **cycle-approximate**
    /// engine.
    pub fn forward(&self, clip: &Tensor, pruned: &PrunedModel) -> SimOutput {
        self.forward_with_scratch(clip, pruned, &mut SimScratch::new())
    }

    /// Runs one clip on the **fast functional** engine — the serving
    /// path. Bitwise identical to [`QuantizedNetwork::forward`] in both
    /// logits and statistics.
    pub fn forward_functional(&self, clip: &Tensor, pruned: &PrunedModel) -> SimOutput {
        self.forward_functional_with_scratch(clip, pruned, &mut SimScratch::new())
    }

    /// [`QuantizedNetwork::forward`] reusing `scratch` across calls.
    /// Bitwise identical to `forward`.
    pub fn forward_with_scratch(
        &self,
        clip: &Tensor,
        pruned: &PrunedModel,
        scratch: &mut SimScratch,
    ) -> SimOutput {
        self.forward_on_path(clip, pruned, scratch, SimPath::CycleApproximate)
    }

    /// [`QuantizedNetwork::forward_functional`] reusing `scratch` across
    /// calls — the batched-serving hot path.
    pub fn forward_functional_with_scratch(
        &self,
        clip: &Tensor,
        pruned: &PrunedModel,
        scratch: &mut SimScratch,
    ) -> SimOutput {
        self.forward_on_path(clip, pruned, scratch, SimPath::Functional)
    }

    /// The shared walk, parameterised by convolution engine.
    pub fn forward_on_path(
        &self,
        clip: &Tensor,
        pruned: &PrunedModel,
        scratch: &mut SimScratch,
        path: SimPath,
    ) -> SimOutput {
        assert_eq!(clip.shape().rank(), 4, "expected [C, D, H, W] clip");
        let mut ctx = WalkCtx {
            net: self,
            pruned,
            scratch,
            path,
            conv_idx: 0,
            bn_idx: 0,
            stats: ConvStats::default(),
            fc_cycles: 0,
        };
        let out = ctx.walk(&self.spec.nodes, Feat::Map(FixedTensor::quantize(clip)));
        let logits = match out {
            Feat::Vector(v) => v,
            Feat::Map(_) => panic!("network did not end in a classifier vector"),
        };
        let prediction = logits
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.to_bits())
            .map(|(i, _)| i)
            .unwrap_or(0);
        SimOutput {
            logits: logits.iter().map(|v| v.to_f32()).collect(),
            prediction,
            stats: ctx.stats,
            fc_cycles: ctx.fc_cycles,
        }
    }
}

fn collect_linears(nodes: &[Node], f: &mut impl FnMut(&str, usize, usize)) {
    for node in nodes {
        match node {
            Node::Linear {
                name,
                out_features,
                in_features,
            } => f(name, *out_features, *in_features),
            Node::Residual { main, shortcut } => {
                collect_linears(main, f);
                if let Some(s) = shortcut {
                    collect_linears(s, f);
                }
            }
            _ => {}
        }
    }
}

struct WalkCtx<'a> {
    net: &'a QuantizedNetwork,
    pruned: &'a PrunedModel,
    scratch: &'a mut SimScratch,
    path: SimPath,
    conv_idx: usize,
    bn_idx: usize,
    stats: ConvStats,
    fc_cycles: u64,
}

impl WalkCtx<'_> {
    fn walk(&mut self, nodes: &[Node], mut feat: Feat) -> Feat {
        for node in nodes {
            feat = self.step(node, feat);
        }
        feat
    }

    fn step(&mut self, node: &Node, feat: Feat) -> Feat {
        match node {
            Node::Conv(spec) => {
                let Feat::Map(map) = feat else {
                    panic!("conv after flatten")
                };
                let inst = &self.net.instances[self.conv_idx];
                assert_eq!(inst.spec.name, spec.name, "conv walk order mismatch");
                self.conv_idx += 1;
                let weights = &self.net.conv_weights[&spec.name];
                let mask = self.pruned.mask(&spec.name);
                let (mut out, stats) = match self.path {
                    SimPath::Functional => run_conv_functional_with_scratch(
                        inst,
                        weights,
                        &map,
                        mask,
                        &self.net.config,
                        &mut self.scratch.acc64,
                    ),
                    SimPath::CycleApproximate => run_conv_with_scratch(
                        inst,
                        weights,
                        &map,
                        mask,
                        &self.net.config,
                        &mut self.scratch.acc,
                    ),
                };
                self.accumulate(stats);
                if let Some(bias) = self.net.conv_bias.get(&spec.name) {
                    PostProcessor::bias(&mut out, bias);
                }
                Feat::Map(out)
            }
            Node::BatchNorm { .. } => {
                let Feat::Map(mut map) = feat else {
                    panic!("batchnorm after flatten")
                };
                let (scale, shift) = &self.net.bn_folded[self.bn_idx];
                self.bn_idx += 1;
                PostProcessor::batch_norm(&mut map, scale, shift);
                Feat::Map(map)
            }
            Node::Relu => match feat {
                Feat::Map(mut map) => {
                    PostProcessor::relu(&mut map);
                    Feat::Map(map)
                }
                Feat::Vector(mut v) => {
                    for x in &mut v {
                        *x = x.relu();
                    }
                    Feat::Vector(v)
                }
            },
            Node::MaxPool { kernel, stride, pad } => {
                assert_eq!(*pad, (0, 0, 0), "simulator does not support padded pooling");
                let Feat::Map(map) = feat else {
                    panic!("pool after flatten")
                };
                Feat::Map(PostProcessor::max_pool(&map, *kernel, *stride))
            }
            Node::GlobalAvgPool => {
                let Feat::Map(map) = feat else {
                    panic!("pool after flatten")
                };
                Feat::Vector(PostProcessor::global_avg_pool(&map))
            }
            Node::Linear { name, .. } => {
                let x = match feat {
                    Feat::Vector(v) => v,
                    Feat::Map(map) => map.data().to_vec(), // flatten
                };
                let (w, b) = &self.net.linears[name];
                let weights = w.len();
                let load = weights.div_ceil(self.net.config.ports.wgt) as u64;
                let compute = weights.div_ceil(self.net.config.tiling.macs_per_cycle()) as u64;
                self.fc_cycles += load.max(compute);
                Feat::Vector(PostProcessor::linear(&x, w, b))
            }
            Node::Residual { main, shortcut } => {
                let Feat::Map(entry) = feat else {
                    panic!("residual after flatten")
                };
                let main_out = self.walk(main, Feat::Map(entry.clone()));
                let short_out = match shortcut {
                    Some(s) => self.walk(s, Feat::Map(entry)),
                    None => Feat::Map(entry),
                };
                let (Feat::Map(mut m), Feat::Map(s)) = (main_out, short_out) else {
                    panic!("residual paths must stay feature maps")
                };
                PostProcessor::shortcut_add(&mut m, &s);
                PostProcessor::relu(&mut m);
                Feat::Map(m)
            }
        }
    }

    fn accumulate(&mut self, s: ConvStats) {
        self.stats.cycles += s.cycles;
        self.stats.macs += s.macs;
        self.stats.blocks_skipped += s.blocks_skipped;
        self.stats.weight_words += s.weight_words;
        self.stats.input_words += s.input_words;
        self.stats.output_words += s.output_words;
        self.stats.saturated_words += s.saturated_words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ports, Tiling};
    use p3d_models::{build_network, r2plus1d_micro};
    use p3d_nn::{Layer, Mode};
    use p3d_tensor::TensorRng;

    fn micro_cfg() -> AcceleratorConfig {
        AcceleratorConfig {
            tiling: Tiling::new(4, 4, 2, 4, 4),
            ports: Ports::new(2, 2, 2),
            freq_mhz: 150.0,
            data_bits: 16,
        }
    }

    #[test]
    fn quantized_network_matches_f32_reference() {
        let spec = r2plus1d_micro(4);
        let mut net = build_network(&spec, 33);
        let q = QuantizedNetwork::from_network(&spec, &mut net, micro_cfg());
        let mut rng = TensorRng::seed(7);
        let mut agree = 0usize;
        let trials = 6;
        for _ in 0..trials {
            let clip = rng.uniform_tensor([1, 6, 16, 16], 0.0, 1.0);
            let sim = q.forward(&clip, &PrunedModel::dense());
            let batch = clip.reshape([1, 1, 6, 16, 16]);
            let logits = net.forward(&batch, Mode::Eval);
            // Compare logits within fixed-point error and predictions.
            let reference: Vec<f32> = logits.data().to_vec();
            let max_err = sim
                .logits
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 0.25, "logit error {max_err} too large");
            let ref_pred = logits.argmax();
            if ref_pred == sim.prediction {
                agree += 1;
            }
        }
        assert!(agree >= trials - 1, "predictions agree only {agree}/{trials}");
    }

    #[test]
    fn conv_and_bn_counts_walked_fully() {
        let spec = r2plus1d_micro(4);
        let mut net = build_network(&spec, 34);
        let q = QuantizedNetwork::from_network(&spec, &mut net, micro_cfg());
        let mut rng = TensorRng::seed(8);
        let clip = rng.uniform_tensor([1, 6, 16, 16], 0.0, 1.0);
        let out = q.forward(&clip, &PrunedModel::dense());
        // Every conv executed: total MACs equal the spec's MAC count.
        let expected: u64 = spec.conv_macs().unwrap() as u64;
        assert_eq!(out.stats.macs, expected);
        assert!(out.fc_cycles > 0);
        assert!(out.total_cycles() > out.stats.cycles);
    }

    #[test]
    fn pruned_network_runs_fewer_macs() {
        use p3d_core::{magnitude_block_prune, BlockShape, KeepRule, PruneTarget};
        let spec = r2plus1d_micro(4);
        let mut net = build_network(&spec, 35);
        let targets = vec![PruneTarget {
            layer: "conv2_1a.spatial".into(),
            eta: 0.5,
        }];
        let pruned = magnitude_block_prune(&mut net, BlockShape::new(4, 4), &targets, KeepRule::Round);
        let q = QuantizedNetwork::from_network(&spec, &mut net, micro_cfg());
        let mut rng = TensorRng::seed(9);
        let clip = rng.uniform_tensor([1, 6, 16, 16], 0.0, 1.0);
        let dense_out = q.forward(&clip, &PrunedModel::dense());
        let sparse_out = q.forward(&clip, &pruned);
        assert!(sparse_out.stats.macs < dense_out.stats.macs);
        assert!(sparse_out.stats.cycles < dense_out.stats.cycles);
        assert!(sparse_out.stats.blocks_skipped > 0);
        // Pruned weights are zero, so outputs agree exactly.
        assert_eq!(dense_out.logits, sparse_out.logits);
    }
}
